//! Facade crate re-exporting the dynmds workspace public API.
//!
//! # Quick example
//!
//! ```
//! use dynmds::core::{SimConfig, Simulation};
//! use dynmds::event::SimDuration;
//! use dynmds::namespace::NamespaceSpec;
//! use dynmds::partition::StrategyKind;
//! use dynmds::workload::{GeneralWorkload, WorkloadConfig};
//!
//! // A small namespace, a 4-node dynamic-subtree cluster, a general
//! // workload, one virtual second of warm-up and two measured.
//! let snapshot = NamespaceSpec::with_target_items(12, 2_000, 1).generate();
//! let cfg = SimConfig::small(StrategyKind::DynamicSubtree);
//! let workload = Box::new(GeneralWorkload::new(
//!     WorkloadConfig::default(),
//!     cfg.n_clients as usize,
//!     &snapshot.user_homes,
//!     &snapshot.shared_roots,
//!     &snapshot.ns,
//! ));
//! let report = Simulation::new(cfg, snapshot, workload)
//!     .run_measured(SimDuration::from_secs(1), SimDuration::from_secs(2));
//! assert!(report.total_served() > 0);
//! assert!(report.overall_hit_rate() > 0.0);
//! ```
//!
//! See the individual crates for detail:
//! * [`event`] — discrete-event engine
//! * [`namespace`] — file-system model and snapshot generator
//! * [`storage`] — simulated disk, journal, and directory-object store
//! * [`cache`] — LRU metadata cache with prefix pinning
//! * [`partition`] — the five metadata partitioning strategies
//! * [`core`] — MDS cluster simulator (the paper's contribution)
//! * [`workload`] — synthetic workload generators
//! * [`metrics`] — measurement and reporting
//! * [`obs`] — deterministic observability (metrics registry, op spans)
//! * [`harness`] — per-figure experiment runners

pub use dynmds_cache as cache;
pub use dynmds_core as core;
pub use dynmds_event as event;
pub use dynmds_harness as harness;
pub use dynmds_metrics as metrics;
pub use dynmds_namespace as namespace;
pub use dynmds_obs as obs;
pub use dynmds_partition as partition;
pub use dynmds_storage as storage;
pub use dynmds_workload as workload;

//! CLI regenerating the paper's evaluation figures.
//!
//! ```text
//! experiments [--quick] [--csv DIR] <SUBCOMMAND>
//! ```
//!
//! Subcommands: `fig2` `fig3` `fig4` `fig5` `fig6` `fig7` (the paper's
//! figures), `sci` (the §5.2 scientific workload), `ablate-prefetch`
//! `ablate-balance` `ablate-dirhash` `ablate-warming` `ablate-leases`
//! `ablate-shared-writes` `ablate-probation` (design-choice ablations),
//! `availability` (every strategy under node churn; `--faults SPEC`
//! overrides the default schedule — same grammar as `simulate`), `all`,
//! or `bench` (time every `--quick` stage and write `BENCH_sim.json` —
//! see [`run_bench`]; bench stays fault-free).
//!
//! Each subcommand prints the figure's data as an aligned table; `--csv`
//! additionally writes machine-readable CSVs.
//!
//! `--obs` (metrics + snapshots) and `--obs-trace` (additionally per-op
//! spans) run one instrumented representative steady-state simulation
//! after the chosen subcommand, print its summary, and write
//! `obs_metrics.jsonl` / `obs_snapshots.jsonl` / `obs_trace.jsonl` (to
//! `--csv DIR` when given, else the working directory). With `bench`,
//! the instrumented run is timed against the uninstrumented one and the
//! observability overhead is reported.

use std::io::Write as _;

use dynmds_event::{SimDuration, SimRng, SimTime};
use dynmds_harness::parallel::parallel_map;
use dynmds_harness::{
    ablation, availability, flashrun, hitrate, scaling, scirun, shiftrun, ExperimentScale,
};
use dynmds_metrics::Table;
use dynmds_obs::ObsConfig;

struct Args {
    scale: ExperimentScale,
    csv_dir: Option<String>,
    command: String,
    obs: ObsConfig,
    faults: Option<dynmds_core::FaultSchedule>,
    /// Event-queue shards for stages on the sharded engine (`elasticity`);
    /// the CSV is invariant to this by construction.
    shards: usize,
}

fn parse_args() -> Args {
    let mut scale = ExperimentScale::Full;
    let mut csv_dir = None;
    let mut command = None;
    let mut obs = ObsConfig::default();
    let mut faults = None;
    let mut shards = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = ExperimentScale::Quick,
            "--csv" => csv_dir = Some(it.next().unwrap_or_else(|| usage("missing --csv DIR"))),
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage("missing --shards K"));
                shards = v.parse().unwrap_or_else(|_| usage(&format!("bad --shards: {v}")));
            }
            "--faults" => {
                let spec = it.next().unwrap_or_else(|| usage("missing --faults SPEC"));
                faults = Some(
                    dynmds_core::FaultSchedule::parse(&spec)
                        .unwrap_or_else(|e| usage(&format!("bad --faults spec: {e}"))),
                );
            }
            "--obs" => obs.metrics = true,
            "--obs-trace" => {
                obs.metrics = true;
                obs.trace = true;
            }
            "-h" | "--help" => usage(""),
            other if !other.starts_with('-') && command.is_none() => {
                command = Some(other.to_string())
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    Args {
        scale,
        csv_dir,
        command: command.unwrap_or_else(|| "all".to_string()),
        obs,
        faults,
        shards,
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [--quick] [--csv DIR] [--obs|--obs-trace] [--faults SPEC] [--shards K] \
         <fig2|fig3|fig4|fig5|fig6|fig7|sci|ablate-prefetch|ablate-balance|ablate-dirhash|ablate-warming|ablate-leases|ablate-shared-writes|ablate-probation|availability|elasticity|hotspot|all|bench|obs>\n\
         \n\
         or:    experiments torture [--seeds N] [--seed-base B] [--ops K] [--strategy NAME|all]\n\
         \u{20}                     [--out DIR] [--shrink-budget P] [--no-repeat-check] [--threads T]\n\
         \u{20}                     [--shards K]  (cross-check sharded engine reports, K vs 1)\n\
         \u{20}                     [--proxy P]   (force P hotspot proxies on every scenario)\n\
         \u{20}                     [--force-dense] (sharded cross-check never skips idle windows)\n\
         (seeded fuzz scenarios against the DST oracle; repros land in dst/repros/)\n\
         \n\
         or:    experiments scale [--smoke|--full] [--clients N] [--users N] [--target-inodes N]\n\
         \u{20}                   [--materialize N] [--ring N] [--mds N] [--cache N] [--think-us U]\n\
         \u{20}                   [--warmup-ms M] [--measure-ms M] [--shards K] [--threads T]\n\
         \u{20}                   [--strategy NAME|all] [--seed S] [--out DIR]\n\
         (the scale tier: streaming namespace + ScaleWorkload on the sharded engine;\n\
         \u{20}--full defaults to 10^6 clients against a 10^8-inode logical namespace)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The configuration both `bench` and `--obs` use as the representative
/// steady-state simulation: the largest quick dynamic-subtree scaling
/// point, the shape the hot path is tuned for.
fn representative_config(obs: ObsConfig) -> dynmds_core::SimConfig {
    let mut cfg = dynmds_harness::params::scaling_config(
        dynmds_partition::StrategyKind::DynamicSubtree,
        12,
        ExperimentScale::Quick,
    );
    cfg.obs = obs;
    cfg
}

/// Runs the instrumented representative simulation and writes its JSONL
/// exports next to the CSVs.
fn run_obs(args: &Args) {
    eprintln!("obs: instrumented representative steady-state run...");
    let report =
        dynmds_harness::params::run_steady(representative_config(args.obs), ExperimentScale::Quick);
    let export = report.obs.expect("obs enabled but report carries no export");
    println!("{}", export.summary);
    let dir = args.csv_dir.clone().unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&dir).expect("create obs output dir");
    let mut outputs = vec![
        ("obs_metrics.jsonl", &export.metrics_jsonl),
        ("obs_snapshots.jsonl", &export.snapshots_jsonl),
    ];
    if let Some(trace) = &export.trace_jsonl {
        outputs.push(("obs_trace.jsonl", trace));
    }
    for (name, body) in outputs {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, body).expect("write obs jsonl");
        eprintln!("wrote {path}");
    }
}

fn emit(args: &Args, name: &str, table: &Table) {
    println!("{}", table.render());
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(table.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {path}");
    }
}

/// Scheduler-only microbenchmark: a timer wheel holding ~100k pending
/// events driven through a steady pop-then-reschedule cycle, the shape
/// the simulation hot loop imposes on it. Deltas come from a table
/// precomputed outside the timed region so the RNG never shares the
/// loop with the queue. Returns the median ops/sec (one op = one
/// schedule or one pop) over ten runs.
fn scheduler_ops_per_sec() -> f64 {
    use dynmds_event::EventQueue;
    use std::time::Instant;
    const PENDING: usize = 100_000;
    const STEADY_OPS: usize = 400_000;
    const DELTA_MASK: usize = 8191;
    let deltas: Vec<u64> = {
        let mut rng = SimRng::seed_from_u64(0xD1CE);
        (0..=DELTA_MASK).map(|_| 1 + rng.below(1 << 16)).collect()
    };
    let mut samples: Vec<f64> = (0..10)
        .map(|_| {
            let mut q: EventQueue<u32> = EventQueue::with_delta_hint(SimDuration::from_millis(1));
            let mut now = SimTime::ZERO;
            for i in 0..PENDING {
                q.schedule(now + SimDuration::from_micros(deltas[i & DELTA_MASK]), i as u32);
            }
            let t = Instant::now();
            for i in 0..STEADY_OPS {
                let ev = q.pop().expect("queue never drains in steady state");
                now = ev.at;
                q.schedule(now + SimDuration::from_micros(deltas[i & DELTA_MASK]), ev.event);
            }
            (2 * STEADY_OPS) as f64 / t.elapsed().as_secs_f64().max(1e-9)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[4] + samples[5]) / 2.0
}

/// One sharded-engine throughput run: a lease-heavy hot-set workload
/// where nearly every operation is a client-local lease completion (one
/// timer-wheel event per op), so the figure measures engine overhead —
/// queue, window loop, exchange — rather than protocol round trips.
/// Returns (simulated ops, ops per wall-clock second).
fn sharded_bench_run(shards: usize, measure: SimDuration) -> (dynmds_core::ShardReport, f64) {
    use std::time::Instant;
    let mut cfg = dynmds_core::SimConfig::small(dynmds_partition::StrategyKind::DynamicSubtree);
    cfg.n_mds = 8;
    cfg.n_clients = 2_000;
    cfg.cache_capacity = 4_000;
    cfg.journal_capacity = 16_000;
    cfg.n_osds = 16;
    cfg.client_leases = true;
    // Leases must outlive the run so the measured window never refreshes:
    // every measured op is then a client-local completion.
    cfg.lease_ttl = SimDuration::from_secs(120);
    // A dense event stream (mean 4k ops/s per client) keeps hundreds of
    // events in every 100µs conservative window, amortizing the
    // per-window barrier across many operations.
    cfg.costs.think_mean = SimDuration::from_micros(250);
    // A modern flash OSD pool; the 2004 commodity-disk default would
    // stretch the lease-population warmup to tens of virtual seconds.
    cfg.costs.osd_disk =
        dynmds_storage::DiskParams { latency: SimDuration::from_micros(200), iops: 20_000.0 };
    cfg.balancing = false;
    cfg.traffic_control = false;
    cfg.seed = 42;
    dynmds_harness::parallel::install_shard_driver();
    let snap =
        dynmds_namespace::NamespaceSpec::with_target_items(64, 8_000, cfg.seed ^ 0xF5).generate();
    let n_clients = cfg.n_clients as usize;
    let seed = cfg.seed;
    let mut sim = dynmds_core::ShardedSimulation::new(cfg, shards, None, snap, &move |ns| {
        Box::new(dynmds_workload::HotSetWorkload::new(ns, n_clients, 32, seed ^ 0x17))
    });
    let warmup = SimDuration::from_secs(3);
    sim.run_until(dynmds_event::SimTime::ZERO + warmup);
    sim.reset_measurement();
    // Only the measured span is timed: the warmup's lease-population
    // traffic would otherwise dilute the steady-state figure.
    let t = Instant::now();
    sim.run_until(dynmds_event::SimTime::ZERO + warmup + measure);
    let wall = t.elapsed().as_secs_f64();
    let report = sim.finish();
    let rate = report.ops as f64 / wall.max(1e-9);
    (report, rate)
}

/// Sparse-schedule throughput probe: the same lease-heavy hot-set
/// engine workload as [`sharded_bench_run`], but with two orders of
/// magnitude fewer and slower clients, so the mean event spacing
/// (~1.3 ms cluster-wide) dwarfs the 100 µs conservative window. Nearly
/// every barrier faces an empty span, so the figure measures the
/// idle-window skip — a `--force-dense` run would execute ~12 empty
/// windows per operation. Returns (report, ops per wall-second).
fn sparse_bench_run(shards: usize, measure: SimDuration) -> (dynmds_core::ShardReport, f64) {
    use std::time::Instant;
    let mut cfg = dynmds_core::SimConfig::small(dynmds_partition::StrategyKind::DynamicSubtree);
    cfg.n_mds = 8;
    cfg.n_clients = 32;
    cfg.cache_capacity = 4_000;
    cfg.journal_capacity = 16_000;
    cfg.n_osds = 16;
    cfg.client_leases = true;
    cfg.lease_ttl = SimDuration::from_secs(600);
    // 32 clients thinking 40 ms apart: one event per ~1.25 ms against a
    // 100 µs window grid. This is the elasticity figure's "night" regime.
    cfg.costs.think_mean = SimDuration::from_millis(40);
    cfg.costs.osd_disk =
        dynmds_storage::DiskParams { latency: SimDuration::from_micros(200), iops: 20_000.0 };
    cfg.balancing = false;
    cfg.traffic_control = false;
    cfg.seed = 42;
    dynmds_harness::parallel::install_shard_driver();
    let snap =
        dynmds_namespace::NamespaceSpec::with_target_items(64, 8_000, cfg.seed ^ 0xF5).generate();
    let n_clients = cfg.n_clients as usize;
    let seed = cfg.seed;
    let mut sim = dynmds_core::ShardedSimulation::new(cfg, shards, None, snap, &move |ns| {
        Box::new(dynmds_workload::HotSetWorkload::new(ns, n_clients, 32, seed ^ 0x17))
    });
    // Long warmup relative to the dense probe: populating each client's
    // 32-item lease ring takes ~32 think periods at the 40 ms mean.
    let warmup = SimDuration::from_secs(6);
    sim.run_until(dynmds_event::SimTime::ZERO + warmup);
    sim.reset_measurement();
    let t = Instant::now();
    sim.run_until(dynmds_event::SimTime::ZERO + warmup + measure);
    let wall = t.elapsed().as_secs_f64();
    let report = sim.finish();
    let rate = report.ops as f64 / wall.max(1e-9);
    (report, rate)
}

/// Entry point for `experiments scale` — the million-client scale tier.
/// Owns its flag grammar (like `torture`): sizing defaults come from
/// `--smoke` (CI) or `--full` (the ≥10⁶-client, ≥10⁸-inode run), with
/// every knob individually overridable. Prints the deterministic table,
/// writes `scale.csv` to `--out`, and reports wall-clock throughput and
/// peak RSS on stdout only (machine-dependent, never in the CSV).
fn run_scale_cli(raw: &[String]) -> i32 {
    use dynmds_harness::ScaleParams;
    let mut p = ScaleParams::smoke();
    let mut out_dir = ".".to_string();
    let mut it = raw.iter();
    let parse_err = |flag: &str, v: &str| -> ! {
        eprintln!("scale: bad value for {flag}: {v}");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("scale: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" => p = ScaleParams::smoke(),
            "--full" => p = ScaleParams::full(),
            "--clients" => {
                let v = val("--clients");
                p.clients = v.parse().unwrap_or_else(|_| parse_err("--clients", &v));
            }
            "--users" => {
                let v = val("--users");
                p.users = v.parse().unwrap_or_else(|_| parse_err("--users", &v));
            }
            "--target-inodes" => {
                let v = val("--target-inodes");
                p.target_items = v.parse().unwrap_or_else(|_| parse_err("--target-inodes", &v));
            }
            "--materialize" => {
                let v = val("--materialize");
                p.materialize_users = v.parse().unwrap_or_else(|_| parse_err("--materialize", &v));
            }
            "--ring" => {
                let v = val("--ring");
                p.ring = v.parse().unwrap_or_else(|_| parse_err("--ring", &v));
            }
            "--mds" => {
                let v = val("--mds");
                p.n_mds = v.parse().unwrap_or_else(|_| parse_err("--mds", &v));
            }
            "--cache" => {
                let v = val("--cache");
                p.cache_capacity = v.parse().unwrap_or_else(|_| parse_err("--cache", &v));
            }
            "--think-us" => {
                let v = val("--think-us");
                p.think_mean = SimDuration::from_micros(
                    v.parse().unwrap_or_else(|_| parse_err("--think-us", &v)),
                );
            }
            "--warmup-ms" => {
                let v = val("--warmup-ms");
                p.warmup = SimDuration::from_millis(
                    v.parse().unwrap_or_else(|_| parse_err("--warmup-ms", &v)),
                );
            }
            "--measure-ms" => {
                let v = val("--measure-ms");
                p.measure = SimDuration::from_millis(
                    v.parse().unwrap_or_else(|_| parse_err("--measure-ms", &v)),
                );
            }
            "--shards" => {
                let v = val("--shards");
                p.shards = v.parse().unwrap_or_else(|_| parse_err("--shards", &v));
            }
            "--threads" => {
                let v = val("--threads");
                p.threads = Some(v.parse().unwrap_or_else(|_| parse_err("--threads", &v)));
            }
            "--seed" => {
                let v = val("--seed");
                p.seed = v.parse().unwrap_or_else(|_| parse_err("--seed", &v));
            }
            "--strategy" => {
                let v = val("--strategy");
                if v == "all" {
                    p.strategies = dynmds_partition::StrategyKind::ALL.to_vec();
                } else {
                    match dynmds_partition::StrategyKind::ALL
                        .iter()
                        .find(|k| k.label().eq_ignore_ascii_case(&v))
                    {
                        Some(&k) => p.strategies = vec![k],
                        None => parse_err("--strategy", &v),
                    }
                }
            }
            "--out" => out_dir = val("--out"),
            other => {
                eprintln!("scale: unknown argument: {other}");
                return 2;
            }
        }
    }

    // Honor --threads in every pool fan-out, not just the engine windows.
    dynmds_harness::parallel::set_thread_override(p.threads);

    println!(
        "scale: {} clients, {} logical users ({} materialized), target {} inodes, \
         {} MDS, {} shards",
        p.clients, p.users, p.materialize_users, p.target_items, p.n_mds, p.shards
    );
    let points = dynmds_harness::run_scale(&p);
    let table = dynmds_harness::scale_table(&points);
    println!("{}", table.render());
    // Machine-dependent figures stay out of the CSV.
    for pt in &points {
        println!(
            "scale: {} wall {:.2}s ({:.0} ops/s wall)",
            pt.strategy.label(),
            pt.wall_s,
            pt.wall_ops_per_sec()
        );
    }
    println!("scale: peak RSS {} bytes", peak_rss_bytes());

    std::fs::create_dir_all(&out_dir).expect("create scale output dir");
    let path = format!("{out_dir}/scale.csv");
    std::fs::write(&path, table.to_csv()).expect("write scale.csv");
    eprintln!("wrote {path}");
    0
}

/// Peak resident set (VmHWM) in bytes, 0 where /proc is unavailable.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Benchmark mode: runs the fixed `--quick` scenario (every figure and
/// ablation stage), timing each, plus one representative steady-state
/// simulation whose served-operation count yields a simulated-ops/sec
/// figure and a scheduler-only microbenchmark. Results go to
/// `BENCH_sim.json` (in `--csv DIR` when given, else the working
/// directory). Tables and CSVs are *not* emitted — this mode exists to
/// track wall-clock, not figure output.
fn run_bench(args: &Args) {
    use std::time::Instant;
    let scale = ExperimentScale::Quick;

    // Wall-clock for the full quick suite on the seed revision of this
    // repo, measured on the same class of machine the suite targets.
    // Kept so speedup_vs_seed in BENCH_sim.json is self-describing.
    const SEED_QUICK_WALL_S: f64 = 17.0;

    // Representative simulation: the largest quick dynamic-subtree
    // scaling point, the configuration the hot path is tuned for.
    eprintln!("bench: representative steady-state run...");
    let t0 = Instant::now();
    let report =
        dynmds_harness::params::run_steady(representative_config(ObsConfig::default()), scale);
    let rep_wall_s = t0.elapsed().as_secs_f64();
    let ops_simulated = report.total_served();
    let ops_per_sec = ops_simulated as f64 / rep_wall_s.max(1e-9);

    eprintln!("bench: scheduler microbench (100k pending, median of 10)...");
    let sched_ops_per_sec = scheduler_ops_per_sec();

    // Sharded-engine throughput: the scaling curve over shard counts,
    // with the 8-shard point as the headline `sharded_ops_per_sec`.
    let mut sharded_curve: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        eprintln!("bench: sharded hot-set run ({shards} shards)...");
        let (report, rate) = sharded_bench_run(shards, SimDuration::from_secs(2));
        assert!(
            report.lease_hits * 10 >= report.ops * 9,
            "sharded bench drifted out of the lease fast path"
        );
        sharded_curve.push((shards, rate));
    }
    let sharded_ops_per_sec = sharded_curve.last().map(|&(_, r)| r).unwrap_or(0.0);

    // Sparse-schedule probe: same engine, ~12 empty windows per op, so
    // this figure tracks the idle-window skip rather than event
    // execution. The lease floor is looser than the dense probe's — the
    // 32-client population re-faults a few leases per measured minute.
    eprintln!("bench: sparse sharded run (idle-window skip)...");
    let sparse_ops_per_sec = {
        let (report, rate) = sparse_bench_run(8, SimDuration::from_secs(60));
        assert!(
            report.lease_hits * 10 >= report.ops * 8,
            "sparse bench drifted out of the lease fast path"
        );
        rate
    };

    // Wall-clock probes for the two figure stages the skip was built
    // for: the diurnal elasticity run (sharded engine, sparse nights)
    // and availability-under-churn (legacy serial engine — reported so
    // the pair is tracked together, though skipping cannot move it).
    eprintln!("bench: elasticity figure wall probe...");
    let elasticity_wall_s = {
        let t = Instant::now();
        drop(dynmds_harness::elasticrun::run_elasticity(scale, 4, None));
        t.elapsed().as_secs_f64()
    };
    eprintln!("bench: availability figure wall probe...");
    let availability_wall_s = {
        let t = Instant::now();
        drop(availability::run_availability(scale, &availability::default_schedule(scale)));
        t.elapsed().as_secs_f64()
    };

    // Scale-tier probe: a shrunken smoke run (not a timed figure stage —
    // it tracks the streaming-namespace memory story, not suite wall
    // time). Yields the headline scale_ops_per_sec (wall) and the
    // namespace footprint per materialized inode.
    eprintln!("bench: scale-tier probe (streaming namespace)...");
    let scale_probe = {
        let mut p = dynmds_harness::ScaleParams::smoke();
        p.clients = 10_000;
        p.users = 4_000;
        p.target_items = 200_000;
        p.materialize_users = 256;
        p.strategies = vec![dynmds_partition::StrategyKind::DynamicSubtree];
        dynmds_harness::run_scale(&p).remove(0)
    };
    let scale_ops_per_sec = scale_probe.wall_ops_per_sec();
    let namespace_bytes_per_inode = scale_probe.bytes_per_inode();

    // Hotspot-absorption probe: the proxy-vs-redirect storm suite on the
    // sharded engine. Like the scale probe it stays out of the timed
    // figure stages (the seed baseline predates it); the headline is
    // total simulated storm ops per wall-second.
    eprintln!("bench: hotspot-absorption probe (proxy vs redirect)...");
    let hotspot_ops_per_sec = {
        let t = Instant::now();
        let pts = dynmds_harness::hotspotrun::run_hotspot(scale, 4, None);
        let ops: u64 = pts.iter().map(|p| p.report.ops).sum();
        ops as f64 / t.elapsed().as_secs_f64().max(1e-9)
    };

    // With --obs/--obs-trace, time the same run instrumented and report
    // the observability overhead (not part of BENCH_sim.json: the
    // committed baseline tracks the uninstrumented hot path).
    if args.obs.enabled() {
        eprintln!("bench: instrumented representative run...");
        let t = Instant::now();
        let obs_report = dynmds_harness::params::run_steady(representative_config(args.obs), scale);
        let obs_wall_s = t.elapsed().as_secs_f64();
        assert!(obs_report.obs.is_some(), "obs enabled but report carries no export");
        println!(
            "bench: obs {} overhead: {obs_wall_s:.3}s vs {rep_wall_s:.3}s ({:+.1}%)",
            if args.obs.trace { "metrics+trace" } else { "metrics" },
            100.0 * (obs_wall_s - rep_wall_s) / rep_wall_s.max(1e-9)
        );
    }

    let mut stages: Vec<(&str, f64)> = Vec::new();
    let mut stage = |name: &'static str, body: &mut dyn FnMut()| {
        eprintln!("bench: {name}...");
        let t = Instant::now();
        body();
        stages.push((name, t.elapsed().as_secs_f64()));
    };
    stage("fig2_fig3", &mut || drop(scaling::run_scaling(scale)));
    stage("fig4", &mut || drop(hitrate::run_hitrate(scale)));
    stage("fig5_fig6", &mut || drop(shiftrun::run_shift(scale)));
    stage("fig7", &mut || drop(flashrun::run_flash(scale)));
    stage("sci", &mut || drop(scirun::run_sci(scale)));
    stage("ablate_prefetch", &mut || drop(ablation::run_ablate_prefetch(scale)));
    stage("ablate_balance", &mut || drop(ablation::run_ablate_balance(scale)));
    stage("ablate_dirhash", &mut || drop(ablation::run_ablate_dir_hash(scale)));
    stage("ablate_leases", &mut || drop(ablation::run_ablate_leases(scale)));
    stage("ablate_probation", &mut || drop(ablation::run_ablate_probation(scale)));
    stage("ablate_shared_writes", &mut || drop(ablation::run_ablate_shared_writes(scale)));
    stage("ablate_warming", &mut || drop(ablation::run_ablate_journal_warming(scale)));

    let total_wall_s: f64 = stages.iter().map(|(_, s)| s).sum();

    // Hand-rolled JSON: the workspace deliberately has no JSON dependency.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"scale\": \"quick\",\n");
    json.push_str(&format!("  \"ops_simulated\": {ops_simulated},\n"));
    json.push_str(&format!("  \"representative_wall_s\": {rep_wall_s:.3},\n"));
    json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"scheduler_ops_per_sec\": {sched_ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"sharded_ops_per_sec\": {sharded_ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"sparse_ops_per_sec\": {sparse_ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"scale_ops_per_sec\": {scale_ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"hotspot_ops_per_sec\": {hotspot_ops_per_sec:.1},\n"));
    json.push_str(&format!("  \"elasticity_wall_s\": {elasticity_wall_s:.3},\n"));
    json.push_str(&format!("  \"availability_wall_s\": {availability_wall_s:.3},\n"));
    json.push_str(&format!("  \"namespace_bytes_per_inode\": {namespace_bytes_per_inode:.1},\n"));
    json.push_str("  \"sharded_scaling\": [\n");
    for (i, (shards, rate)) in sharded_curve.iter().enumerate() {
        let comma = if i + 1 < sharded_curve.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"ops_per_sec\": {rate:.1}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    ));
    json.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    json.push_str("  \"figures\": [\n");
    for (i, (name, secs)) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        json.push_str(&format!("    {{\"name\": \"{name}\", \"wall_s\": {secs:.3}}}{comma}\n"));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    json.push_str(&format!("  \"seed_quick_wall_s\": {SEED_QUICK_WALL_S:.1},\n"));
    json.push_str(&format!(
        "  \"speedup_vs_seed\": {:.2}\n",
        SEED_QUICK_WALL_S / total_wall_s.max(1e-9)
    ));
    json.push_str("}\n");

    let path = match &args.csv_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create output dir");
            format!("{dir}/BENCH_sim.json")
        }
        None => "BENCH_sim.json".to_string(),
    };
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    println!(
        "bench: {total_wall_s:.2}s for the quick suite ({:.2}x vs seed), \
         {ops_per_sec:.0} simulated ops/s, {sched_ops_per_sec:.0} scheduler ops/s, \
         {sharded_ops_per_sec:.0} sharded ops/s @ 8 shards",
        SEED_QUICK_WALL_S / total_wall_s.max(1e-9)
    );
    eprintln!("wrote {path}");
}

fn main() {
    // `torture` owns its flag grammar; dispatch before the figure parser.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("torture") {
        std::process::exit(dynmds_dst::cli::run_torture(&raw[1..]));
    }
    // `scale` owns its flag grammar too.
    if raw.first().map(String::as_str) == Some("scale") {
        std::process::exit(run_scale_cli(&raw[1..]));
    }
    let args = parse_args();
    if args.command == "bench" {
        run_bench(&args);
        return;
    }
    // Sharded-engine throughput only (the scaling curve `bench` embeds in
    // BENCH_sim.json), for quick iteration and the CI bench smoke.
    if args.command == "bench-sharded" {
        for shards in [1usize, 2, 4, 8] {
            let (r, rate) = sharded_bench_run(shards, SimDuration::from_secs(2));
            println!(
                "shards {shards}: {} ops ({:.1}% lease hits), {rate:.0} ops/s",
                r.ops,
                100.0 * r.lease_hits as f64 / r.ops.max(1) as f64
            );
        }
        let (r, rate) = sparse_bench_run(8, SimDuration::from_secs(60));
        println!("sparse 8 shards: {} ops, {rate:.0} ops/s (idle-window skip)", r.ops);
        return;
    }
    let scale = args.scale;
    let series_bin = match scale {
        ExperimentScale::Quick => SimDuration::from_secs(1),
        ExperimentScale::Full => SimDuration::from_secs(2),
    };

    let want = |name: &str| args.command == name || args.command == "all";

    // Everything a figure stage produces, captured so the stages can run
    // concurrently while stdout (tables, then summary lines) and CSVs are
    // emitted afterwards in the fixed canonical order — `experiments all`
    // prints the same bytes whether it ran on one worker or sixteen.
    struct StageOut {
        tables: Vec<(&'static str, Table)>,
        notes: Vec<String>,
    }
    impl StageOut {
        fn tables(tables: Vec<(&'static str, Table)>) -> Self {
            StageOut { tables, notes: Vec::new() }
        }
    }

    type Stage<'a> = Box<dyn Fn() -> StageOut + Sync + 'a>;
    let mut stages: Vec<Stage> = Vec::new();

    if want("fig2") || want("fig3") {
        stages.push(Box::new(|| {
            eprintln!("running scaling sweep (figures 2 and 3)...");
            let points = scaling::run_scaling(scale);
            let mut tables = Vec::new();
            if want("fig2") {
                tables.push(("fig2", scaling::fig2_table(&points)));
            }
            if want("fig3") {
                tables.push(("fig3", scaling::fig3_table(&points)));
            }
            tables.push(("scaling_detail", scaling::context_table(&points)));
            StageOut::tables(tables)
        }));
    }

    if want("fig4") {
        stages.push(Box::new(|| {
            eprintln!("running cache-size sweep (figure 4)...");
            let points = hitrate::run_hitrate(scale);
            StageOut::tables(vec![("fig4", hitrate::fig4_table(&points))])
        }));
    }

    if want("fig5") || want("fig6") {
        stages.push(Box::new(|| {
            eprintln!("running workload-shift comparison (figures 5 and 6)...");
            let r = shiftrun::run_shift(scale);
            let mut tables = Vec::new();
            if want("fig5") {
                tables.push(("fig5", shiftrun::fig5_table(&r, series_bin)));
            }
            if want("fig6") {
                tables.push(("fig6", shiftrun::fig6_table(&r, series_bin)));
            }
            let s = shiftrun::shift_summary(&r);
            let notes = vec![
                format!(
                    "post-shift mean per-MDS throughput: dynamic {:.0} ops/s vs static {:.0} ops/s",
                    s.dyn_after, s.sta_after
                ),
                format!(
                    "post-shift per-node spread (max-min): dynamic {:.0} vs static {:.0}\n",
                    s.dyn_spread, s.sta_spread
                ),
            ];
            StageOut { tables, notes }
        }));
    }

    if want("fig7") {
        stages.push(Box::new(|| {
            eprintln!("running flash crowd (figure 7)...");
            let r = flashrun::run_flash(scale);
            let bin = SimDuration::from_millis(50);
            let tables = vec![("fig7", flashrun::fig7_table(&r, bin))];
            let s = flashrun::flash_summary(&r, scale);
            let notes = vec![
                format!(
                    "time to serve 95% of the crowd: with TC {:.3}s, without TC {:.3}s",
                    s.tc_t95, s.notc_t95
                ),
                format!(
                    "total forwards: with TC {}, without TC {}\n",
                    s.tc_forwards, s.notc_forwards
                ),
            ];
            StageOut { tables, notes }
        }));
    }

    if want("sci") {
        stages.push(Box::new(|| {
            eprintln!("running scientific-burst workload comparison...");
            let pts = scirun::run_sci(scale);
            StageOut::tables(vec![("sci", scirun::sci_table(&pts))])
        }));
    }

    if want("ablate-prefetch") {
        stages.push(Box::new(|| {
            eprintln!("running prefetch ablation (Table A)...");
            let pts = ablation::run_ablate_prefetch(scale);
            StageOut::tables(vec![(
                "ablate_prefetch",
                ablation::ablation_table("Table A: embedded-inode directory prefetch", &pts),
            )])
        }));
    }

    if want("ablate-balance") {
        stages.push(Box::new(|| {
            eprintln!("running balancing ablation (Table B)...");
            let pts = ablation::run_ablate_balance(scale);
            StageOut::tables(vec![(
                "ablate_balance",
                ablation::ablation_table("Table B: load balancing vs total throughput", &pts),
            )])
        }));
    }

    if want("ablate-dirhash") {
        stages.push(Box::new(|| {
            eprintln!("running huge-directory hashing ablation (Table C)...");
            let pts = ablation::run_ablate_dir_hash(scale);
            StageOut::tables(vec![(
                "ablate_dirhash",
                ablation::ablation_table(
                    "Table C: entry-wise hashing of one huge hot directory",
                    &pts,
                ),
            )])
        }));
    }

    if want("ablate-leases") {
        stages.push(Box::new(|| {
            eprintln!("running client-lease ablation (Table E)...");
            let pts = ablation::run_ablate_leases(scale);
            StageOut::tables(vec![("ablate_leases", ablation::lease_table(&pts))])
        }));
    }

    if want("ablate-probation") {
        stages.push(Box::new(|| {
            eprintln!("running prefetch-insertion ablation (Table G)...");
            let pts = ablation::run_ablate_probation(scale);
            StageOut::tables(vec![(
                "ablate_probation",
                ablation::ablation_table(
                    "Table G: near-tail vs MRU insertion of prefetched metadata",
                    &pts,
                ),
            )])
        }));
    }

    if want("ablate-shared-writes") {
        stages.push(Box::new(|| {
            eprintln!("running shared-writes ablation (Table F)...");
            let pts = ablation::run_ablate_shared_writes(scale);
            StageOut::tables(vec![(
                "ablate_shared_writes",
                ablation::ablation_table(
                    "Table F: GPFS-style shared writes under an N-to-1 write crowd",
                    &pts,
                ),
            )])
        }));
    }

    if want("ablate-warming") {
        stages.push(Box::new(|| {
            eprintln!("running journal cache-warming ablation (Table D)...");
            let pts = ablation::run_ablate_journal_warming(scale);
            StageOut::tables(vec![(
                "ablate_warming",
                ablation::ablation_table(
                    "Table D: journal cache warming on failover (post-failure window)",
                    &pts,
                ),
            )])
        }));
    }

    if want("elasticity") {
        stages.push(Box::new(|| {
            eprintln!("running elastic-provisioning experiment (diurnal workload)...");
            let pts = dynmds_harness::elasticrun::run_elasticity(scale, args.shards, None);
            StageOut::tables(vec![(
                "elasticity",
                dynmds_harness::elasticrun::elasticity_table(&pts),
            )])
        }));
    }

    if want("hotspot") {
        stages.push(Box::new(|| {
            eprintln!("running hotspot-absorption experiment (proxy vs redirect)...");
            let pts = dynmds_harness::hotspotrun::run_hotspot(scale, args.shards, None);
            StageOut::tables(vec![("hotspot", dynmds_harness::hotspotrun::hotspot_table(&pts))])
        }));
    }

    if want("availability") {
        stages.push(Box::new(|| {
            eprintln!("running availability-under-churn experiment...");
            let schedule =
                args.faults.clone().unwrap_or_else(|| availability::default_schedule(scale));
            let pts = availability::run_availability(scale, &schedule);
            StageOut::tables(vec![("availability", availability::availability_table(&pts))])
        }));
    }

    // The stages fan out across workers (each stage also parallelizes its
    // own simulations internally); emission stays serial and ordered.
    for out in parallel_map(&stages, |stage| stage()) {
        for (name, table) in &out.tables {
            emit(&args, name, table);
        }
        for note in &out.notes {
            println!("{note}");
        }
    }
    // The stage closures borrow `args`; release them before the obs tail
    // takes it by value.
    drop(stages);

    // `obs` alone (or any figure combined with --obs/--obs-trace) ends
    // with the instrumented representative run.
    if args.obs.enabled() || args.command == "obs" {
        let mut args = args;
        if !args.obs.enabled() {
            args.obs = ObsConfig::metrics_only();
        }
        run_obs(&args);
    }
}

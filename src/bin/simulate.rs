//! General-purpose simulation driver: run any strategy/feature
//! combination from the command line and get a full report.
//!
//! ```text
//! simulate [flags]
//!   --strategy  static|dynamic|dirhash|filehash|lazyhybrid|elastic (dynamic)
//!   --mds N             servers                               (8)
//!   --clients N         clients                               (80)
//!   --items N           metadata items in the snapshot        (32000)
//!   --cache N           per-MDS cache capacity, inodes        (1200)
//!   --osds N            OSD pool size                         (16)
//!   --seconds N         measured virtual seconds              (20)
//!   --warmup N          warm-up virtual seconds               (8)
//!   --seed N            RNG seed                              (7)
//!   --shards N          run the sharded engine on N event queues (0 = legacy serial engine)
//!   --threads N         worker threads for the shard fan-out   (worker policy)
//!   --force-dense       sharded engine: execute every window, never skip idle spans
//!                       (debug/CI knob — output is byte-identical either way)
//!   --workload general|scientific|hotset|diurnal              (general)
//!   --diurnal-period N  diurnal day length, virtual seconds    (4)
//!   --night-mult X      night think-time multiplier            (150)
//!   --leases            enable client metadata leases
//!   --shared-writes     enable GPFS-style shared writes
//!   --proxy N           put N hotspot proxies in front of the cluster (0)
//!   --no-balancing      disable the load balancer
//!   --no-traffic-control  disable flash-crowd replication
//!   --dir-hash N        hash directories beyond N entries
//!   --fail MDS@SECS     kill a node mid-run (repeatable)
//!   --recover MDS@SECS  bring a node back (repeatable)
//!   --faults SPEC       deterministic fault schedule, `;`-separated:
//!                       crash:MDS@T  recover:MDS@T
//!                       churn:mtbf=10s,mttr=2s,seed=9,until=30s[,nodes=A-B]
//!                       disk:lat=4x,iops=0.5x,err=0.01[,scope=osd|journal|all]@FROM..UNTIL
//!                       net:loss=0.02,dup=0.01@FROM..UNTIL
//!   --obs               enable the metrics registry + snapshots
//!   --obs-trace         additionally record per-op lifecycle spans
//!   --obs-out DIR       where the obs JSONL exports go             (.)
//! ```
//!
//! With `--obs`/`--obs-trace` the run ends with a human-readable
//! observability summary and writes `obs_metrics.jsonl`,
//! `obs_snapshots.jsonl` and (tracing only) `obs_trace.jsonl`. All
//! exports are timestamped with the sim clock and byte-identical across
//! runs with the same seed.

use dynmds_core::{FaultEvent, ShardedSimulation, SimConfig, Simulation};
use dynmds_event::{SimDuration, SimTime};
use dynmds_metrics::Table;
use dynmds_namespace::{MdsId, Namespace, NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::{
    DiurnalWorkload, GeneralWorkload, HotSetWorkload, ScientificWorkload, Workload, WorkloadConfig,
};

struct Args {
    strategy: StrategyKind,
    n_mds: u16,
    n_clients: u32,
    items: u64,
    cache: usize,
    osds: usize,
    seconds: u64,
    warmup: u64,
    seed: u64,
    shards: usize,
    threads: Option<usize>,
    force_dense: bool,
    workload: String,
    diurnal_period: u64,
    night_mult: f64,
    leases: bool,
    shared_writes: bool,
    proxy: u16,
    no_balancing: bool,
    no_traffic_control: bool,
    dir_hash: usize,
    faults: Vec<(u16, u64, bool)>, // (mds, secs, is_recovery)
    fault_spec: Option<String>,
    obs: dynmds_obs::ObsConfig,
    obs_out: String,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("see `simulate --help` header comment in the source for flags");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_fault(v: &str) -> (u16, u64) {
    let (m, s) =
        v.split_once('@').unwrap_or_else(|| usage(&format!("bad fault spec {v}; want MDS@SECS")));
    (
        m.parse().unwrap_or_else(|_| usage("bad MDS index")),
        s.parse().unwrap_or_else(|_| usage("bad fault time")),
    )
}

fn parse_args() -> Args {
    let mut a = Args {
        strategy: StrategyKind::DynamicSubtree,
        n_mds: 8,
        n_clients: 80,
        items: 32_000,
        cache: 1_200,
        osds: 16,
        seconds: 20,
        warmup: 8,
        seed: 7,
        shards: 0,
        threads: None,
        force_dense: false,
        workload: "general".into(),
        diurnal_period: 4,
        night_mult: 150.0,
        leases: false,
        shared_writes: false,
        proxy: 0,
        no_balancing: false,
        no_traffic_control: false,
        dir_hash: 0,
        faults: Vec::new(),
        fault_spec: None,
        obs: dynmds_obs::ObsConfig::default(),
        obs_out: ".".into(),
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| usage(&format!("missing value for {flag}")))
    };
    while let Some(f) = it.next() {
        match f.as_str() {
            "--strategy" => {
                a.strategy = match next(&mut it, &f).as_str() {
                    "static" => StrategyKind::StaticSubtree,
                    "dynamic" => StrategyKind::DynamicSubtree,
                    "dirhash" => StrategyKind::DirHash,
                    "filehash" => StrategyKind::FileHash,
                    "lazyhybrid" => StrategyKind::LazyHybrid,
                    "elastic" => StrategyKind::ElasticSubtree,
                    other => usage(&format!("unknown strategy {other}")),
                }
            }
            "--mds" => a.n_mds = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --mds")),
            "--clients" => {
                a.n_clients = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --clients"))
            }
            "--items" => {
                a.items = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --items"))
            }
            "--cache" => {
                a.cache = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --cache"))
            }
            "--osds" => a.osds = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --osds")),
            "--seconds" => {
                a.seconds = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --seconds"))
            }
            "--warmup" => {
                a.warmup = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --warmup"))
            }
            "--seed" => a.seed = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --seed")),
            "--shards" => {
                a.shards = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --shards"))
            }
            "--threads" => {
                a.threads =
                    Some(next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--force-dense" => a.force_dense = true,
            "--workload" => a.workload = next(&mut it, &f),
            "--diurnal-period" => {
                a.diurnal_period =
                    next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --diurnal-period"))
            }
            "--night-mult" => {
                a.night_mult =
                    next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --night-mult"))
            }
            "--leases" => a.leases = true,
            "--shared-writes" => a.shared_writes = true,
            "--proxy" => {
                a.proxy = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --proxy"))
            }
            "--no-balancing" => a.no_balancing = true,
            "--no-traffic-control" => a.no_traffic_control = true,
            "--dir-hash" => {
                a.dir_hash = next(&mut it, &f).parse().unwrap_or_else(|_| usage("bad --dir-hash"))
            }
            "--fail" => {
                let (m, s) = parse_fault(&next(&mut it, &f));
                a.faults.push((m, s, false));
            }
            "--recover" => {
                let (m, s) = parse_fault(&next(&mut it, &f));
                a.faults.push((m, s, true));
            }
            "--faults" => a.fault_spec = Some(next(&mut it, &f)),
            "--obs" => a.obs.metrics = true,
            "--obs-trace" => {
                a.obs.metrics = true;
                a.obs.trace = true;
            }
            "--obs-out" => a.obs_out = next(&mut it, &f),
            "-h" | "--help" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    a
}

fn main() {
    let a = parse_args();
    let mut cfg = SimConfig::small(a.strategy);
    cfg.n_mds = a.n_mds;
    cfg.n_clients = a.n_clients;
    cfg.cache_capacity = a.cache;
    cfg.journal_capacity = a.cache * 4;
    cfg.n_osds = a.osds;
    cfg.seed = a.seed;
    cfg.client_leases = a.leases;
    cfg.shared_writes = a.shared_writes;
    cfg.proxy.count = a.proxy;
    cfg.force_dense = a.force_dense;
    cfg.dir_hash_threshold = a.dir_hash;
    if a.no_balancing {
        cfg.balancing = false;
    }
    if a.no_traffic_control {
        cfg.traffic_control = false;
    }
    cfg.obs = a.obs;
    if let Some(spec) = &a.fault_spec {
        cfg.faults = dynmds_core::FaultSchedule::parse(spec)
            .unwrap_or_else(|e| usage(&format!("bad --faults spec: {e}")));
    }

    let snapshot =
        NamespaceSpec::with_target_items(a.n_clients as usize, a.items, a.seed ^ 0xF5).generate();
    let stats = snapshot.stats();
    println!(
        "snapshot: {} items ({} dirs, max depth {}); cluster: {} × {}-inode caches; {} clients\n",
        stats.total, stats.dirs, stats.max_depth, a.n_mds, a.cache, a.n_clients
    );

    if a.shards > 0 {
        run_sharded(&a, cfg, snapshot);
        return;
    }

    let workload: Box<dyn Workload> = match a.workload.as_str() {
        "general" => Box::new(GeneralWorkload::new(
            WorkloadConfig { seed: a.seed ^ 0x17, ..Default::default() },
            a.n_clients as usize,
            &snapshot.user_homes,
            &snapshot.shared_roots,
            &snapshot.ns,
        )),
        "diurnal" => Box::new(DiurnalWorkload::new(
            GeneralWorkload::new(
                WorkloadConfig { seed: a.seed ^ 0x17, ..Default::default() },
                a.n_clients as usize,
                &snapshot.user_homes,
                &snapshot.shared_roots,
                &snapshot.ns,
            ),
            SimDuration::from_secs(a.diurnal_period),
            a.night_mult,
        )),
        "scientific" => {
            let shared_dirs: Vec<_> = snapshot
                .shared_roots
                .iter()
                .flat_map(|&r| snapshot.ns.walk(r).filter(|&i| snapshot.ns.is_dir(i)).take(4))
                .collect();
            Box::new(ScientificWorkload::new(
                a.seed ^ 0x17,
                a.n_clients as usize,
                &snapshot.user_homes,
                &shared_dirs,
                SimDuration::from_secs(8),
                SimDuration::from_secs(2),
            ))
        }
        other => usage(&format!("unknown workload {other}")),
    };

    let mut sim = Simulation::new(cfg, snapshot, workload);
    for &(m, s, recovery) in &a.faults {
        if recovery {
            sim.schedule_recovery(SimTime::from_secs(s), MdsId(m));
        } else {
            sim.schedule_failure(SimTime::from_secs(s), MdsId(m));
        }
    }
    sim.run_until(SimTime::from_secs(a.warmup));
    sim.cluster_mut().reset_measurement(SimTime::from_secs(a.warmup));
    sim.run_until(SimTime::from_secs(a.warmup + a.seconds));

    let migrations = sim.cluster().migrations;
    let lease_hits = sim.cluster().clients.lease_hits();
    let absorbed = sim.cluster().shared_write_absorbed;
    let timeouts = sim.cluster().failover_timeouts;
    let (retries, gave_up) = (sim.cluster().retries_total, sim.cluster().gave_up);
    let (net_lost, net_dup) = (sim.cluster().net_lost, sim.cluster().net_dup);
    let (proxy_absorbed, proxy_forwarded) =
        (sim.cluster().proxy_absorbed, sim.cluster().proxy_forwarded);
    let report = sim.finish();

    println!("== results over {:.0} measured seconds ==", report.span_secs());
    println!("per-MDS throughput : {:.0} ops/s", report.avg_mds_throughput());
    println!("cache hit rate     : {:.1} %", report.overall_hit_rate() * 100.0);
    println!("prefix cache share : {:.1} %", report.mean_prefix_pct());
    println!(
        "forwarded requests : {:.2} %",
        100.0 * report.total_forwarded() as f64 / report.total_received().max(1) as f64
    );
    println!(
        "latency mean/p50/p99: {:.2} / {:.2} / {:.2} ms",
        report.latency.mean().unwrap_or(0.0) * 1e3,
        report.latency.median().unwrap_or(0.0) * 1e3,
        report.latency.quantile(0.99).unwrap_or(0.0) * 1e3,
    );
    if migrations > 0 {
        println!("subtree migrations : {migrations}");
    }
    if lease_hits > 0 {
        println!("lease-served reads : {lease_hits}");
    }
    if absorbed > 0 {
        println!("shared writes absorbed: {absorbed}");
    }
    if proxy_absorbed > 0 || proxy_forwarded > 0 {
        println!("proxy absorbed     : {proxy_absorbed} ({proxy_forwarded} forwarded hot)");
    }
    if timeouts > 0 {
        println!("failover timeouts  : {timeouts}");
    }
    if retries > 0 || gave_up > 0 {
        println!("client retries     : {retries} ({gave_up} gave up)");
    }
    if net_lost > 0 || net_dup > 0 {
        println!("network faults     : {net_lost} lost, {net_dup} duplicated");
    }

    println!("\nlatency distribution:");
    print!("{}", report.latency.histogram(0.0005, 8).render(40));

    let mut t =
        Table::new("per-node detail", &["node", "served", "fwd", "hit%", "prefix%", "cache"]);
    for (i, n) in report.nodes.iter().enumerate() {
        t.row(&[
            format!("mds{i}"),
            n.served.to_string(),
            n.forwarded.to_string(),
            format!("{:.1}", n.hit_rate * 100.0),
            format!("{:.1}", n.prefix_fraction * 100.0),
            n.cache_len.to_string(),
        ]);
    }
    println!("\n{}", t.render());

    if let Some(export) = &report.obs {
        println!("\n{}", export.summary);
        std::fs::create_dir_all(&a.obs_out).expect("create --obs-out dir");
        let mut outputs = vec![
            ("obs_metrics.jsonl", &export.metrics_jsonl),
            ("obs_snapshots.jsonl", &export.snapshots_jsonl),
        ];
        if let Some(trace) = &export.trace_jsonl {
            outputs.push(("obs_trace.jsonl", trace));
        }
        for (name, body) in outputs {
            let path = format!("{}/{name}", a.obs_out);
            std::fs::write(&path, body).expect("write obs jsonl");
            eprintln!("wrote {path}");
        }
    }
}

/// Per-shard workload builder: each shard gets its own generator over its
/// own namespace replica, all seeded identically.
type WorkloadFactory = Box<dyn Fn(&Namespace) -> Box<dyn Workload + Send>>;

/// The `--shards N` path: one run over N event queues with deterministic
/// cross-shard exchanges. The report/CSV surface is invariant in N.
fn run_sharded(a: &Args, mut cfg: SimConfig, snapshot: Snapshot) {
    if cfg.obs.trace {
        usage("--obs-trace is not supported with --shards (no per-op spans)");
    }
    // The legacy --fail/--recover flags fold into the declarative fault
    // schedule the sharded engine consumes.
    for &(m, s, recovery) in &a.faults {
        let (at, mds) = (SimTime::from_secs(s), MdsId(m));
        cfg.faults.events.push(if recovery {
            FaultEvent::Recover { at, mds }
        } else {
            FaultEvent::Crash { at, mds }
        });
    }
    dynmds_harness::parallel::install_shard_driver();

    let n_clients = a.n_clients as usize;
    let seed = a.seed;
    let factory: WorkloadFactory = match a.workload.as_str() {
        "general" => {
            let homes = snapshot.user_homes.clone();
            let shared = snapshot.shared_roots.clone();
            Box::new(move |ns: &Namespace| {
                Box::new(GeneralWorkload::new(
                    WorkloadConfig { seed: seed ^ 0x17, ..Default::default() },
                    n_clients,
                    &homes,
                    &shared,
                    ns,
                )) as Box<dyn Workload + Send>
            })
        }
        "diurnal" => {
            let homes = snapshot.user_homes.clone();
            let shared = snapshot.shared_roots.clone();
            let (period, mult) = (SimDuration::from_secs(a.diurnal_period), a.night_mult);
            Box::new(move |ns: &Namespace| {
                Box::new(DiurnalWorkload::new(
                    GeneralWorkload::new(
                        WorkloadConfig { seed: seed ^ 0x17, ..Default::default() },
                        n_clients,
                        &homes,
                        &shared,
                        ns,
                    ),
                    period,
                    mult,
                )) as Box<dyn Workload + Send>
            })
        }
        "hotset" => Box::new(move |ns: &Namespace| {
            Box::new(HotSetWorkload::new(ns, n_clients, 32, seed ^ 0x17))
                as Box<dyn Workload + Send>
        }),
        other => usage(&format!(
            "workload {other} is not supported with --shards (use general|hotset|diurnal)"
        )),
    };

    let sim = ShardedSimulation::new(cfg, a.shards, a.threads, snapshot, &*factory);
    let report =
        sim.run_measured(SimDuration::from_secs(a.warmup), SimDuration::from_secs(a.seconds));
    print!("{}", report.render());

    if let Some(export) = &report.obs {
        println!("\n{}", export.summary);
        std::fs::create_dir_all(&a.obs_out).expect("create --obs-out dir");
        for (name, body) in [
            ("obs_metrics.jsonl", &export.metrics_jsonl),
            ("obs_snapshots.jsonl", &export.snapshots_jsonl),
        ] {
            let path = format!("{}/{name}", a.obs_out);
            std::fs::write(&path, body).expect("write obs jsonl");
            eprintln!("wrote {path}");
        }
    }
}

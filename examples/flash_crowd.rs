//! Flash crowd demo (§4.4 / Figure 7): a thousand clients open the same
//! file at once, with and without traffic control.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use dynmds::core::{SimConfig, SimReport, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::FlashCrowd;

const CLIENTS: u32 = 1_000;

fn run(traffic_control: bool) -> SimReport {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_clients = CLIENTS;
    cfg.cache_capacity = 4_000;
    cfg.traffic_control = traffic_control;
    cfg.replication_threshold = 64.0;
    cfg.balancing = false;
    cfg.sample_every = SimDuration::from_millis(25);
    cfg.costs.think_mean = SimDuration::from_millis(50);

    let snapshot = NamespaceSpec { users: 32, seed: 7, ..Default::default() }.generate();
    // The shared hot file every client wants.
    let shared = snapshot.shared_roots[0];
    let target = snapshot
        .ns
        .walk(shared)
        .find(|&id| !snapshot.ns.is_dir(id))
        .expect("shared tree has files");
    println!(
        "{} clients storming {} (traffic control {})",
        CLIENTS,
        snapshot.ns.path_of(target).unwrap(),
        if traffic_control { "ON" } else { "OFF" }
    );

    let workload = Box::new(FlashCrowd::new(target, CLIENTS as usize));
    // The crowd arrives within 150 ms, starting at t = 100 ms.
    let mut sim = Simulation::with_start(
        cfg,
        snapshot,
        workload,
        SimTime::from_millis(100),
        SimDuration::from_millis(150),
    );
    sim.run_until(SimTime::from_secs(2));
    sim.finish()
}

fn main() {
    for tc in [false, true] {
        let report = run(tc);
        let rates = report.reply_forward_rates(SimDuration::from_millis(100));
        println!("  t(ms)   replies/s  forwards/s");
        for (t, replies, forwards) in rates.iter().take(12) {
            println!("  {:>5.0}   {:>9.0}  {:>10.0}", t.as_secs_f64() * 1e3, replies, forwards);
        }
        println!(
            "  total: {} replies, {} forwards, peak-node share of replies {:.1}%\n",
            report.total_served(),
            report.total_forwarded(),
            100.0 * report.nodes.iter().map(|n| n.served).max().unwrap_or(0) as f64
                / report.total_served().max(1) as f64,
        );
    }
    println!(
        "With traffic control the authority replicates the hot file after the\n\
         popularity counter trips, replies come from every node, and the\n\
         forward storm disappears — the paper's Figure 7 contrast."
    );
}

//! Workload-shift demo (§5.3.2 / Figure 5): half the clients migrate into
//! one server's territory mid-run; dynamic subtree partitioning rebalances
//! while a static partition saturates the unlucky node.
//!
//! ```text
//! cargo run --release --example workload_shift
//! ```

use dynmds::core::{SimConfig, SimReport, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::namespace::{ClientId, NamespaceSpec};
use dynmds::partition::{StrategyKind, SubtreePartition};
use dynmds::workload::{GeneralWorkload, ShiftingWorkload, WorkloadConfig};

const N_MDS: u16 = 6;
const N_CLIENTS: u32 = 48;
const SHIFT_AT_SECS: u64 = 10;
const END_SECS: u64 = 35;

fn run(strategy: StrategyKind) -> SimReport {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = N_MDS;
    cfg.n_clients = N_CLIENTS;
    cfg.seed = 99;

    // Active homes for the clients plus dormant homes that become the
    // migration destination.
    let snapshot = NamespaceSpec::with_target_items(N_CLIENTS as usize + 24, 15_000, 5).generate();
    let active = &snapshot.user_homes[..N_CLIENTS as usize];
    let reserve = &snapshot.user_homes[N_CLIENTS as usize..];

    // Destination: dormant homes that one single MDS serves.
    let preview = SubtreePartition::initial_near_root(&snapshot.ns, N_MDS, 2);
    let victim = preview.authority(&snapshot.ns, reserve[0]);
    let destinations: Vec<_> =
        reserve.iter().copied().filter(|&h| preview.authority(&snapshot.ns, h) == victim).collect();

    let base = GeneralWorkload::new(
        WorkloadConfig { seed: 13, ..Default::default() },
        N_CLIENTS as usize,
        active,
        &snapshot.shared_roots,
        &snapshot.ns,
    );
    let movers: Vec<ClientId> = (0..N_CLIENTS).filter(|c| c % 2 == 0).map(ClientId).collect();
    let workload = Box::new(ShiftingWorkload::new(
        base,
        SimTime::from_secs(SHIFT_AT_SECS),
        movers,
        destinations,
    ));

    let mut sim = Simulation::new(cfg, snapshot, workload);
    sim.run_until(SimTime::from_secs(END_SECS));
    sim.finish()
}

fn main() {
    println!(
        "{N_CLIENTS} clients on {N_MDS} servers; at t={SHIFT_AT_SECS}s half of them migrate\n\
         into dormant territory served by ONE node and start creating files.\n"
    );
    let dynamic = run(StrategyKind::DynamicSubtree);
    let static_ = run(StrategyKind::StaticSubtree);

    let bin = SimDuration::from_secs(2);
    println!("per-MDS throughput (ops/s), min..max across nodes:");
    println!("  t(s)   dynamic              static");
    let d = dynamic.throughput_range_series(bin);
    let s = static_.throughput_range_series(bin);
    for (dp, sp) in d.iter().zip(s.iter()) {
        println!(
            "  {:>4.0}   {:>5.0} .. {:<6.0}      {:>5.0} .. {:<6.0}",
            dp.0.as_secs_f64(),
            dp.1,
            dp.3,
            sp.1,
            sp.3
        );
    }

    println!("\nforwarded-request fraction (client route rediscovery):");
    let df = dynamic.forward_fraction_series(bin);
    let sf = static_.forward_fraction_series(bin);
    println!("  t(s)   dynamic  static");
    for (dp, sp) in df.iter().zip(sf.iter()) {
        println!("  {:>4.0}   {:>7.3}  {:>6.3}", dp.0.as_secs_f64(), dp.1, sp.1);
    }

    println!(
        "\nThe static partition leaves one node saturated (wide min..max range)\n\
         while dynamic subtree partitioning re-delegates the hot subtrees —\n\
         at the cost of the elevated forward fraction while clients rediscover\n\
         migrated metadata (Figures 5 and 6)."
    );
}

//! Failover demo (§2.1.2 / §4.6): kill a metadata server mid-run, watch
//! the survivors take over its subtrees and warm their caches from the
//! shared journal, then bring it back and watch the balancer re-integrate
//! it.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::metrics::AsciiChart;
use dynmds::namespace::{MdsId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

const FAIL_AT: u64 = 10;
const RECOVER_AT: u64 = 25;
const END: u64 = 45;
const VICTIM: MdsId = MdsId(1);

fn main() {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 48;
    cfg.seed = 31;
    let snapshot = NamespaceSpec::with_target_items(48, 12_000, 8).generate();
    let workload = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 32, ..Default::default() },
        48,
        &snapshot.user_homes,
        &snapshot.shared_roots,
        &snapshot.ns,
    ));
    let mut sim = Simulation::new(cfg, snapshot, workload);
    sim.schedule_failure(SimTime::from_secs(FAIL_AT), VICTIM);
    sim.schedule_recovery(SimTime::from_secs(RECOVER_AT), VICTIM);

    println!(
        "4-node cluster, 48 clients; {VICTIM} dies at t={FAIL_AT}s and returns at t={RECOVER_AT}s\n"
    );
    sim.run_until(SimTime::from_secs(END));
    let cluster = sim.cluster();
    println!("failures: {}  recoveries: {}", cluster.failures, cluster.recoveries);
    println!("requests that timed out against the dead node: {}", cluster.failover_timeouts);
    println!(
        "recovered node cache after journal warm-up: {} items\n",
        cluster.nodes[VICTIM.index()].cache.len()
    );

    let report = sim.finish();
    let bin = SimDuration::from_secs(1);
    let victim_pts: Vec<(f64, f64)> = report.served_series[VICTIM.index()]
        .binned(SimTime::ZERO, SimTime::from_secs(END), bin)
        .into_iter()
        .map(|(t, sum, _)| (t.as_secs_f64(), sum))
        .collect();
    let others_pts: Vec<(f64, f64)> = {
        let mut acc = vec![0.0f64; END as usize];
        for (i, s) in report.served_series.iter().enumerate() {
            if i == VICTIM.index() {
                continue;
            }
            for (k, (_, sum, _)) in
                s.binned(SimTime::ZERO, SimTime::from_secs(END), bin).into_iter().enumerate()
            {
                acc[k] += sum;
            }
        }
        acc.into_iter().enumerate().map(|(k, v)| (k as f64, v / 3.0)).collect()
    };

    let mut chart =
        AsciiChart::new("ops/s over time — v = victim node, s = survivors (avg)", 72, 14);
    chart.series('s', &others_pts);
    chart.series('v', &victim_pts);
    println!("{}", chart.render());
    println!(
        "The victim's throughput collapses to zero at t={FAIL_AT}s while survivors\n\
         absorb its subtrees (warmed from the shared journal, §4.6); after the\n\
         recovery at t={RECOVER_AT}s the balancer migrates load back."
    );
}

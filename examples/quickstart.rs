//! Quickstart: build a namespace, run a small dynamic-subtree MDS cluster
//! under a general-purpose workload, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimDuration;
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn main() {
    // 1. A synthetic snapshot: 48 home directories, ~10k metadata items.
    let spec = NamespaceSpec::with_target_items(48, 10_000, 42);
    let snapshot = spec.generate();
    let stats = snapshot.stats();
    println!(
        "namespace: {} files, {} dirs, max depth {}, {:.1} files/dir",
        stats.files, stats.dirs, stats.max_depth, stats.mean_files_per_dir
    );

    // 2. A 4-server cluster running dynamic subtree partitioning with
    //    load balancing and traffic control enabled.
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_clients = 48;
    println!(
        "cluster: {} MDS nodes, {} clients, {} inode cache per node",
        cfg.n_mds, cfg.n_clients, cfg.cache_capacity
    );

    // 3. A general-purpose workload: stat-dominated, open/close pairs,
    //    readdir→stat bursts, strong directory locality.
    let workload = Box::new(GeneralWorkload::new(
        WorkloadConfig::default(),
        cfg.n_clients as usize,
        &snapshot.user_homes,
        &snapshot.shared_roots,
        &snapshot.ns,
    ));

    // 4. Run 5 virtual seconds of warm-up, then measure 15.
    let sim = Simulation::new(cfg, snapshot, workload);
    let report = sim.run_measured(SimDuration::from_secs(5), SimDuration::from_secs(15));

    // 5. Results.
    println!("\nmeasured {:.0} s of virtual time:", report.span_secs());
    println!("  total ops served      : {}", report.total_served());
    println!("  per-MDS throughput    : {:.0} ops/s", report.avg_mds_throughput());
    println!("  cache hit rate        : {:.1} %", report.overall_hit_rate() * 100.0);
    println!("  prefix share of cache : {:.1} %", report.mean_prefix_pct());
    println!("  mean client latency   : {:.2} ms", report.latency.mean().unwrap_or(0.0) * 1e3);
    println!(
        "  forwarded requests    : {:.1} %",
        100.0 * report.total_forwarded() as f64 / report.total_received().max(1) as f64
    );
    for (i, n) in report.nodes.iter().enumerate() {
        println!(
            "  mds{i}: served {:>6}  hit {:>5.1}%  cache {:>4} items  ({} prefix-only)",
            n.served,
            n.hit_rate * 100.0,
            n.cache_len,
            (n.prefix_fraction * n.cache_len as f64) as u64,
        );
    }
}

//! Scientific-computing workload demo (§5.2): LLNL-style synchronized
//! bursts — all clients opening the same checkpoint file, then all
//! creating files in the same directory — interleaved with independent
//! analysis phases. Shows how the burst phases concentrate (and, with
//! traffic control, re-spread) load.
//!
//! ```text
//! cargo run --release --example scientific_bursts
//! ```

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::metrics::AsciiChart;
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::ScientificWorkload;

const N_MDS: u16 = 6;
const N_CLIENTS: u32 = 72;
const PERIOD_S: u64 = 8;
const BURST_S: u64 = 2;
const END_S: u64 = 40;

fn main() {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = N_MDS;
    cfg.n_clients = N_CLIENTS;
    cfg.cache_capacity = 2_500;
    cfg.replication_threshold = 48.0;
    cfg.seed = 23;

    let snapshot = NamespaceSpec {
        users: N_CLIENTS as usize / 2,
        shared_trees: 6,
        seed: 17,
        ..Default::default()
    }
    .generate();
    let shared_dirs: Vec<_> = snapshot
        .shared_roots
        .iter()
        .flat_map(|&r| snapshot.ns.walk(r).filter(|&i| snapshot.ns.is_dir(i)).take(3))
        .collect();
    println!(
        "{N_CLIENTS} compute clients on {N_MDS} MDS nodes; every {PERIOD_S}s a {BURST_S}s burst\n\
         alternates between N-to-1 checkpoint opens and same-directory create storms.\n"
    );
    let workload = Box::new(ScientificWorkload::new(
        29,
        N_CLIENTS as usize,
        &snapshot.user_homes,
        &shared_dirs,
        SimDuration::from_secs(PERIOD_S),
        SimDuration::from_secs(BURST_S),
    ));
    let mut sim = Simulation::new(cfg, snapshot, workload);
    sim.run_until(SimTime::from_secs(END_S));
    let replicated = sim.cluster().replicated_count();
    let report = sim.finish();

    // Cluster-wide throughput over time: bursts show as spikes.
    let bin = SimDuration::from_millis(500);
    let pts: Vec<(f64, f64)> = {
        let mut acc = vec![0.0f64; (END_S * 2) as usize];
        for s in &report.served_series {
            for (k, (_, sum, _)) in
                s.binned(SimTime::ZERO, SimTime::from_secs(END_S), bin).into_iter().enumerate()
            {
                acc[k] += sum * 2.0; // per-second rate
            }
        }
        acc.into_iter().enumerate().map(|(k, v)| (k as f64 / 2.0, v)).collect()
    };
    let mut chart = AsciiChart::new("cluster ops/s over time (bursts every 8s)", 76, 12);
    chart.series('*', &pts);
    println!("{}", chart.render());

    println!(
        "burst targets replicated by traffic control : {replicated}\n\
         total ops served                             : {}\n\
         mean latency {:.2} ms, p99 {:.2} ms",
        report.total_served(),
        report.latency.mean().unwrap_or(0.0) * 1e3,
        report.latency.quantile(0.99).unwrap_or(0.0) * 1e3,
    );
    println!(
        "\nThe open-bursts hammer one file: traffic control replicates it and the\n\
         whole cluster answers. The create-bursts hammer one directory: those are\n\
         writes, so they serialize at its authority — the case §4.3's dynamic\n\
         directory hashing (see `experiments ablate-dirhash`) exists for."
    );
}

//! Strategy face-off: run all five partitioning strategies on the same
//! snapshot and workload, print a comparison table (a miniature Figure 2
//! data point plus the cache effects behind it).
//!
//! ```text
//! cargo run --release --example strategy_faceoff
//! ```

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimDuration;
use dynmds::metrics::Table;
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn main() {
    let mut table = Table::new(
        "five strategies, identical cluster and workload",
        &["strategy", "ops/s/MDS", "hit%", "prefix%", "fwd%", "latency_ms"],
    );

    for strategy in StrategyKind::ALL {
        let mut cfg = SimConfig::small(strategy);
        cfg.n_mds = 6;
        cfg.n_clients = 60;
        cfg.seed = 21;
        let snapshot = NamespaceSpec::with_target_items(60, 18_000, 3).generate();
        let workload = Box::new(GeneralWorkload::new(
            WorkloadConfig { seed: 8, ..Default::default() },
            cfg.n_clients as usize,
            &snapshot.user_homes,
            &snapshot.shared_roots,
            &snapshot.ns,
        ));
        let sim = Simulation::new(cfg, snapshot, workload);
        let r = sim.run_measured(SimDuration::from_secs(5), SimDuration::from_secs(15));
        table.row(&[
            strategy.label().to_string(),
            format!("{:.0}", r.avg_mds_throughput()),
            format!("{:.1}", r.overall_hit_rate() * 100.0),
            format!("{:.1}", r.mean_prefix_pct()),
            format!("{:.1}", 100.0 * r.total_forwarded() as f64 / r.total_received().max(1) as f64),
            format!("{:.2}", r.latency.mean().unwrap_or(0.0) * 1e3),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Subtree partitioning keeps prefix overhead low and exploits directory\n\
         locality; directory hashing keeps the embedding but scatters the tree;\n\
         file hashing loses both; Lazy Hybrid skips path traversal entirely but\n\
         pays per-inode I/O (§5.3 of the paper)."
    );
}

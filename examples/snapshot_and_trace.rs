//! Snapshot + trace methodology demo (§5.2 / §7): generate a file-system
//! snapshot, record a workload trace against it, persist both, then
//! replay the trace over a re-imported snapshot and verify the simulated
//! cluster behaves identically — the paper's prescription that traces need
//! "matching file system metadata snapshots".
//!
//! ```text
//! cargo run --release --example snapshot_and_trace
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::{ClientId, Namespace, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{
    GeneralWorkload, Op, Trace, TraceRecorder, TraceReplay, Workload, WorkloadConfig,
};

const SNAPSHOT_SEED: u64 = 2026;
const CLIENTS: u32 = 24;

struct PublishingRecorder {
    inner: TraceRecorder<GeneralWorkload>,
    out: Rc<RefCell<Option<Trace>>>,
}

impl Drop for PublishingRecorder {
    fn drop(&mut self) {
        *self.out.borrow_mut() = Some(self.inner.trace().clone());
    }
}

impl Workload for PublishingRecorder {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        self.inner.next_op(ns, client, now)
    }
    fn clients(&self) -> usize {
        self.inner.clients()
    }
    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }
}

fn main() {
    // 1. Generate and persist the snapshot.
    let snap = NamespaceSpec::with_target_items(CLIENTS as usize, 8_000, SNAPSHOT_SEED).generate();
    let image = snap.ns.to_image();
    println!(
        "snapshot: {} items ({} slots incl. tombstones), {} hard-link dentries",
        snap.ns.total_items(),
        image.slots.len(),
        image.extra_links.len()
    );

    // 2. Run a live simulation, recording the workload.
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_clients = CLIENTS;
    cfg.seed = 7;
    let uids: Vec<u32> = {
        let w = base_workload(&snap);
        (0..CLIENTS).map(|c| w.uid_of(ClientId(c))).collect()
    };
    let shared = Rc::new(RefCell::new(None));
    let recorder = PublishingRecorder {
        inner: TraceRecorder::new(base_workload(&snap), SNAPSHOT_SEED),
        out: shared.clone(),
    };
    let mut live = Simulation::new(cfg.clone(), snap, Box::new(recorder));
    live.run_until(SimTime::from_secs(8));
    let live_served: u64 = live.cluster().nodes.iter().map(|n| n.life.served).sum();
    let live_items = live.cluster().ns.total_items();
    drop(live);
    let trace = shared.borrow_mut().take().expect("trace published");
    println!(
        "live run : {} ops served, namespace grew to {} items, trace holds {} records",
        live_served,
        live_items,
        trace.len()
    );

    // 3. Rebuild the snapshot from its image and replay the trace.
    let ns = Namespace::from_image(&image).expect("image is valid");
    ns.validate().expect("rebuilt tree is sound");
    let rebuilt = regenerate_snapshot_with(ns);
    let replay = Box::new(TraceReplay::new(&trace, uids));
    let mut replayed = Simulation::new(cfg, rebuilt, replay);
    replayed.run_until(SimTime::from_secs(8));
    let replay_served: u64 = replayed.cluster().nodes.iter().map(|n| n.life.served).sum();
    let replay_items = replayed.cluster().ns.total_items();
    println!("replay   : {replay_served} ops served, namespace grew to {replay_items} items");

    assert_eq!(live_served, replay_served, "replay must match the live run");
    assert_eq!(live_items, replay_items);
    println!("\nlive and replayed runs are identical — trace + snapshot round trip works.");
}

fn base_workload(snap: &dynmds::namespace::Snapshot) -> GeneralWorkload {
    GeneralWorkload::new(
        WorkloadConfig { seed: 9, ..Default::default() },
        CLIENTS as usize,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    )
}

/// Wraps a re-imported namespace in a Snapshot shell (home/shared roots
/// recovered by path).
fn regenerate_snapshot_with(ns: Namespace) -> dynmds::namespace::Snapshot {
    let user_homes: Vec<_> = (0..CLIENTS as usize)
        .map(|u| ns.resolve(&format!("/home/user{u:04}")).expect("home survives"))
        .collect();
    let shared_roots: Vec<_> = (0..).map_while(|s| ns.resolve(&format!("/proj{s}")).ok()).collect();
    dynmds::namespace::Snapshot { ns, user_homes, shared_roots }
}

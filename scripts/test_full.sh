#!/usr/bin/env bash
# Tier-2 test sweep: everything tier-1 runs, plus the long-running fuzz
# and churn properties gated behind the `slow-tests` feature, plus a full
# DST torture campaign (hundreds of seeded scenarios per strategy against
# the reference-model oracle). Expect minutes, not seconds — run before
# release-sized changes; `scripts/check.sh` stays the fast pre-merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1 + gated slow tests (release)"
cargo test --release --offline --locked --workspace \
    --features slow-tests -- --include-ignored

echo "==> DST torture: 200 seeds x all strategies"
cargo build --release --offline --locked
target/release/experiments torture --seeds 200 --ops 2000

echo "==> DST torture: 100 seeds x all strategies, proxy tier forced on"
target/release/experiments torture --seeds 100 --ops 2000 --proxy 2

echo "==> hotspot figure determinism (shards 1 vs 4)"
for k in 1 4; do
    mkdir -p "target/hotspot-full/k$k"
    target/release/experiments --quick --shards "$k" \
        --csv "target/hotspot-full/k$k" hotspot > /dev/null 2>&1
done
cmp target/hotspot-full/k1/hotspot.csv target/hotspot-full/k4/hotspot.csv

echo "==> scale smoke (streaming namespace, memory + determinism gates)"
./scripts/scale_smoke.sh

echo "ok: full test sweep passed"

#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Everything runs offline against the vendored dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: release build + tests"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "ok: all checks passed"

#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Everything runs offline against the vendored dependencies, and
# --locked makes any Cargo.lock drift a hard failure instead of a
# silent rewrite. (`cargo fmt` is the one invocation without --locked:
# rustfmt's wrapper rejects the flag and never touches the lockfile.)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "==> tier-1: release build + tests"
cargo build --release --offline --locked --workspace
cargo test -q --offline --locked --workspace

echo "ok: all checks passed"

#!/usr/bin/env bash
# CI scale smoke: the streaming-namespace scale tier at smoke size
# (~10^6 logical inodes, 50k clients) — seconds, not the CI-excluded
# full tier (10^8 inodes, 10^6 clients; `experiments scale --full`).
#
# Gates, in order:
#   1. determinism — two identical runs must produce byte-identical CSVs;
#   2. memory      — namespace footprint <= 64 bytes per materialized
#                    inode (every strategy row), peak RSS under budget;
#   3. liveness    — every strategy completed operations.
#
# The fresh CSV lands in target/scale-smoke/ for CI to upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/scale-smoke
# Per-inode namespace budget (bytes) and whole-process peak RSS budget.
BPI_BUDGET=64
RSS_BUDGET=$((1024 * 1024 * 1024)) # 1 GiB

mkdir -p "$OUT/a" "$OUT/b"

cargo build --release --offline --locked --bin experiments

./target/release/experiments scale --smoke --out "$OUT/a" | tee "$OUT/a/stdout.txt"
./target/release/experiments scale --smoke --out "$OUT/b" > "$OUT/b/stdout.txt"

echo "scale smoke: comparing the two runs' CSVs..."
cmp "$OUT/a/scale.csv" "$OUT/b/scale.csv"
cp "$OUT/a/scale.csv" "$OUT/scale.csv"

# Column-name-driven so reordering the table doesn't silently un-gate.
awk -F, -v budget="$BPI_BUDGET" '
    NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
    {
        strategy = $col["strategy"]; bpi = $col["bytes_per_inode"] + 0
        ops = $col["ops"] + 0
        printf "scale smoke: %s: %.1f B/inode, %d ops\n", strategy, bpi, ops
        if (bpi > budget) {
            printf "scale smoke: FAIL — %s namespace at %.1f B/inode (budget %d)\n", strategy, bpi, budget
            exit 1
        }
        if (ops <= 0) {
            printf "scale smoke: FAIL — %s completed no operations\n", strategy
            exit 1
        }
    }
' "$OUT/scale.csv"

rss=$(grep -o 'peak RSS [0-9]* bytes' "$OUT/a/stdout.txt" | grep -o '[0-9]*')
if [ -z "$rss" ] || [ "$rss" -eq 0 ]; then
    echo "scale smoke: peak RSS unavailable (/proc?); skipping the RSS gate"
elif [ "$rss" -gt "$RSS_BUDGET" ]; then
    echo "scale smoke: FAIL — peak RSS $rss bytes over the $RSS_BUDGET budget"
    exit 1
else
    echo "scale smoke: peak RSS $rss bytes (budget $RSS_BUDGET)"
fi

echo "scale smoke: ok"

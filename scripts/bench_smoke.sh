#!/usr/bin/env bash
# CI bench smoke: run the quick experiment suite and fail if its wall
# time regresses more than 25% against the committed BENCH_sim.json.
# Pure timing gate — result correctness is the golden-figure job's
# concern. The fresh JSON lands in target/bench-smoke/ (the committed
# baseline is never overwritten) so CI can upload it as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/bench-smoke
mkdir -p "$OUT"

cargo run --release --offline --locked --bin experiments -- bench --csv "$OUT"

extract_field() {
    grep -o "\"$2\": *[0-9.]*" "$1" | grep -o '[0-9.]*$'
}
fresh=$(extract_field "$OUT/BENCH_sim.json" total_wall_s)
base=$(extract_field BENCH_sim.json total_wall_s)

# The sharded-engine figures must be present (the curve is the artifact
# trend-watchers chart; the headline is the 8-shard point).
sharded=$(extract_field "$OUT/BENCH_sim.json" sharded_ops_per_sec)
rss=$(extract_field "$OUT/BENCH_sim.json" peak_rss_bytes)
if [ -z "$sharded" ] || [ -z "$rss" ]; then
    echo "bench smoke: FAIL — BENCH_sim.json is missing sharded_ops_per_sec/peak_rss_bytes"
    exit 1
fi
echo "bench smoke: sharded engine at 8 shards: $sharded ops/s, peak RSS $rss bytes"

# The hotspot probe (proxy tier vs redirect, outside the timed figure
# stages) must report its throughput too.
hotspot=$(extract_field "$OUT/BENCH_sim.json" hotspot_ops_per_sec)
if [ -z "$hotspot" ]; then
    echo "bench smoke: FAIL — BENCH_sim.json is missing hotspot_ops_per_sec"
    exit 1
fi
echo "bench smoke: hotspot probe (proxy + redirect modes): $hotspot ops/s"

# The idle-window-skip probes: sparse-schedule throughput plus the wall
# time of the two figure stages the skip was built for.
for f in sparse_ops_per_sec elasticity_wall_s availability_wall_s; do
    v=$(extract_field "$OUT/BENCH_sim.json" "$f")
    if [ -z "$v" ]; then
        echo "bench smoke: FAIL — BENCH_sim.json is missing $f"
        exit 1
    fi
    echo "bench smoke: $f = $v"
done

# No bc in minimal CI images; awk does the float compare.
awk -v f="$fresh" -v b="$base" 'BEGIN {
    limit = b * 1.25
    printf "bench smoke: fresh %.3fs vs committed %.3fs (limit %.3fs)\n", f, b, limit
    if (f > limit) {
        print "bench smoke: FAIL — quick suite slowed down more than 25%"
        exit 1
    }
    print "bench smoke: ok"
}'

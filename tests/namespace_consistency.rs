//! Integration tests: after a full simulation with live namespace
//! mutation, the shared tree and all derived state remain consistent.

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, OpMix, WorkloadConfig};

fn mutated_cluster(strategy: StrategyKind) -> Simulation {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.seed = 3;
    let snapshot = NamespaceSpec::with_target_items(24, 5_000, 1).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig {
            // Mutation-heavy: stress creates, unlinks, renames, chmods.
            mix: OpMix {
                stat: 20.0,
                open: 10.0,
                readdir: 6.0,
                create: 25.0,
                mkdir: 5.0,
                unlink: 15.0,
                rename: 8.0,
                chmod: 6.0,
                setattr: 5.0,
                link: 2.0,
            },
            seed: 2,
            ..Default::default()
        },
        cfg.n_clients as usize,
        &snapshot.user_homes,
        &snapshot.shared_roots,
        &snapshot.ns,
    ));
    let mut sim = Simulation::new(cfg, snapshot, wl);
    sim.run_until(SimTime::from_secs(10));
    sim
}

#[test]
fn tree_survives_a_mutation_heavy_run() {
    for strategy in [StrategyKind::DynamicSubtree, StrategyKind::LazyHybrid] {
        let sim = mutated_cluster(strategy);
        let ns = &sim.cluster().ns;

        // Every live id's path resolves back to it.
        let mut checked = 0;
        for id in ns.live_ids() {
            let path = ns.path_of(id).expect("live nodes have paths");
            assert_eq!(ns.resolve(&path).expect("resolvable"), id);
            checked += 1;
        }
        assert!(checked > 1_000, "{strategy}: tree unexpectedly small");

        // Counts agree with a full walk (dedup'd: hard links visit a file
        // once per dentry).
        let mut walked: Vec<_> = ns.walk(ns.root()).collect();
        walked.sort();
        walked.dedup();
        assert_eq!(walked.len() as u64, ns.total_items(), "{strategy}: walk vs counts");
    }
}

#[test]
fn caches_only_hold_live_or_coherent_entries() {
    let sim = mutated_cluster(StrategyKind::DynamicSubtree);
    let cluster = sim.cluster();
    // Unlink removes entries from every cache, so anything cached must be
    // alive in the shared namespace.
    for node in &cluster.nodes {
        for id in node.cache.iter_ids() {
            assert!(cluster.ns.is_alive(id), "cached tombstone {id} on {}", node.id);
        }
    }
}

#[test]
fn delegation_table_stays_total_under_mutation() {
    let sim = mutated_cluster(StrategyKind::DynamicSubtree);
    let cluster = sim.cluster();
    let sub = cluster.partition.as_subtree().expect("subtree strategy");
    // Authority is defined for every live item and lands inside the
    // cluster.
    for id in cluster.ns.live_ids() {
        let m = sub.authority(&cluster.ns, id);
        assert!(m.index() < cluster.nodes.len());
    }
    // Delegation sizes cover the whole namespace.
    let sizes = sub.partition_sizes(&cluster.ns, cluster.cfg.n_mds);
    assert_eq!(sizes.iter().sum::<u64>(), cluster.ns.total_items());
}

#[test]
fn lazy_hybrid_update_log_converges() {
    let sim = mutated_cluster(StrategyKind::LazyHybrid);
    let cluster = sim.cluster();
    let lh = cluster.partition.as_lazy().expect("lazy hybrid");
    // Directory chmods/renames happened, so propagation work was done.
    assert!(lh.lifetime_stats().total() > 0, "pending updates must have been applied lazily");
    // And the log itself is bounded by the number of events issued.
    assert!(lh.pending_events() as u64 <= lh.current_gen());
}

#[test]
fn journal_accounting_is_conserved() {
    let sim = mutated_cluster(StrategyKind::DynamicSubtree);
    for node in &sim.cluster().nodes {
        let j = &node.journal;
        assert_eq!(
            j.retired() + j.coalesced() + j.len() as u64,
            j.appended(),
            "every append is in the log, retired, or coalesced"
        );
    }
}

#[test]
fn anchor_table_tracks_multiply_linked_inodes() {
    let sim = mutated_cluster(StrategyKind::DynamicSubtree);
    let cluster = sim.cluster();
    // The link-bearing mix must have anchored something.
    assert!(!cluster.anchors.is_empty(), "hard links must populate the anchor table");
    // Every anchored inode resolves to a chain ending at the root, and
    // every multiply-linked live file is anchored.
    let mut multi = 0;
    for id in cluster.ns.live_ids() {
        let ino = cluster.ns.inode(id).unwrap();
        if !ino.ftype.is_dir() && ino.nlink > 1 {
            multi += 1;
            assert!(cluster.anchors.contains(id), "{id} has {} links but no anchor", ino.nlink);
            let chain = cluster.anchors.resolve(id).expect("anchored chain");
            assert_eq!(*chain.last().unwrap(), cluster.ns.root());
        }
    }
    assert!(multi > 0, "workload must have produced live hard links");
}

//! Client retry-policy coverage: the backoff curve is capped, the jitter
//! stream is byte-identical across same-seed runs, and the give-up
//! terminal fires after exactly the configured retry budget — no silent
//! extra attempt, no early abandonment.

use dynmds::core::cluster::Cluster;
use dynmds::core::{NetFaultSpec, Request, RetryPolicy, SimConfig, SimEvent};
use dynmds::event::{EventQueue, Handler, SimDuration, SimRng, SimTime};
use dynmds::namespace::{ClientId, MdsId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, Op, WorkloadConfig};

#[test]
fn backoff_is_capped_and_monotone() {
    let p = RetryPolicy {
        max_retries: 200,
        base: SimDuration::from_millis(100),
        multiplier: 3.0,
        cap: SimDuration::from_secs(2),
        jitter_frac: 0.0,
    };
    let mut rng = SimRng::seed_from_u64(1);
    let mut prev = SimDuration::from_micros(0);
    for r in 1..=200u8 {
        let d = p.delay(r, &mut rng);
        assert!(d >= prev, "backoff must be non-decreasing (retry {r})");
        assert!(d <= p.cap, "retry {r}: {d:?} exceeds the cap");
        prev = d;
    }
    assert_eq!(prev, p.cap, "deep retries sit exactly at the cap");
}

#[test]
fn jitter_stream_is_byte_identical_across_same_seed_runs() {
    let p = RetryPolicy::default();
    let sequence = |seed: u64| -> Vec<u64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (1..=64u8).map(|r| p.delay(r % 7 + 1, &mut rng).as_micros()).collect()
    };
    let a = sequence(42);
    assert_eq!(a, sequence(42), "same seed must replay the exact jitter stream");
    assert_ne!(a, sequence(43), "different seeds must actually jitter differently");
    // Every jittered delay stays inside [raw, raw * (1 + jitter_frac)].
    let mut rng = SimRng::seed_from_u64(9);
    for r in 1..=32u8 {
        let raw = p.base.mul_f64(p.multiplier.powi(i32::from(r) - 1)).min(p.cap);
        let d = p.delay(r, &mut rng);
        assert!(d >= raw && d <= raw.mul_f64(1.0 + p.jitter_frac), "retry {r} out of band");
    }
}

fn lossy_cluster(max_retries: u8) -> Cluster {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 4;
    cfg.retry.max_retries = max_retries;
    let snap = NamespaceSpec::with_target_items(4, 2_000, 5).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig::default(),
        4,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    Cluster::new(cfg, snap, wl)
}

#[test]
fn give_up_fires_after_exactly_the_configured_budget() {
    for budget in [0u8, 1, 3, 6] {
        let mut c = lossy_cluster(budget);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        // Total network loss: every re-driven attempt is dropped, so each
        // injected op must burn its whole retry budget, no more, no less.
        c.handle(
            SimTime::from_millis(1),
            SimEvent::SetNetFault(Some(NetFaultSpec { loss_p: 1.0, dup_p: 0.0 })),
            &mut q,
        );
        let dead = MdsId(1);
        c.fail_node(SimTime::from_millis(1), dead);
        let file = c.ns.live_ids().find(|&i| !c.ns.is_dir(i)).expect("a file exists");

        let injected = 3u64;
        for k in 0..injected {
            let req = Request {
                client: ClientId(k as u32),
                uid: 1,
                op: Op::Stat(file),
                issued_at: SimTime::from_millis(2),
                hops: 0,
                retries: 0,
                via_proxy: false,
            };
            c.handle(SimTime::from_millis(2), SimEvent::Arrive { mds: dead, req }, &mut q);
        }

        assert_eq!(c.gave_up, injected, "budget {budget}: every op must give up once");
        assert_eq!(
            c.retries_total,
            injected * u64::from(budget),
            "budget {budget}: retries must equal exactly gave_up * max_retries"
        );
        assert_eq!(
            c.net_lost,
            injected * u64::from(budget),
            "budget {budget}: every retry was eaten by the loss window exactly once"
        );
        // The only scheduled follow-ups are the terminal client releases.
        let mut replies = 0;
        while let Some(ev) = q.pop() {
            if matches!(ev.event, SimEvent::Reply { .. }) {
                replies += 1;
            }
        }
        assert_eq!(replies, injected, "budget {budget}: one terminal reply per abandoned op");
    }
}

//! Integration test: record a workload from one simulation, replay it in a
//! fresh simulation over the same snapshot, and get the same system
//! behaviour — the paper's future-work methodology of trace-driven
//! evaluation, end to end.

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::{ClientId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, TraceRecorder, TraceReplay, WorkloadConfig};

const SNAPSHOT_SEED: u64 = 44;

fn config() -> SimConfig {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 16;
    cfg.seed = 45;
    cfg
}

fn snapshot() -> dynmds::namespace::Snapshot {
    NamespaceSpec::with_target_items(16, 5_000, SNAPSHOT_SEED).generate()
}

#[test]
fn recorded_trace_replays_to_identical_behaviour() {
    // Pass 1: live workload, recorded.
    let cfg = config();
    let snap = snapshot();
    let uids: Vec<u32> = {
        let base = GeneralWorkload::new(
            WorkloadConfig { seed: 46, ..Default::default() },
            16,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        (0..16).map(|c| base.uid_of(ClientId(c))).collect()
    };
    let base = GeneralWorkload::new(
        WorkloadConfig { seed: 46, ..Default::default() },
        16,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    );
    let recorder = Box::new(TraceRecorder::new(base, SNAPSHOT_SEED));
    let mut sim = Simulation::new(cfg, snap, recorder);
    sim.run_until(SimTime::from_secs(6));
    let live_served: u64 = sim.cluster().nodes.iter().map(|n| n.life.served).sum();
    let live_items = sim.cluster().ns.total_items();
    // Recover a trace of the identical run: re-run it (determinism is
    // verified elsewhere) with a recorder that shares its trace out
    // through an Rc.
    let snap2 = snapshot();
    let base2 = GeneralWorkload::new(
        WorkloadConfig { seed: 46, ..Default::default() },
        16,
        &snap2.user_homes,
        &snap2.shared_roots,
        &snap2.ns,
    );
    let shared: std::rc::Rc<std::cell::RefCell<Option<dynmds::workload::Trace>>> =
        std::rc::Rc::new(std::cell::RefCell::new(None));
    let mut sim2 = Simulation::new(
        config(),
        snap2,
        Box::new(SharingRecorder {
            inner: TraceRecorder::new(base2, SNAPSHOT_SEED),
            out: shared.clone(),
        }),
    );
    sim2.run_until(SimTime::from_secs(6));
    drop(sim2);
    let trace = shared.borrow_mut().take().expect("recorder published its trace");
    assert!(trace.len() > 1_000, "trace captured the run");

    // Pass 2: replay the trace over a fresh identical snapshot.
    let snap3 = snapshot();
    let replay = Box::new(TraceReplay::new(&trace, uids));
    let mut sim3 = Simulation::new(config(), snap3, replay);
    sim3.run_until(SimTime::from_secs(6));
    let replay_served: u64 = sim3.cluster().nodes.iter().map(|n| n.life.served).sum();
    let replay_items = sim3.cluster().ns.total_items();

    assert_eq!(live_served, replay_served, "replay serves the same op count");
    assert_eq!(live_items, replay_items, "replay mutates the tree identically");
}

/// Adapter: owns the recorder inside the simulation's boxed workload but
/// publishes the captured trace through a shared cell on every op, so the
/// test can take it after the simulation is dropped.
struct SharingRecorder {
    inner: TraceRecorder<GeneralWorkload>,
    out: std::rc::Rc<std::cell::RefCell<Option<dynmds::workload::Trace>>>,
}

impl Drop for SharingRecorder {
    fn drop(&mut self) {
        *self.out.borrow_mut() = Some(self.inner.trace().clone());
    }
}

impl dynmds::workload::Workload for SharingRecorder {
    fn next_op(
        &mut self,
        ns: &dynmds::namespace::Namespace,
        client: ClientId,
        now: SimTime,
    ) -> dynmds::workload::Op {
        self.inner.next_op(ns, client, now)
    }
    fn clients(&self) -> usize {
        self.inner.clients()
    }
    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }
}

#[test]
fn trace_is_serde_capable_and_cloneable() {
    // Compile-time: Trace implements the serde traits (any format crate
    // can persist it; none is a workspace dependency by policy).
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<dynmds::workload::Trace>();

    let snap = snapshot();
    let base = GeneralWorkload::new(
        WorkloadConfig { seed: 46, ..Default::default() },
        16,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    );
    let mut rec = TraceRecorder::new(base, SNAPSHOT_SEED);
    use dynmds::workload::Workload as _;
    for i in 0..200u32 {
        rec.next_op(&snap.ns, ClientId(i % 16), SimTime::from_micros(i as u64));
    }
    let trace = rec.into_trace();
    assert_eq!(trace.clone(), trace, "value semantics for persistence");
    assert_eq!(trace.len(), 200);
}

//! Integration tests: the qualitative contrasts between the five
//! partitioning strategies that the paper's evaluation rests on.

use dynmds::core::{SimConfig, SimReport, Simulation};
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn run(strategy: StrategyKind, force_table: bool) -> (SimReport, u64, u64) {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 32;
    cfg.cache_capacity = 600;
    cfg.journal_capacity = 200;
    cfg.force_inode_table = force_table;
    cfg.seed = 77;
    let snapshot = NamespaceSpec::with_target_items(32, 8_000, 9).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 31, ..Default::default() },
        cfg.n_clients as usize,
        &snapshot.user_homes,
        &snapshot.shared_roots,
        &snapshot.ns,
    ));
    let mut sim = Simulation::new(cfg, snapshot, wl);
    sim.run_until(dynmds::event::SimTime::from_secs(2));
    sim.cluster_mut().reset_measurement(dynmds::event::SimTime::from_secs(2));
    sim.run_until(dynmds::event::SimTime::from_secs(8));
    let fetches = sim.cluster().store.fetches();
    let writebacks = sim.cluster().store.writebacks();
    (sim.finish(), fetches, writebacks)
}

#[test]
fn prefix_overhead_orders_hashed_above_subtree() {
    let (filehash, _, _) = run(StrategyKind::FileHash, false);
    let (dirhash, _, _) = run(StrategyKind::DirHash, false);
    let (static_, _, _) = run(StrategyKind::StaticSubtree, false);
    assert!(
        filehash.mean_prefix_pct() > dirhash.mean_prefix_pct(),
        "file hashing scatters hardest: {:.1}% vs {:.1}%",
        filehash.mean_prefix_pct(),
        dirhash.mean_prefix_pct()
    );
    assert!(
        dirhash.mean_prefix_pct() > static_.mean_prefix_pct(),
        "any hashing beats subtree prefix overhead: {:.1}% vs {:.1}%",
        dirhash.mean_prefix_pct(),
        static_.mean_prefix_pct()
    );
}

#[test]
fn subtree_outperforms_hashing_on_general_workload() {
    let (static_, _, _) = run(StrategyKind::StaticSubtree, false);
    let (filehash, _, _) = run(StrategyKind::FileHash, false);
    assert!(
        static_.avg_mds_throughput() > filehash.avg_mds_throughput() * 1.2,
        "paper's headline gap: {:.0} vs {:.0} ops/s",
        static_.avg_mds_throughput(),
        filehash.avg_mds_throughput()
    );
    assert!(
        static_.latency.mean().unwrap() < filehash.latency.mean().unwrap(),
        "subtree latency must be lower"
    );
}

#[test]
fn embedding_beats_inode_table_for_dir_hashing() {
    let (embedded, fetches_embedded, _) = run(StrategyKind::DirHash, false);
    let (table, fetches_table, _) = run(StrategyKind::DirHash, true);
    // Placement identical; only the storage layout changed. Embedding
    // must not fetch more, and hit rate must not collapse.
    assert!(
        fetches_embedded < fetches_table,
        "whole-directory fetch must reduce disk transactions: {fetches_embedded} vs {fetches_table}"
    );
    // Both still serve a comparable workload volume.
    assert!(embedded.total_served() > 0 && table.total_served() > 0);
}

#[test]
fn lazy_hybrid_skips_traversal_but_pays_per_inode_io() {
    let (lh, _, _) = run(StrategyKind::LazyHybrid, false);
    let (subtree, _, _) = run(StrategyKind::StaticSubtree, false);
    // Only the always-cached root may be marked as a prefix.
    assert!(
        lh.mean_prefix_pct() < 0.5,
        "LH caches no traversal prefixes, got {:.2}%",
        lh.mean_prefix_pct()
    );
    assert_eq!(lh.total_forwarded(), 0, "LH clients hash their own routes");
    assert!(
        lh.overall_hit_rate() < subtree.overall_hit_rate(),
        "per-inode loads must hurt LH hit rate: {:.3} vs {:.3}",
        lh.overall_hit_rate(),
        subtree.overall_hit_rate()
    );
}

#[test]
fn every_strategy_journals_updates_to_both_tiers() {
    for strategy in StrategyKind::ALL {
        let (report, _, writebacks) = run(strategy, false);
        assert!(report.total_served() > 1_000, "{strategy}: too few ops");
        assert!(writebacks > 0, "{strategy}: journal retirement must reach tier 2");
    }
}

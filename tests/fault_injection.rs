//! Integration tests for the deterministic fault-injection subsystem:
//! scripted and generated churn, heir rotation on failover, the client
//! retry policy, and bit-for-bit reproducibility under faults.

use dynmds::core::{ChurnSpec, FaultEvent, FaultSchedule, SimConfig, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::harness::availability::{availability_table, default_schedule, run_availability};
use dynmds::harness::ExperimentScale;
use dynmds::namespace::{MdsId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn config(strategy: StrategyKind) -> SimConfig {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 32;
    cfg.seed = 55;
    cfg
}

fn sim_with(cfg: SimConfig) -> Simulation {
    let snap = NamespaceSpec::with_target_items(32, 8_000, 5).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 56, ..Default::default() },
        32,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    Simulation::new(cfg, snap, wl)
}

fn churn_schedule() -> FaultSchedule {
    FaultSchedule {
        events: Vec::new(),
        churn: Some(ChurnSpec {
            mtbf: SimDuration::from_secs(4),
            mttr: SimDuration::from_secs(1),
            seed: 9,
            until: SimTime::from_secs(12),
            nodes: Some((1, 3)),
        }),
    }
}

#[test]
fn heir_rotation_spreads_inherited_subtrees() {
    // Regression: the round-robin heir pick used to restart at the first
    // survivor on every failure. The start is now rotated by the failure
    // count, so each root k of the f-th failure lands on
    // survivors[(k + f) % |survivors|] — verifiable from the outside.
    let mut s = sim_with(config(StrategyKind::DynamicSubtree));
    s.run_until(SimTime::from_secs(2));
    for victim in [MdsId(1), MdsId(2)] {
        let owned = s.cluster().partition.as_subtree().unwrap().delegations_of(victim);
        assert!(!owned.is_empty(), "{victim:?} must own subtrees before failing");
        s.cluster_mut().fail_node(SimTime::from_secs(2), victim);
        let c = s.cluster();
        let survivors: Vec<MdsId> = (0..4).map(MdsId).filter(|&m| c.is_alive_node(m)).collect();
        let offset = c.failures as usize;
        let sub = c.partition.as_subtree().unwrap();
        for (k, root) in owned.iter().enumerate() {
            let expected = survivors[(k + offset) % survivors.len()];
            assert_eq!(
                sub.delegation_of(*root),
                Some(expected),
                "failure #{offset}: root {k} must land on the rotated heir"
            );
        }
    }
}

#[test]
fn every_strategy_survives_generated_churn() {
    for strategy in StrategyKind::ALL {
        let mut cfg = config(strategy);
        cfg.faults = churn_schedule();
        let n_clients = cfg.n_clients as u64;
        let mut s = sim_with(cfg);
        s.run_until(SimTime::from_secs(16));
        let c = s.cluster();
        assert!(c.failures > 0, "{strategy}: churn must actually kill nodes");
        // Every op terminates: at most one request per client is in flight
        // (the rest completed, were forwarded to completion, or gave up).
        let in_flight = c.ops_issued - c.ops_completed;
        assert!(
            in_flight <= n_clients,
            "{strategy}: {in_flight} ops unaccounted for (issued {}, completed {})",
            c.ops_issued,
            c.ops_completed
        );
        assert!(c.ops_completed > 1_000, "{strategy}: cluster must keep serving under churn");
        // Imported-delegation bookkeeping stays consistent.
        for m in (0..4).map(MdsId) {
            let imported = c.imported_of(m);
            let mut seen = std::collections::HashSet::new();
            for &root in imported {
                assert!(seen.insert(root), "{strategy}: duplicate import {root} on {m:?}");
            }
            if !c.is_alive_node(m) {
                assert!(imported.is_empty(), "{strategy}: dead {m:?} still lists imports");
            }
            if let Some(sub) = c.partition.as_subtree() {
                for &root in imported {
                    assert_eq!(
                        sub.delegation_of(root),
                        Some(m),
                        "{strategy}: import list and delegation table disagree on {root}"
                    );
                }
            }
        }
    }
}

#[test]
fn same_seed_churn_runs_are_bit_identical() {
    let run = || {
        let mut cfg = config(StrategyKind::DynamicSubtree);
        cfg.faults = churn_schedule();
        cfg.obs.metrics = true;
        cfg.obs.trace = true;
        sim_with(cfg).run_measured(SimDuration::from_secs(3), SimDuration::from_secs(9))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_served(), b.total_served());
    let (oa, ob) = (a.obs.expect("obs export"), b.obs.expect("obs export"));
    assert_eq!(oa.metrics_jsonl, ob.metrics_jsonl, "metrics export must be byte-identical");
    assert_eq!(oa.snapshots_jsonl, ob.snapshots_jsonl, "snapshot export must be byte-identical");
    assert_eq!(oa.trace_jsonl, ob.trace_jsonl, "span export must be byte-identical");
}

#[test]
fn scripted_crashes_fire_from_the_schedule() {
    let mut cfg = config(StrategyKind::FileHash);
    cfg.faults = FaultSchedule {
        events: vec![
            FaultEvent::Crash { at: SimTime::from_secs(2), mds: MdsId(1) },
            FaultEvent::Recover { at: SimTime::from_secs(4), mds: MdsId(1) },
        ],
        churn: None,
    };
    let mut s = sim_with(cfg);
    s.run_until(SimTime::from_secs(3));
    assert!(!s.cluster().is_alive_node(MdsId(1)), "crash event must have fired");
    s.run_until(SimTime::from_secs(5));
    let c = s.cluster();
    assert!(c.is_alive_node(MdsId(1)), "recover event must have fired");
    assert_eq!((c.failures, c.recoveries), (1, 1));
    assert!(c.failover_timeouts > 0, "clients routed to the dead node must time out");
    assert!(c.retries_total > 0, "timeouts re-drive through the retry policy");
}

#[test]
fn balancer_never_names_a_dead_node_under_churn() {
    // Property check for the two liveness bugs: with generated churn and
    // the balancer both active, every migration the balancer performs
    // must have a live exporter (the busy-node pick used to ignore
    // liveness) and a live importer (dead nodes used to keep their
    // stale EWMA and attract load). The audit trail records liveness at
    // migration time, so the property is checked exactly where the old
    // code went wrong, not from end-of-run state.
    let mut cfg = config(StrategyKind::DynamicSubtree);
    cfg.heartbeat = SimDuration::from_secs(1);
    cfg.faults = churn_schedule();
    let mut s = sim_with(cfg);
    s.cluster_mut().migration_log = Some(Vec::new());
    s.run_until(SimTime::from_secs(16));
    let c = s.cluster();
    assert!(c.failures > 0, "churn must actually kill nodes");
    let log = c.migration_log.as_ref().unwrap();
    assert!(!log.is_empty(), "the balancer must act for this test to bite");
    for rec in log {
        assert!(
            rec.from_alive && rec.to_alive,
            "migration of {root} at {at:?} named a dead node: {from:?} (alive {fa}) -> {to:?} (alive {ta})",
            root = rec.root,
            at = rec.at,
            from = rec.from,
            fa = rec.from_alive,
            to = rec.to,
            ta = rec.to_alive,
        );
    }
}

#[test]
fn availability_experiment_is_deterministic() {
    let schedule = default_schedule(ExperimentScale::Quick);
    let csv = |pts: Vec<_>| availability_table(&pts).to_csv();
    let a = csv(run_availability(ExperimentScale::Quick, &schedule));
    let b = csv(run_availability(ExperimentScale::Quick, &schedule));
    assert_eq!(a, b, "availability CSV must be byte-identical across runs");
    assert!(a.lines().count() > StrategyKind::ALL.len(), "one row per strategy plus header");
}

//! Integration tests: MDS failure and recovery with shared-storage
//! takeover and journal-based cache warming (§2.1.2, §4.6).

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::{MdsId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn sim(strategy: StrategyKind) -> Simulation {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 32;
    cfg.seed = 55;
    let snap = NamespaceSpec::with_target_items(32, 8_000, 5).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 56, ..Default::default() },
        32,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    Simulation::new(cfg, snap, wl)
}

#[test]
fn cluster_survives_a_node_failure() {
    for strategy in [StrategyKind::DynamicSubtree, StrategyKind::FileHash] {
        let mut s = sim(strategy);
        s.schedule_failure(SimTime::from_secs(5), MdsId(1));
        s.run_until(SimTime::from_secs(8));
        let served_mid = {
            let r = s.cluster();
            r.nodes.iter().map(|n| n.life.served).sum::<u64>()
        };
        s.run_until(SimTime::from_secs(14));
        let cluster = s.cluster();
        let served_end: u64 = cluster.nodes.iter().map(|n| n.life.served).sum();
        assert!(
            served_end > served_mid + 1_000,
            "{strategy}: cluster must keep serving after the failure"
        );
        assert_eq!(cluster.failures, 1);
        assert!(!cluster.is_alive_node(MdsId(1)));
        assert_eq!(cluster.live_nodes(), 3);
    }
}

#[test]
fn dead_node_serves_nothing_and_survivors_take_over() {
    let mut s = sim(StrategyKind::DynamicSubtree);
    // Let it warm up so mds1 is actually serving beforehand.
    s.run_until(SimTime::from_secs(5));
    let before = s.cluster().nodes[1].life.served;
    assert!(before > 0, "mds1 must have been active");
    s.cluster_mut().fail_node(SimTime::from_secs(5), MdsId(1));
    s.run_until(SimTime::from_secs(12));
    let cluster = s.cluster();
    let after = cluster.nodes[1].life.served;
    assert_eq!(after, before, "a dead node serves nothing");
    // Its subtrees now belong to live nodes.
    let sub = cluster.partition.as_subtree().expect("subtree strategy");
    for (_, m) in sub.delegations() {
        assert_ne!(m, MdsId(1), "no delegation may point at the dead node");
    }
    // Some requests hit the dead host and were re-driven.
    assert!(cluster.failover_timeouts > 0, "stale client routes must time out");
}

#[test]
fn heirs_warm_their_caches_from_the_shared_journal() {
    let mut s = sim(StrategyKind::DynamicSubtree);
    s.run_until(SimTime::from_secs(6));
    // mds1's journal approximates its working set; remember its size.
    let ws: Vec<_> = s.cluster().nodes[1].journal.working_set().collect();
    assert!(!ws.is_empty(), "journal must hold the working set");
    s.cluster_mut().fail_node(SimTime::from_secs(6), MdsId(1));
    let cluster = s.cluster();
    assert_eq!(cluster.nodes[1].cache.len(), 0, "RAM is lost");
    // The working set recorded in the shared journal is now cached at the
    // live authorities that inherited those subtrees.
    let mut checked = 0;
    let mut warmed = 0;
    for &id in &ws {
        if !cluster.ns.is_alive(id) {
            continue;
        }
        let heir = cluster.live_authority(cluster.authority_of(id));
        checked += 1;
        if cluster.nodes[heir.index()].cache.peek(id) {
            warmed += 1;
        }
    }
    assert!(checked > 0);
    assert!(
        warmed * 2 > checked,
        "most of the inherited working set should be preloaded: {warmed}/{checked}"
    );
}

#[test]
fn recovery_rejoins_and_rebalances() {
    let mut s = sim(StrategyKind::DynamicSubtree);
    s.schedule_failure(SimTime::from_secs(4), MdsId(2));
    s.schedule_recovery(SimTime::from_secs(10), MdsId(2));
    s.run_until(SimTime::from_secs(10));
    let at_recovery = s.cluster().nodes[2].life.served;
    s.run_until(SimTime::from_secs(30));
    let cluster = s.cluster();
    assert!(cluster.is_alive_node(MdsId(2)));
    assert_eq!(cluster.recoveries, 1);
    assert!(
        cluster.nodes[2].life.served > at_recovery,
        "the balancer must hand work back to the recovered node"
    );
    assert!(!cluster.nodes[2].cache.is_empty(), "recovery warms the cache from the journal");
}

#[test]
fn hashed_strategies_remap_placement_around_dead_nodes() {
    let mut s = sim(StrategyKind::FileHash);
    s.run_until(SimTime::from_secs(3));
    s.cluster_mut().fail_node(SimTime::from_secs(3), MdsId(0));
    s.run_until(SimTime::from_secs(8));
    let cluster = s.cluster();
    // live_authority is total and avoids the dead node.
    for id in cluster.ns.live_ids().take(500) {
        let m = cluster.live_authority(cluster.partition.authority(&cluster.ns, id));
        assert_ne!(m, MdsId(0));
        assert!(cluster.is_alive_node(m));
    }
    // Successor ring: dead node's keys flow to the next live node.
    assert_eq!(cluster.live_authority(MdsId(0)), MdsId(1));
}

//! Scale-tier integration properties (ROADMAP item 1).
//!
//! The unit tests in `dynmds-namespace` pin streaming == eager at toy
//! sizes; these push the same properties to experiment-sized namespaces
//! and to the million-user spec the full tier runs against. Both are
//! gated behind `slow-tests` (the eager generator materializes every
//! inode, which is exactly the cost the streaming path exists to avoid).

use dynmds::namespace::{NamespaceSpec, StreamingGenerator};

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "eagerly materializes 6x10^5 inodes; run via --features slow-tests or scripts/test_full.sh"
)]
fn streaming_equals_eager_at_experiment_sizes() {
    for seed in [3u64, 17, 4242] {
        let spec = NamespaceSpec::with_target_items(2_000, 200_000, seed);
        let eager = spec.generate();
        let streamed = StreamingGenerator::new(spec.clone()).generate_all();
        assert_eq!(eager.user_homes, streamed.user_homes, "seed {seed}");
        assert_eq!(eager.shared_roots, streamed.shared_roots, "seed {seed}");
        // Image equality covers every slot: ids, names, parents, file
        // types, permissions, sizes, link structure.
        assert_eq!(eager.ns.to_image(), streamed.ns.to_image(), "seed {seed}");
    }
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "counts a 10^8-inode logical namespace (seconds); run via --features slow-tests"
)]
fn full_tier_spec_is_huge_logically_and_tiny_materialized() {
    // The full tier's own spec: 10^6 users, 10^8-inode target.
    let spec = NamespaceSpec::with_target_items(1_000_000, 100_000_000, 42 ^ 0xF5);
    let mut generator = StreamingGenerator::new(spec);
    for u in 0..64 {
        generator.materialize_user(u);
    }
    let materialized = generator.ns().total_items();
    let logical = generator.logical_items();
    assert!(logical >= 100_000_000, "logical namespace undersized: {logical}");
    assert!(materialized < 20_000, "64 users materialized {materialized} inodes");
    // The untouched 999,936 users must cost no namespace heap: the
    // footprint is bounded by what was actually materialized.
    let mut snap = generator.into_snapshot();
    snap.ns.shrink_to_fit();
    let bytes = snap.ns.heap_bytes();
    assert!(
        (bytes as f64) < materialized as f64 * 80.0,
        "{bytes} heap bytes for {materialized} materialized inodes"
    );
}

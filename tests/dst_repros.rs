//! Replay every shrunken repro trace under `dst/repros/`.
//!
//! `experiments torture` writes a repro file there whenever a scenario
//! diverges from the reference-model oracle. Committing such a file
//! turns the divergence into a plain failing `#[test]` until the bug is
//! fixed; once fixed, the repro replays clean and should be deleted.
//! With no repro files present this test is vacuously green.

use dynmds_dst::Repro;

#[test]
fn all_committed_repros_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/dst/repros");
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return, // directory absent: nothing to replay
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();

    let mut failed = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("readable repro file");
        let repro = Repro::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed repro: {e}", path.display()));
        let out = repro.replay();
        if !out.divergences.is_empty() {
            eprintln!("{} still diverges:", path.display());
            for d in &out.divergences {
                eprintln!("  {d}");
            }
            failed.push(path.display().to_string());
        } else {
            eprintln!("{}: replays clean ({} ops)", path.display(), repro.trace.records.len());
        }
    }
    assert!(
        failed.is_empty(),
        "repro traces still diverging (fix the bug, then delete the repro): {failed:?}"
    );
}

//! Differential tests for the sharded parallel simulation core: the
//! report/CSV/obs surface must be byte-identical (a) across shard
//! counts for a fixed scenario, and (b) across repeat runs for a fixed
//! shard count — including under fault churn, scripted crash/recover,
//! degraded disks and a lossy network, which exercise the barrier-global
//! step path on top of the per-window event exchange.

use dynmds::core::{ChurnSpec, DiskScope, FaultEvent, FaultSchedule, ShardedSimulation, SimConfig};
use dynmds::event::{SimDuration, SimTime};
use dynmds::namespace::{MdsId, NamespaceSpec};
use dynmds::partition::StrategyKind;
use dynmds::storage::DiskFault;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

/// Crash/recover script + generated churn + degraded disks + lossy
/// network, all overlapping mid-run.
fn stormy_schedule() -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent::Crash { at: SimTime::from_secs(2), mds: MdsId(1) },
            FaultEvent::Recover { at: SimTime::from_secs(5), mds: MdsId(1) },
            FaultEvent::DiskDegrade {
                from: SimTime::from_secs(3),
                until: SimTime::from_secs(6),
                fault: DiskFault { latency_mult: 3.0, iops_mult: 0.5, error_p: 0.01 },
                scope: DiskScope::All,
            },
            FaultEvent::NetFault {
                from: SimTime::from_secs(4),
                until: SimTime::from_secs(8),
                spec: dynmds::core::NetFaultSpec { loss_p: 0.02, dup_p: 0.01 },
            },
        ],
        churn: Some(ChurnSpec {
            mtbf: SimDuration::from_secs(5),
            mttr: SimDuration::from_secs(1),
            seed: 9,
            until: SimTime::from_secs(9),
            nodes: Some((2, 3)),
        }),
    }
}

fn config(strategy: StrategyKind, seed: u64, faults: bool) -> SimConfig {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.seed = seed;
    cfg.client_leases = true;
    cfg.obs.metrics = true;
    if faults {
        cfg.faults = stormy_schedule();
    }
    cfg
}

/// One run at shard count `k` over a chosen span: returns the rendered
/// report plus the two obs exports, the whole byte surface a run exposes.
fn run_span(
    cfg: SimConfig,
    k: usize,
    warmup: SimDuration,
    measure: SimDuration,
) -> (String, String, String) {
    dynmds::harness::parallel::install_shard_driver();
    let snap = NamespaceSpec::with_target_items(24, 6_000, cfg.seed ^ 0xF5).generate();
    let n_clients = cfg.n_clients as usize;
    let wl_seed = cfg.seed ^ 0x17;
    let homes = snap.user_homes.clone();
    let shared = snap.shared_roots.clone();
    let sim = ShardedSimulation::new(cfg, k, None, snap, &move |ns| {
        Box::new(GeneralWorkload::new(
            WorkloadConfig { seed: wl_seed, ..Default::default() },
            n_clients,
            &homes,
            &shared,
            ns,
        ))
    });
    let report = sim.run_measured(warmup, measure);
    let obs = report.obs.as_ref().expect("obs metrics were enabled");
    (report.render(), obs.metrics_jsonl.clone(), obs.snapshots_jsonl.clone())
}

/// One full run at shard count `k` over the standard 2 s + 7 s span.
fn run_k(cfg: SimConfig, k: usize) -> (String, String, String) {
    run_span(cfg, k, SimDuration::from_secs(2), SimDuration::from_secs(7))
}

#[test]
fn report_and_obs_are_invariant_across_shard_counts_under_faults() {
    // Differential property run: several random workload seeds, each
    // interleaved with the fault storm, executed at 1, 2 and 4 shards.
    for seed in [55u64, 911, 4242] {
        let base = run_k(config(StrategyKind::DynamicSubtree, seed, true), 1);
        assert!(base.0.contains("ops "), "report renders");
        for k in [2usize, 4] {
            let other = run_k(config(StrategyKind::DynamicSubtree, seed, true), k);
            assert_eq!(base.0, other.0, "seed {seed}: report differs at {k} shards");
            assert_eq!(base.1, other.1, "seed {seed}: obs metrics differ at {k} shards");
            assert_eq!(base.2, other.2, "seed {seed}: obs snapshots differ at {k} shards");
        }
    }
}

#[test]
fn every_strategy_is_shard_count_invariant() {
    // The canonical merge order may not depend on strategy-specific
    // routing (hashed placement, forwards, replicas), so sweep them all
    // fault-free at the K extremes.
    for strategy in StrategyKind::ALL {
        let a = run_k(config(strategy, 7, false), 1);
        let b = run_k(config(strategy, 7, false), 4);
        assert_eq!(a, b, "{strategy}: surface differs between 1 and 4 shards");
    }
}

#[test]
fn idle_window_skip_is_invisible_for_every_shard_count() {
    // Skip-vs-dense differential sweep. Skipping only ever jumps over
    // provably empty window spans on the same grid, so a skip-on run and
    // a force-dense run (every conservative window executed) must be
    // byte-identical across the whole surface. Each case stresses a
    // different skip hazard:
    //   tie storm  — sub-window think time floods every window with
    //                same-time batches (skip must never engage);
    //   long gaps  — think time ≫ the 100 µs window makes nearly every
    //                window empty (skip does all the work);
    //   fault churn — crash/recover/churn/disk/net events land via the
    //                barrier-global step calendar mid-gap;
    //   elastic    — the autoscaling controller acts on heartbeat steps
    //                that the skip must not jump past.
    struct Case {
        label: &'static str,
        strategy: StrategyKind,
        faults: bool,
        think: SimDuration,
        warmup: SimDuration,
        measure: SimDuration,
    }
    let cases = [
        Case {
            label: "tie storm",
            strategy: StrategyKind::DynamicSubtree,
            faults: false,
            think: SimDuration::from_micros(10),
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(500),
        },
        Case {
            label: "long gaps",
            strategy: StrategyKind::DynamicSubtree,
            faults: false,
            think: SimDuration::from_millis(200),
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(7),
        },
        Case {
            label: "fault churn",
            strategy: StrategyKind::DynamicSubtree,
            faults: true,
            think: SimDuration::from_millis(1),
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(7),
        },
        Case {
            label: "elastic",
            strategy: StrategyKind::ElasticSubtree,
            faults: false,
            think: SimDuration::from_millis(20),
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(7),
        },
    ];
    for case in &cases {
        for k in [1usize, 2, 4] {
            let mut skip = config(case.strategy, 99, case.faults);
            skip.costs.think_mean = case.think;
            let mut dense = skip.clone();
            dense.force_dense = true;
            let a = run_span(skip, k, case.warmup, case.measure);
            let b = run_span(dense, k, case.warmup, case.measure);
            assert_eq!(a, b, "{}: skip vs force-dense surfaces differ at {k} shards", case.label);
        }
    }
}

#[test]
fn fixed_shard_count_reruns_are_bit_identical() {
    let run = || run_k(config(StrategyKind::DynamicSubtree, 55, true), 4);
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, same shard count: reruns must be byte-identical");
}

//! Tier-1 smoke coverage for the deterministic-simulation-testing
//! subsystem: a handful of seeded scenarios per strategy must run clean
//! against the reference-model oracle, and a repeated seed must produce
//! a byte-identical digest. The broad sweep (hundreds of seeds) lives
//! behind the `slow-tests` feature / `--include-ignored`; CI runs the
//! equivalent via `experiments torture`.

use dynmds_dst::{run_scenario, Scenario};
use dynmds_partition::StrategyKind;

fn assert_clean(seed: u64, strategy: StrategyKind, ops: u64) -> u64 {
    let sc = Scenario::from_seed(seed, strategy, ops);
    let out = run_scenario(&sc, false);
    assert!(
        out.divergences.is_empty(),
        "seed {seed} {strategy}: oracle divergence: {:?}",
        out.divergences
    );
    assert!(out.checkpoints > 0, "seed {seed} {strategy}: oracle never ran");
    out.digest
}

#[test]
fn every_strategy_survives_a_faulty_scenario() {
    for &strategy in &StrategyKind::ALL {
        assert_clean(11, strategy, 250);
        assert_clean(12, strategy, 250);
    }
}

#[test]
fn repeated_seed_is_byte_identical() {
    let a = assert_clean(7, StrategyKind::LazyHybrid, 250);
    let b = assert_clean(7, StrategyKind::LazyHybrid, 250);
    assert_eq!(a, b, "same seed must fold to the same digest");
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "broad seed sweep (minutes); run via --features slow-tests or scripts/test_full.sh"
)]
fn broad_seed_sweep_is_clean() {
    let scenarios: Vec<(u64, StrategyKind)> = (1..=40u64)
        .flat_map(|seed| StrategyKind::ALL.into_iter().map(move |s| (seed, s)))
        .collect();
    let results = dynmds_harness::parallel::parallel_map(&scenarios, |&(seed, s)| {
        let sc = Scenario::from_seed(seed, s, 1_000);
        let out = run_scenario(&sc, false);
        (seed, s, out.divergences)
    });
    let bad: Vec<_> = results.iter().filter(|(_, _, d)| !d.is_empty()).collect();
    assert!(bad.is_empty(), "oracle divergences: {bad:?}");
}

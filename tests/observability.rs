//! Integration tests for the observability layer: determinism of the
//! exports (metrics, snapshots, op-trace spans) across same-seed runs —
//! including a failover mid-trace — and internal consistency between
//! the registry and the simulator's own accounting.

use dynmds::core::{ObsExport, SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::{MdsId, NamespaceSpec};
use dynmds::obs::ObsConfig;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn sim(obs: ObsConfig) -> Simulation {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 32;
    cfg.seed = 55;
    cfg.obs = obs;
    let snap = NamespaceSpec::with_target_items(32, 8_000, 5).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 56, ..Default::default() },
        32,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    Simulation::new(cfg, snap, wl)
}

/// Runs warm-up + measurement with a failure and a recovery injected
/// mid-measurement, returning the obs exports.
fn traced_failover_run(obs: ObsConfig) -> ObsExport {
    let mut s = sim(obs);
    s.schedule_failure(SimTime::from_secs(4), MdsId(1));
    s.schedule_recovery(SimTime::from_secs(7), MdsId(1));
    s.run_until(SimTime::from_secs(2));
    s.cluster_mut().reset_measurement(SimTime::from_secs(2));
    s.run_until(SimTime::from_secs(9));
    s.finish().obs.expect("obs enabled")
}

#[test]
fn same_seed_runs_export_byte_identical_obs_under_failover() {
    let a = traced_failover_run(ObsConfig::full());
    let b = traced_failover_run(ObsConfig::full());
    assert_eq!(a.metrics_jsonl, b.metrics_jsonl, "metrics must be byte-identical");
    assert_eq!(a.snapshots_jsonl, b.snapshots_jsonl, "snapshots must be byte-identical");
    assert_eq!(a.trace_jsonl, b.trace_jsonl, "span traces must be byte-identical");
    assert_eq!(a.summary, b.summary, "summaries must be byte-identical");
    let trace = a.trace_jsonl.expect("tracing was on");
    assert!(!trace.is_empty(), "spans were recorded");
    assert!(trace.contains("\"s\":\"dead_timeout\""), "failover visible in spans");
    assert!(a.metrics_jsonl.contains("\"name\":\"node_failures\",\"value\":1"));
    assert!(a.metrics_jsonl.contains("\"name\":\"node_recoveries\",\"value\":1"));
}

#[test]
fn obs_disabled_report_carries_no_export() {
    let mut s = sim(ObsConfig::default());
    s.run_until(SimTime::from_secs(3));
    let report = s.finish();
    assert!(report.obs.is_none());
}

#[test]
fn registry_counters_agree_with_cluster_accounting() {
    // No reset_measurement here: the registry restarts on reset while the
    // report's node counters are lifetime, so only an unreset run can
    // compare the two directly.
    let mut s = sim(ObsConfig::metrics_only());
    s.run_until(SimTime::from_secs(6));
    let report = s.finish();
    let export = report.obs.as_ref().expect("obs enabled");
    assert!(export.trace_jsonl.is_none(), "metrics-only run records no spans");

    // The per-MDS served/forwarded/received counters in the registry
    // must match the lifetime counters the report is built from.
    for (i, n) in report.nodes.iter().enumerate() {
        for (name, want) in
            [("served", n.served), ("forwarded", n.forwarded), ("received", n.received)]
        {
            let line = export
                .metrics_jsonl
                .lines()
                .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
                .unwrap_or_else(|| panic!("metric {name} missing"));
            let values = parse_per_mds(line);
            assert_eq!(values[i], want, "{name}[mds{i}] disagrees with the report");
        }
    }
    // Snapshots cover the measurement window at the sampling interval.
    assert!(!export.snapshots_jsonl.is_empty(), "snapshot rows were captured");
    for row in export.snapshots_jsonl.lines() {
        for field in ["\"load\":", "\"cache_len\":", "\"journal_depth\":", "\"alive\":"] {
            assert!(row.contains(field), "snapshot row missing {field}: {row}");
        }
    }
}

/// Pulls the `"per_mds":[…]` array out of a metrics JSONL line.
fn parse_per_mds(line: &str) -> Vec<u64> {
    let start = line.find("\"per_mds\":[").expect("per_mds array") + "\"per_mds\":[".len();
    let end = start + line[start..].find(']').expect("array close");
    line[start..end].split(',').map(|v| v.parse().expect("integer slot")).collect()
}

//! Golden-figure regression test: the optimized hot path (memoized
//! authority, dense LRU slab, allocation-free traversal and sampling)
//! must not change simulation *results*, only their cost. Each table here
//! is regenerated in-process at `--quick` scale and compared byte-for-byte
//! against the CSVs under `tests/golden/quick/`, which were produced by
//! the seed revision's `experiments --quick --csv` run. (`ablate_warming`
//! was regenerated when the client retry policy replaced the fixed
//! re-drive: that table measures a post-failure window, so failover
//! timing is part of its expected output. The fault-free tables are
//! still the seed's bytes.)
//!
//! Only the cheaper figures are regenerated (the full quick suite is a
//! release-binary job — `experiments bench` covers it); together these
//! exercise the flash-crowd path, the balancer's delegation churn, cache
//! insertion policy, shared writes and journal replay.

use dynmds_event::SimDuration;
use dynmds_harness::{ablation, flashrun, hotspotrun, ExperimentScale};
use dynmds_metrics::Table;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/quick/{name}.csv", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_matches_golden(name: &str, table: &Table) {
    let actual = table.to_csv();
    let expected = golden(name);
    if actual == expected {
        return;
    }
    // Persist the regenerated CSV so CI (and humans) can re-diff it:
    //   diff -u tests/golden/quick/<name>.csv target/golden-actual/<name>.csv
    let dir = format!("{}/target/golden-actual", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).ok();
    let path = format!("{dir}/{name}.csv");
    std::fs::write(&path, &actual).ok();
    panic!(
        "{name}.csv drifted from the seed revision's output — changes to the \
         simulator must stay result-preserving\n\
         regenerated CSV written to {path}\n{}",
        unified_diff(&expected, &actual)
    );
}

/// Line-level unified diff (full context — golden CSVs are small).
fn unified_diff(expected: &str, actual: &str) -> String {
    let a: Vec<&str> = expected.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    let mut lcs = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in (0..a.len()).rev() {
        for j in (0..b.len()).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }
    let mut out = String::from("--- golden\n+++ regenerated\n");
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (tag, line) = if a[i] == b[j] {
            let l = a[i];
            (i, j) = (i + 1, j + 1);
            (' ', l)
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            let l = a[i];
            i += 1;
            ('-', l)
        } else {
            let l = b[j];
            j += 1;
            ('+', l)
        };
        out.push(tag);
        out.push_str(line);
        out.push('\n');
    }
    for line in &a[i..] {
        out.push('-');
        out.push_str(line);
        out.push('\n');
    }
    for line in &b[j..] {
        out.push('+');
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn unified_diff_marks_changed_lines() {
    let d = unified_diff("h\na,1\nb,2\n", "h\na,1\nb,3\n");
    assert!(d.starts_with("--- golden\n+++ regenerated\n"), "{d}");
    assert!(d.contains(" h\n"), "{d}");
    assert!(d.contains("-b,2\n"), "{d}");
    assert!(d.contains("+b,3\n"), "{d}");
}

#[test]
fn fig7_flash_crowd_matches_seed_output() {
    let r = flashrun::run_flash(ExperimentScale::Quick);
    let bin = SimDuration::from_millis(50);
    assert_matches_golden("fig7", &flashrun::fig7_table(&r, bin));
}

#[test]
fn ablate_balance_matches_seed_output() {
    let pts = ablation::run_ablate_balance(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_balance",
        &ablation::ablation_table("Table B: load balancing vs total throughput", &pts),
    );
}

#[test]
fn ablate_probation_matches_seed_output() {
    let pts = ablation::run_ablate_probation(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_probation",
        &ablation::ablation_table(
            "Table G: near-tail vs MRU insertion of prefetched metadata",
            &pts,
        ),
    );
}

#[test]
fn ablate_shared_writes_matches_seed_output() {
    let pts = ablation::run_ablate_shared_writes(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_shared_writes",
        &ablation::ablation_table(
            "Table F: GPFS-style shared writes under an N-to-1 write crowd",
            &pts,
        ),
    );
}

#[test]
fn hotspot_matches_committed_output() {
    // Golden produced by `experiments --quick --shards 2 hotspot`; the
    // shard/thread choice here is immaterial (the report is invariant —
    // `hotspot_csv_is_invariant_across_shard_counts` pins that), so this
    // test pins the *results* against the committed CSV.
    let pts = hotspotrun::run_hotspot(ExperimentScale::Quick, 2, Some(2));
    assert_matches_golden("hotspot", &hotspotrun::hotspot_table(&pts));
}

#[test]
fn ablate_warming_matches_seed_output() {
    let pts = ablation::run_ablate_journal_warming(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_warming",
        &ablation::ablation_table(
            "Table D: journal cache warming on failover (post-failure window)",
            &pts,
        ),
    );
}

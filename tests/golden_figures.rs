//! Golden-figure regression test: the optimized hot path (memoized
//! authority, dense LRU slab, allocation-free traversal and sampling)
//! must not change simulation *results*, only their cost. Each table here
//! is regenerated in-process at `--quick` scale and compared byte-for-byte
//! against the CSVs under `tests/golden/quick/`, which were produced by
//! the seed revision's `experiments --quick --csv` run.
//!
//! Only the cheaper figures are regenerated (the full quick suite is a
//! release-binary job — `experiments bench` covers it); together these
//! exercise the flash-crowd path, the balancer's delegation churn, cache
//! insertion policy, shared writes and journal replay.

use dynmds_event::SimDuration;
use dynmds_harness::{ablation, flashrun, ExperimentScale};
use dynmds_metrics::Table;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/quick/{name}.csv", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_matches_golden(name: &str, table: &Table) {
    assert_eq!(
        table.to_csv(),
        golden(name),
        "{name}.csv drifted from the seed revision's output — the hot-path \
         optimizations must be result-preserving"
    );
}

#[test]
fn fig7_flash_crowd_matches_seed_output() {
    let r = flashrun::run_flash(ExperimentScale::Quick);
    let bin = SimDuration::from_millis(50);
    assert_matches_golden("fig7", &flashrun::fig7_table(&r, bin));
}

#[test]
fn ablate_balance_matches_seed_output() {
    let pts = ablation::run_ablate_balance(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_balance",
        &ablation::ablation_table("Table B: load balancing vs total throughput", &pts),
    );
}

#[test]
fn ablate_probation_matches_seed_output() {
    let pts = ablation::run_ablate_probation(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_probation",
        &ablation::ablation_table(
            "Table G: near-tail vs MRU insertion of prefetched metadata",
            &pts,
        ),
    );
}

#[test]
fn ablate_shared_writes_matches_seed_output() {
    let pts = ablation::run_ablate_shared_writes(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_shared_writes",
        &ablation::ablation_table(
            "Table F: GPFS-style shared writes under an N-to-1 write crowd",
            &pts,
        ),
    );
}

#[test]
fn ablate_warming_matches_seed_output() {
    let pts = ablation::run_ablate_journal_warming(ExperimentScale::Quick);
    assert_matches_golden(
        "ablate_warming",
        &ablation::ablation_table(
            "Table D: journal cache warming on failover (post-failure window)",
            &pts,
        ),
    );
}

//! Hard-link / anchor-table coverage: drive a live namespace through
//! randomized link / unlink / rename sequences, maintaining the anchor
//! table with the same discipline the cluster uses (anchor on the first
//! extra link, unanchor when the link count falls back to one or the
//! inode dies, retarget on moves). After every burst the table must match
//! a from-scratch reference recomputation exactly — per-entry refcounts,
//! stored parents, and `resolve` chains.

use dynmds_event::SimRng;
use dynmds_namespace::{FxHashMap, FxHashSet, InodeId, Namespace, NamespaceSpec, Permissions};
use dynmds_storage::AnchorTable;

/// From-scratch expectation: every anchored file contributes one ref to
/// itself and each of its ancestors; stored parents mirror the namespace.
fn expected_entries(
    ns: &Namespace,
    anchored: &FxHashSet<InodeId>,
) -> FxHashMap<InodeId, (Option<InodeId>, u32)> {
    let mut want: FxHashMap<InodeId, (Option<InodeId>, u32)> = FxHashMap::default();
    for &a in anchored {
        for id in std::iter::once(a).chain(ns.ancestors(a)) {
            let parent = ns.parent(id).unwrap();
            let e = want.entry(id).or_insert((parent, 0));
            e.0 = parent;
            e.1 += 1;
        }
    }
    want
}

fn assert_table_matches(ns: &Namespace, anchors: &AnchorTable, anchored: &FxHashSet<InodeId>) {
    let want = expected_entries(ns, anchored);
    let got: FxHashMap<InodeId, (Option<InodeId>, u32)> =
        anchors.iter().map(|(id, parent, refs)| (id, (parent, refs))).collect();
    assert_eq!(got.len(), want.len(), "anchor table size drifted from reference");
    for (id, (parent, refs)) in &want {
        let (got_parent, got_refs) =
            got.get(id).unwrap_or_else(|| panic!("{id} missing from anchor table"));
        assert_eq!(got_parent, parent, "stored parent wrong for {id}");
        assert_eq!(got_refs, refs, "refcount wrong for {id}");
    }
    // Resolvability: every anchored file's chain equals its live ancestry.
    for &a in anchored {
        let chain = anchors.resolve(a).unwrap_or_else(|| panic!("{a} anchored but unresolvable"));
        let live: Vec<InodeId> = ns.ancestors(a).collect();
        assert_eq!(chain, live, "resolve({a}) disagrees with the namespace");
    }
}

#[test]
fn anchor_table_tracks_randomized_link_churn() {
    let snap =
        NamespaceSpec { users: 5, mean_dirs_per_user: 5.0, seed: 0xA2C4, ..Default::default() }
            .generate();
    let mut ns = snap.ns;
    let mut anchors = AnchorTable::new();
    let mut anchored: FxHashSet<InodeId> = FxHashSet::default();
    let mut rng = SimRng::seed_from_u64(0x11_2233);
    let (mut links_made, mut promotions) = (0u32, 0u32);

    for step in 0..4_000u64 {
        let live: Vec<InodeId> = ns.live_ids().collect();
        let dirs: Vec<InodeId> = live.iter().copied().filter(|&i| ns.is_dir(i)).collect();
        let files: Vec<InodeId> = live.iter().copied().filter(|&i| !ns.is_dir(i)).collect();

        match rng.below(10) {
            // Grow the tree so later ops have fresh material.
            0 => {
                let dir = *rng.pick(&dirs);
                let _ = ns.create_file(dir, &format!("f{step}"), Permissions::shared(1));
            }
            1 => {
                let dir = *rng.pick(&dirs);
                let _ = ns.mkdir(dir, &format!("d{step}"), Permissions::directory(1));
            }
            // Hard link: first extra link anchors the target (§4.5).
            2..=4 => {
                let target = *rng.pick(&files);
                let dir = *rng.pick(&dirs);
                if ns.link(target, dir, &format!("l{step}")).is_ok() {
                    links_made += 1;
                    if !anchors.contains(target) {
                        anchors.anchor(&ns, target);
                        anchored.insert(target);
                    }
                }
            }
            // Unlink a random dentry (may be a primary, a secondary link,
            // or an empty directory).
            5..=7 => {
                let dir = *rng.pick(&dirs);
                let names: Vec<String> =
                    ns.children(dir).unwrap().map(|(n, _)| n.to_string()).collect();
                if names.is_empty() {
                    continue;
                }
                let name = rng.pick(&names).clone();
                if let Ok(id) = ns.unlink(dir, &name) {
                    if ns.is_alive(id) {
                        if ns.inode(id).map(|i| i.nlink).unwrap_or(0) <= 1 && anchors.contains(id) {
                            anchors.unanchor(id);
                            anchored.remove(&id);
                        } else if anchors.contains(id) {
                            // Primary promotion may have moved the inode.
                            anchors.on_rename(&ns, id);
                            promotions += 1;
                        }
                    } else if anchors.contains(id) {
                        anchors.unanchor(id);
                        anchored.remove(&id);
                    }
                }
            }
            // Rename, including cross-directory moves of whole subtrees;
            // anchored entries (and chains through moved dirs) retarget.
            _ => {
                let old_dir = *rng.pick(&dirs);
                let names: Vec<String> =
                    ns.children(old_dir).unwrap().map(|(n, _)| n.to_string()).collect();
                if names.is_empty() {
                    continue;
                }
                let name = rng.pick(&names).clone();
                let new_dir = *rng.pick(&dirs);
                if let Ok(id) = ns.rename(old_dir, &name, new_dir, &format!("r{step}")) {
                    if anchors.contains(id) {
                        anchors.on_rename(&ns, id);
                    }
                }
            }
        }

        if step % 8 == 0 || step == 3_999 {
            assert_table_matches(&ns, &anchors, &anchored);
        }
    }

    assert!(links_made > 100, "churn must actually create hard links (made {links_made})");
    assert!(promotions > 0, "primary-dentry promotion path never exercised");
    assert_table_matches(&ns, &anchors, &anchored);
}

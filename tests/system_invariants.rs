//! Integration tests: conservation laws that must hold across the whole
//! simulated system for any strategy and any feature combination.

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::SimTime;
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{GeneralWorkload, WorkloadConfig};

fn run(strategy: StrategyKind, tweak: impl FnOnce(&mut SimConfig)) -> Simulation {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.seed = 71;
    tweak(&mut cfg);
    let snap = NamespaceSpec::with_target_items(24, 6_000, 8).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 72, ..Default::default() },
        24,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    let mut sim = Simulation::new(cfg, snap, wl);
    sim.run_until(SimTime::from_secs(8));
    sim
}

/// Every arrival is either served, forwarded on, or answered with a cheap
/// stale-target reply; nothing is lost.
#[test]
fn request_conservation_per_node() {
    for strategy in StrategyKind::ALL {
        let sim = run(strategy, |_| {});
        for node in &sim.cluster().nodes {
            let l = &node.life;
            assert!(
                l.received >= l.served + l.forwarded,
                "{strategy}/{}: received {} < served {} + forwarded {}",
                node.id,
                l.received,
                l.served,
                l.forwarded
            );
            // Stale (ESTALE) replies are the only remainder, and they are
            // a small minority of traffic.
            let stale = l.received - l.served - l.forwarded;
            assert!(
                stale * 10 <= l.received.max(10),
                "{strategy}/{}: implausible stale volume {stale}/{}",
                node.id,
                l.received
            );
        }
    }
}

/// Cache statistics stay self-consistent: every eviction matched an
/// insertion, the cache never exceeds capacity without logged overflows.
#[test]
fn cache_capacity_is_respected() {
    for strategy in StrategyKind::ALL {
        let sim = run(strategy, |_| {});
        for node in &sim.cluster().nodes {
            let stats = node.cache.stats();
            if stats.overflows == 0 {
                assert!(
                    node.cache.len() <= node.cache.capacity(),
                    "{strategy}/{}: {} > {}",
                    node.id,
                    node.cache.len(),
                    node.cache.capacity()
                );
            }
            node.cache.check_integrity();
        }
    }
}

/// The per-node time series sum to the lifetime counters over the
/// measurement window.
#[test]
fn series_and_counters_agree() {
    let sim = run(StrategyKind::DynamicSubtree, |_| {});
    // Window counters not yet sampled remain in `win`; sampled ones are in
    // the series. life = series + win.
    let cluster = sim.cluster();
    let end = SimTime::from_secs(1_000);
    for (i, node) in cluster.nodes.iter().enumerate() {
        let series_sum: f64 =
            cluster.report_served_series(i).map(|s| s.sum_in(SimTime::ZERO, end)).unwrap_or(0.0);
        assert_eq!(
            series_sum as u64 + node.win.served,
            node.life.served,
            "node {i}: series + window must equal lifetime"
        );
    }
}

/// Disk traffic accounting: every MDS-recorded fetch reached the store,
/// and the store reached the pool.
#[test]
fn disk_accounting_chains() {
    for strategy in [StrategyKind::DynamicSubtree, StrategyKind::FileHash] {
        let sim = run(strategy, |_| {});
        let cluster = sim.cluster();
        let store_reads = cluster.store.fetches();
        let pool = cluster.store.pool().total_stats();
        assert!(store_reads > 0, "{strategy}: no fetches at all?");
        assert_eq!(pool.reads, store_reads, "{strategy}: every store fetch is one pool read");
        let physical_wb = cluster.store.writebacks() - cluster.store.coalesced_writebacks();
        assert_eq!(
            pool.writes, physical_wb,
            "{strategy}: pool writes equal uncoalesced writebacks"
        );
    }
}

/// All features on at once: leases + balancing + traffic control + dir
/// hashing remain deterministic and serve work.
#[test]
fn kitchen_sink_configuration_runs() {
    let go = || {
        let sim = run(StrategyKind::DynamicSubtree, |cfg| {
            cfg.client_leases = true;
            cfg.dir_hash_threshold = 100;
            cfg.traffic_control = true;
            cfg.balancing = true;
        });
        let served: u64 = sim.cluster().nodes.iter().map(|n| n.life.served).sum();
        let leases = sim.cluster().clients.lease_hits();
        (served, leases)
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "deterministic with everything enabled");
    assert!(a.0 > 1_000, "still serves work");
}

/// Served-op composition reflects the configured mix: reads dominate,
/// every open has a matching close, rare ops stay rare.
#[test]
fn op_mix_survives_the_pipeline() {
    use dynmds::workload::OpKind;
    let sim = run(StrategyKind::DynamicSubtree, |_| {});
    let counts = &sim.cluster().op_counts;
    let get = |k: OpKind| counts.get(&k).copied().unwrap_or(0);
    let total: u64 = counts.values().sum();
    assert!(total > 5_000);
    assert!(get(OpKind::Stat) * 2 > total, "stats dominate the served mix");
    let opens = get(OpKind::Open);
    let closes = get(OpKind::Close);
    assert!(opens > 0);
    // Closes trail opens only by in-flight pairs.
    assert!(closes <= opens && opens - closes < 100, "{opens} opens vs {closes} closes");
    assert!(get(OpKind::Rename) * 20 < total, "renames stay rare");
    assert!(get(OpKind::Link) * 20 < total, "hard links stay rare");
}

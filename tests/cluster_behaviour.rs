//! Integration tests: runtime behaviour of the full simulated system —
//! load balancing, traffic control, and dynamic directory hashing working
//! together across the workspace crates.

use dynmds::core::{SimConfig, Simulation};
use dynmds::event::{SimDuration, SimTime};
use dynmds::namespace::NamespaceSpec;
use dynmds::partition::StrategyKind;
use dynmds::workload::{FlashCrowd, GeneralWorkload, WorkloadConfig};

/// A workload that concentrates every client on one user's home subtree:
/// the initial partition gives that subtree to one MDS, so without
/// balancing one node does all the work.
fn skewed_setup(
    strategy: StrategyKind,
    balancing: bool,
) -> (SimConfig, dynmds::namespace::Snapshot, Box<GeneralWorkload>) {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 32;
    cfg.balancing = balancing;
    cfg.traffic_control = false;
    cfg.heartbeat = SimDuration::from_secs(2);
    cfg.seed = 5;
    let snapshot = NamespaceSpec::with_target_items(8, 8_000, 3).generate();
    // All 32 clients share the same single home region => one hot MDS.
    let hot = [snapshot.user_homes[0]];
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { locality: 1.0, seed: 11, ..Default::default() },
        cfg.n_clients as usize,
        &hot,
        &[],
        &snapshot.ns,
    ));
    (cfg, snapshot, wl)
}

#[test]
fn balancer_spreads_a_skewed_workload() {
    let run = |balancing: bool| {
        let (cfg, snap, wl) = skewed_setup(StrategyKind::DynamicSubtree, balancing);
        let mut sim = Simulation::new(cfg, snap, wl);
        sim.run_until(SimTime::from_secs(20));
        let migrations = sim.cluster().migrations;
        let report = sim.finish();
        (migrations, report)
    };
    let (m_off, r_off) = run(false);
    let (m_on, r_on) = run(true);

    assert_eq!(m_off, 0, "balancer disabled must not migrate");
    assert!(m_on > 0, "skew must trigger subtree migration");

    // With balancing, work is spread over more nodes.
    let active = |r: &dynmds::core::SimReport| {
        r.nodes.iter().filter(|n| n.served > r.total_served() / 20).count()
    };
    assert!(
        active(&r_on) > active(&r_off),
        "balancing should activate more nodes: {} vs {}",
        active(&r_on),
        active(&r_off)
    );
}

#[test]
fn traffic_control_spreads_a_flash_crowd() {
    let run = |tc: bool| {
        let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        cfg.n_mds = 4;
        cfg.n_clients = 300;
        cfg.traffic_control = tc;
        cfg.replication_threshold = 32.0;
        cfg.balancing = false;
        cfg.costs.think_mean = SimDuration::from_millis(20);
        let snapshot = NamespaceSpec { users: 8, seed: 2, ..Default::default() }.generate();
        let target = snapshot
            .ns
            .walk(snapshot.shared_roots[0])
            .find(|&id| !snapshot.ns.is_dir(id))
            .expect("file in shared tree");
        let wl = Box::new(FlashCrowd::new(target, 300));
        let mut sim = Simulation::with_start(
            cfg,
            snapshot,
            wl,
            SimTime::from_millis(50),
            SimDuration::from_millis(100),
        );
        sim.run_until(SimTime::from_secs(1));
        let replicated = sim.cluster().is_replicated(target);
        let report = sim.finish();
        (replicated, report)
    };

    let (replicated_on, r_on) = run(true);
    let (replicated_off, r_off) = run(false);

    assert!(replicated_on, "popularity must trip replication");
    assert!(!replicated_off, "no replication without traffic control");

    let peak_share = |r: &dynmds::core::SimReport| {
        r.nodes.iter().map(|n| n.served).max().unwrap_or(0) as f64 / r.total_served().max(1) as f64
    };
    assert!(
        peak_share(&r_off) > 0.9,
        "without TC the authority serves ~everything, got {}",
        peak_share(&r_off)
    );
    assert!(
        peak_share(&r_on) < 0.6,
        "with TC replies spread across nodes, got {}",
        peak_share(&r_on)
    );
    assert!(
        r_on.total_served() > r_off.total_served(),
        "TC must raise total crowd throughput ({} vs {})",
        r_on.total_served(),
        r_off.total_served()
    );
}

#[test]
fn huge_directories_get_hashed_dynamically() {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 16;
    cfg.dir_hash_threshold = 50;
    cfg.balancing = false;
    cfg.seed = 9;
    let snapshot = NamespaceSpec::with_target_items(4, 2_000, 7).generate();
    let hot_home = snapshot.user_homes[0];
    // Create-heavy clients all writing into one region grow its dirs past
    // the threshold.
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig {
            locality: 1.0,
            navigate_prob: 0.02,
            mix: dynmds::workload::OpMix::create_heavy(),
            seed: 4,
            ..Default::default()
        },
        cfg.n_clients as usize,
        &[hot_home],
        &[],
        &snapshot.ns,
    ));
    let mut sim = Simulation::new(cfg, snapshot, wl);
    sim.run_until(SimTime::from_secs(15));

    let cluster = sim.cluster();
    let hashed: Vec<_> = cluster.ns.live_ids().filter(|&id| cluster.is_dir_hashed(id)).collect();
    assert!(!hashed.is_empty(), "a directory past {} entries must be spread entry-wise", 50);
    for d in hashed {
        assert!(cluster.ns.child_count(d).unwrap() > 25, "hashed dirs are big");
    }
}

#[test]
fn deterministic_across_runs_with_balancing_and_tc() {
    let run = || {
        let (mut cfg, snap, wl) = skewed_setup(StrategyKind::DynamicSubtree, true);
        cfg.traffic_control = true;
        let mut sim = Simulation::new(cfg, snap, wl);
        sim.run_until(SimTime::from_secs(12));
        let migrations = sim.cluster().migrations;
        let r = sim.finish();
        (migrations, r.total_served(), r.total_forwarded())
    };
    assert_eq!(run(), run(), "full feature set must stay deterministic");
}

#[test]
fn client_leases_offload_attribute_reads() {
    let run = |leases: bool| {
        let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        cfg.n_mds = 4;
        cfg.n_clients = 32;
        cfg.client_leases = leases;
        cfg.seed = 61;
        let snap = NamespaceSpec::with_target_items(32, 8_000, 6).generate();
        let wl = Box::new(GeneralWorkload::new(
            WorkloadConfig { seed: 62, ..Default::default() },
            32,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        ));
        let mut sim = Simulation::new(cfg, snap, wl);
        sim.run_until(SimTime::from_secs(10));
        let hits = sim.cluster().clients.lease_hits();
        let served: u64 = sim.cluster().nodes.iter().map(|n| n.life.served).sum();
        (hits, served)
    };
    let (hits_off, served_off) = run(false);
    let (hits_on, served_on) = run(true);
    assert_eq!(hits_off, 0, "no leases granted when disabled");
    assert!(hits_on > 1_000, "leases must absorb repeat reads, got {hits_on}");
    assert!(
        served_on < served_off,
        "the cluster must see fewer requests with leases ({served_on} vs {served_off})"
    );
    // Total client progress must not fall.
    assert!(hits_on + served_on >= served_off, "leases must not lose work");
}

#[test]
fn shared_writes_absorb_and_converge() {
    use dynmds::workload::WriteCrowd;
    let run = |shared: bool| {
        let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        cfg.n_mds = 4;
        cfg.n_clients = 120;
        cfg.shared_writes = shared;
        cfg.traffic_control = true;
        cfg.replication_threshold = 32.0;
        cfg.balancing = false;
        cfg.heartbeat = SimDuration::from_millis(500);
        cfg.costs.think_mean = SimDuration::from_millis(10);
        cfg.seed = 81;
        let snap = NamespaceSpec { users: 8, seed: 82, ..Default::default() }.generate();
        let target =
            snap.ns.walk(snap.shared_roots[0]).find(|&i| !snap.ns.is_dir(i)).expect("shared file");
        let wl = Box::new(WriteCrowd::new(target, 120));
        let mut sim = Simulation::with_start(
            cfg,
            snap,
            wl,
            SimTime::from_millis(50),
            SimDuration::from_millis(100),
        );
        sim.run_until(SimTime::from_secs(3));
        (sim, target)
    };

    let (sim_off, _) = run(false);
    let (sim_on, target) = run(true);
    let c_off = sim_off.cluster();
    let c_on = sim_on.cluster();

    assert_eq!(c_off.shared_write_absorbed, 0);
    assert!(c_on.shared_write_absorbed > 1_000, "replicas must absorb writes");
    assert!(c_on.shared_write_flushes > 0, "heartbeat must merge deltas");

    // Throughput: replica absorption beats single-authority serialization.
    let served = |c: &dynmds::core::Cluster| -> u64 { c.nodes.iter().map(|n| n.life.served).sum() };
    assert!(
        served(c_on) > served(c_off),
        "shared writes must raise write-crowd throughput ({} vs {})",
        served(c_on),
        served(c_off)
    );

    // Convergence: every absorbed SetAttr advanced mtime; after the last
    // heartbeat flush plus a read, size/mtime reflect merged deltas.
    let ino = c_on.ns.inode(target).unwrap();
    assert!(ino.mtime_us > 0, "merged mtime visible in the namespace");
    // All remaining dirt is bounded by one heartbeat window of activity.
    let pending: usize = c_on.nodes.iter().map(|n| n.write_deltas.len()).sum();
    assert!(pending <= c_on.nodes.len(), "at most one dirty entry per node");
}

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch the real crate, so this stub
//! re-implements the pieces the property tests rely on: the `proptest!`
//! macro, `Strategy` with `prop_map`, `any::<T>()`, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop_oneof!`, the
//! `prop_assert*` family, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate and documented:
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (the `prop_assert*` macros include values), not a minimized
//!   counterexample.
//! - **Deterministic.** Each test derives its RNG seed from its own name,
//!   so failures reproduce exactly and CI never flakes.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    ///
    /// Object-safe: only `sample` is dynamically dispatched; combinators
    /// require `Sized`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps drawn values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Full-range values of a primitive type (`any::<T>()`).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Any value of `T` — the `proptest::prelude::any` entry point.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `prop::collection::vec`: a vector with length drawn from `len`
    /// and elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test generator (xoshiro256++, seeded from the
    /// test's name so distinct tests draw distinct streams).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for the named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n = 0` yields 0.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod prelude {
    /// `prop::…` paths (e.g. `prop::collection::vec`) resolve against the
    /// crate root, as in upstream's prelude.
    pub use crate as prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(args in strategies) body`
/// becomes a standard test running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $($(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..5, 2..7).sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = prop_oneof![
            (0u8..1).prop_map(|_| "a"),
            (0u8..1).prop_map(|_| "b"),
            (0u8..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, assume, asserts.
        #[test]
        fn macro_end_to_end(
            a in 0u64..100,
            (b, flip) in (0usize..10, any::<bool>()),
            v in prop::collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(a < 100);
            prop_assert!(b < 10, "b = {b}");
            prop_assert_eq!(usize::from(flip).min(1), usize::from(flip));
            prop_assert_ne!(v.len(), 0);
        }
    }
}

//! Offline stand-in for the `serde` API surface this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few snapshot and
//! trace types and asserts the bounds in tests; nothing in-tree actually
//! encodes to a wire format (there is no `serde_json`/`bincode` here).
//! This stub keeps those derives and bounds compiling offline. The traits
//! are deliberately empty markers: when a real format crate is introduced,
//! this stub must be replaced by the real `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// `serde::de` module, for `serde::de::DeserializeOwned` bounds.
pub mod de {
    /// Marker for types deserializable without borrowing the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! impl_leaf {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_leaf!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

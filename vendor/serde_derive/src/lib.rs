//! Derive macros for the offline `serde` stand-in.
//!
//! The stub traits are empty markers, so deriving them only requires the
//! type's name — parsed directly from the token stream without `syn`.
//! Supports plain (non-generic) structs and enums, which covers every
//! derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name: the identifier following `struct` or `enum`.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("derive target must be a struct or enum");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}

//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` for
//! `u64`/`f64`, and `Rng::gen_range` over integer ranges.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be fetched. This crate keeps the same contract
//! the simulator relies on — a seeded generator produces an identical
//! stream on every run and platform — using xoshiro256++ seeded through
//! SplitMix64. The concrete stream differs from upstream `StdRng`
//! (ChaCha12); all golden figures in this repository were generated with
//! this generator.

use std::ops::Range;

/// Seeding by `u64`, the only construction path the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-generation helpers over a core `u64` source.
pub trait Rng {
    /// The core source: the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (see [`Sample`] impls).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from an integer range. Panics on an empty range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Sample {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] accepts.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Widening-multiply range reduction (Lemire). The ~2^-64 modulo bias is
/// irrelevant for simulation sampling; determinism is what matters.
#[inline]
fn reduce(x: u64, n: u64) -> u64 {
    ((x as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + reduce(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator: xoshiro256++ with SplitMix64 seed
    /// expansion. Not the upstream ChaCha12 `StdRng`; see crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_pin() {
        // Pin the concrete stream: golden figure CSVs depend on it.
        let mut r = StdRng::seed_from_u64(7);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(first.len(), 4);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(first, (0..4).map(|_| r2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..17);
            assert!((10..17).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}

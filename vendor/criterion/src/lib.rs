//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: `Criterion`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics, outlier analysis, or HTML reports — each benchmark
//! runs a fixed-time measurement loop and prints mean wall-clock per
//! iteration. Good enough to keep `cargo bench` informative offline;
//! `BENCH_sim.json` (the harness `bench` mode) is the tracked perf
//! record.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.measure, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), measure: self.measure, _parent: self }
    }
}

/// A named group; `sample_size`/`measurement_time` adjust the budget.
pub struct BenchmarkGroup<'a> {
    name: String,
    measure: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream trades samples for time; here fewer samples = less time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measure = Duration::from_millis((n as u64 * 20).clamp(100, 2_000));
        self
    }

    /// Sets the measurement budget directly.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.measure, f);
        self
    }

    /// Ends the group (no-op; parity with upstream).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, mut f: F) {
    let mut b = Bencher { budget, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        println!("{name}: setup only (closure never called iter)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / b.iters as u128;
    println!("{name}: {} iters, {} ns/iter", b.iters, per_iter);
}

/// Prevents the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_millis(5));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion { measure: Duration::from_millis(5) };
        sample_bench(&mut c);
        c.bench_function("direct", |b| b.iter(|| black_box(2u64) * 3));
    }
}

//! Deterministic observability for the dynmds simulator.
//!
//! The paper's whole argument is made through measurements of MDS
//! behaviour — popularity counters, load imbalance, cache hit rates,
//! journal churn (§4.1, §5) — so the simulator is operated through its
//! telemetry too. This crate provides the three instruments the cluster
//! wires through its op hot path:
//!
//! * [`Registry`] — named counters, gauges, and fixed-bucket histograms,
//!   each either scalar or per-MDS (one slot per server);
//! * [`SpanRecorder`] — scoped spans tracing the op lifecycle (client
//!   dispatch → traverse → cache probe → partition authority →
//!   storage/journal I/O → reply) into a bounded ring buffer;
//! * [`SnapshotSeries`] — periodic per-MDS time-series rows (load, cache
//!   occupancy split prefix-vs-target, journal depth, delegation count).
//!
//! **Determinism rules.** Every recorded value is an integer stamped with
//! the *simulation* clock ([`dynmds_event::SimTime`] microseconds); no
//! wall clock, no floats, no hash-map iteration order reaches an export.
//! Two runs with the same seed therefore produce byte-identical JSONL.
//!
//! **Cost rules.** The instruments are plain integer stores behind
//! pre-registered handles; nothing here allocates per operation except
//! span recording, which only runs when tracing is explicitly enabled.
//! The embedding layer (dynmds-core) keeps its disabled path to a single
//! branch on an enabled flag.

pub mod registry;
pub mod snapshot;
pub mod span;

pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use snapshot::SnapshotSeries;
pub use span::{SpanRecorder, SpanStage};

/// Observability switches carried inside a simulation config.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Enable the metrics registry and periodic snapshots.
    pub metrics: bool,
    /// Enable per-op lifecycle spans (implies `metrics`).
    pub trace: bool,
    /// Completed spans kept in the ring buffer; 0 means the default
    /// ([`DEFAULT_TRACE_CAPACITY`]).
    pub trace_capacity: usize,
}

/// Ring-buffer size used when [`ObsConfig::trace_capacity`] is 0.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl ObsConfig {
    /// Metrics + snapshots on, tracing off.
    pub fn metrics_only() -> Self {
        ObsConfig { metrics: true, trace: false, trace_capacity: 0 }
    }

    /// Everything on.
    pub fn full() -> Self {
        ObsConfig { metrics: true, trace: true, trace_capacity: 0 }
    }

    /// Whether any instrument is live.
    pub fn enabled(&self) -> bool {
        self.metrics || self.trace
    }

    /// The effective span ring capacity.
    pub fn ring_capacity(&self) -> usize {
        if self.trace_capacity == 0 {
            DEFAULT_TRACE_CAPACITY
        } else {
            self.trace_capacity
        }
    }
}

/// Appends a JSON-escaped copy of `s` to `out` (the subset the simulator
/// needs: quotes, backslashes, and control characters).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_off() {
        let c = ObsConfig::default();
        assert!(!c.enabled());
        assert!(ObsConfig::metrics_only().enabled());
        assert!(ObsConfig::full().trace);
    }

    #[test]
    fn ring_capacity_falls_back_to_default() {
        assert_eq!(ObsConfig::full().ring_capacity(), DEFAULT_TRACE_CAPACITY);
        let c = ObsConfig { trace_capacity: 16, ..ObsConfig::full() };
        assert_eq!(c.ring_capacity(), 16);
    }

    #[test]
    fn json_strings_escape_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000ad\"");
    }
}

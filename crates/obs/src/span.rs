//! Scoped op-lifecycle spans.
//!
//! One span traces a single client operation through the cluster:
//! client dispatch → (forwarding hops / failover timeouts) → path
//! traversal → target cache probe → journal commit → reply. The
//! simulator serves at most one in-flight op per client, so the open
//! span lives in a dense per-client slot — starting and finishing a span
//! is an array store, no map.
//!
//! Completed spans land in a bounded ring buffer: when it fills, the
//! oldest span is dropped (and counted), keeping memory flat over
//! arbitrarily long runs while retaining the most recent window —
//! what a post-mortem wants.

use crate::push_json_str;

/// A stage in the op lifecycle. The order of variants is the canonical
/// stage order used in exports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStage {
    /// Client dispatched the request.
    Issue,
    /// Attribute read answered from the client's own lease, never
    /// reaching the cluster.
    LeaseLocal,
    /// Request arrived at an MDS.
    Arrive,
    /// Non-authoritative receiver forwarded it.
    Forward,
    /// The addressed node was dead; the client re-drove the request.
    DeadTimeout,
    /// The client re-sent the request after backoff (retry policy).
    Retry,
    /// The client exhausted its retry budget and abandoned the op
    /// (terminal stage).
    GaveUp,
    /// Target raced with an unlink; cheap error reply.
    Estale,
    /// Prefix traversal (incl. remote prefix fetches) completed.
    Traverse,
    /// Target metadata found in the serving node's cache.
    CacheHit,
    /// Target metadata fetched from tier-2 storage.
    CacheMiss,
    /// Mutation committed to the serving node's journal.
    Journal,
    /// Reply reached the client.
    Reply,
}

impl SpanStage {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Issue => "issue",
            SpanStage::LeaseLocal => "lease_local",
            SpanStage::Arrive => "arrive",
            SpanStage::Forward => "forward",
            SpanStage::DeadTimeout => "dead_timeout",
            SpanStage::Retry => "retry",
            SpanStage::GaveUp => "gave_up",
            SpanStage::Estale => "estale",
            SpanStage::Traverse => "traverse",
            SpanStage::CacheHit => "cache_hit",
            SpanStage::CacheMiss => "cache_miss",
            SpanStage::Journal => "journal",
            SpanStage::Reply => "reply",
        }
    }
}

/// Sentinel for "no MDS involved in this stage".
pub const NO_MDS: u16 = u16::MAX;

/// One recorded stage transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which stage.
    pub stage: SpanStage,
    /// Sim-clock timestamp, microseconds.
    pub at_us: u64,
    /// The MDS involved, or [`NO_MDS`].
    pub mds: u16,
}

/// A completed (or in-flight) op trace.
#[derive(Clone, Debug)]
pub struct OpSpan {
    /// Monotone per-run op sequence number.
    pub op_id: u64,
    /// Issuing client.
    pub client: u32,
    /// Operation kind tag (e.g. `"stat"`).
    pub kind: &'static str,
    /// Stage transitions in record order.
    pub events: Vec<SpanEvent>,
}

impl OpSpan {
    /// Serializes the span as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 32);
        out.push_str(&format!("{{\"op\":{},\"client\":{},\"kind\":", self.op_id, self.client));
        push_json_str(&mut out, self.kind);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"s\":");
            push_json_str(&mut out, e.stage.name());
            out.push_str(&format!(",\"t\":{}", e.at_us));
            if e.mds != NO_MDS {
                out.push_str(&format!(",\"mds\":{}", e.mds));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Records spans for a population of clients. See module docs.
pub struct SpanRecorder {
    in_flight: Vec<Option<OpSpan>>,
    ring: std::collections::VecDeque<OpSpan>,
    cap: usize,
    next_op_id: u64,
    dropped: u64,
    /// Event buffers of evicted/discarded spans, reused by the next
    /// [`start`](Self::start) — once the ring fills, steady-state span
    /// recording allocates nothing per op.
    free: Vec<Vec<SpanEvent>>,
}

impl SpanRecorder {
    /// A recorder for `n_clients` clients keeping at most `cap` completed
    /// spans.
    pub fn new(n_clients: usize, cap: usize) -> Self {
        assert!(cap > 0, "span ring capacity must be positive");
        SpanRecorder {
            in_flight: (0..n_clients).map(|_| None).collect(),
            ring: std::collections::VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            next_op_id: 0,
            dropped: 0,
            free: Vec::new(),
        }
    }

    /// Opens a span for `client`'s next op. An unfinished previous span
    /// (which the simulator never produces) is discarded.
    pub fn start(&mut self, client: u32, kind: &'static str, at_us: u64) {
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        let mut events = self.free.pop().unwrap_or_default();
        events.push(SpanEvent { stage: SpanStage::Issue, at_us, mds: NO_MDS });
        let prev = self.in_flight[client as usize].replace(OpSpan { op_id, client, kind, events });
        if let Some(p) = prev {
            self.recycle(p.events);
        }
    }

    /// Appends a stage to `client`'s open span (no-op if none is open).
    pub fn event(&mut self, client: u32, stage: SpanStage, at_us: u64, mds: u16) {
        if let Some(span) = &mut self.in_flight[client as usize] {
            span.events.push(SpanEvent { stage, at_us, mds });
        }
    }

    /// Closes `client`'s span with a final stage and moves it to the ring.
    pub fn finish(&mut self, client: u32, stage: SpanStage, at_us: u64, mds: u16) {
        let Some(mut span) = self.in_flight[client as usize].take() else {
            return;
        };
        span.events.push(SpanEvent { stage, at_us, mds });
        if self.ring.len() == self.cap {
            if let Some(old) = self.ring.pop_front() {
                self.recycle(old.events);
            }
            self.dropped += 1;
        }
        self.ring.push_back(span);
    }

    fn recycle(&mut self, mut events: Vec<SpanEvent>) {
        events.clear();
        self.free.push(events);
    }

    /// Completed spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no spans have been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans ever opened.
    pub fn started(&self) -> u64 {
        self.next_op_id
    }

    /// Iterates retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &OpSpan> {
        self.ring.iter()
    }

    /// Discards all retained and in-flight spans (measurement restart).
    /// Op ids keep counting so ids stay unique within the run.
    pub fn reset(&mut self) {
        while let Some(s) = self.ring.pop_front() {
            self.recycle(s.events);
        }
        self.dropped = 0;
        for s in &mut self.in_flight {
            if let Some(p) = s.take() {
                let mut ev = p.events;
                ev.clear();
                self.free.push(ev);
            }
        }
    }

    /// One JSON line per retained span, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.ring {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle_records_stage_order() {
        let mut r = SpanRecorder::new(2, 8);
        r.start(1, "stat", 100);
        r.event(1, SpanStage::Arrive, 200, 3);
        r.event(1, SpanStage::CacheHit, 200, 3);
        r.finish(1, SpanStage::Reply, 400, 3);
        assert_eq!(r.len(), 1);
        let span = r.iter().next().unwrap();
        assert_eq!(span.op_id, 0);
        assert_eq!(span.events.len(), 4);
        assert_eq!(span.events[0].stage, SpanStage::Issue);
        assert_eq!(span.events[3].stage, SpanStage::Reply);
        assert_eq!(span.events[3].at_us, 400);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut r = SpanRecorder::new(1, 2);
        for i in 0..4u64 {
            r.start(0, "stat", i * 10);
            r.finish(0, SpanStage::Reply, i * 10 + 5, 0);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let ids: Vec<u64> = r.iter().map(|s| s.op_id).collect();
        assert_eq!(ids, vec![2, 3], "most recent spans retained");
        assert_eq!(r.started(), 4);
    }

    #[test]
    fn events_without_open_span_are_ignored() {
        let mut r = SpanRecorder::new(1, 2);
        r.event(0, SpanStage::Arrive, 5, 0);
        r.finish(0, SpanStage::Reply, 6, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn json_shape_is_compact_and_omits_no_mds() {
        let mut r = SpanRecorder::new(1, 2);
        r.start(0, "open", 7);
        r.finish(0, SpanStage::Reply, 9, 2);
        let line = r.to_jsonl();
        assert_eq!(
            line,
            "{\"op\":0,\"client\":0,\"kind\":\"open\",\"events\":[\
             {\"s\":\"issue\",\"t\":7},{\"s\":\"reply\",\"t\":9,\"mds\":2}]}\n"
        );
    }

    #[test]
    fn reset_clears_but_keeps_id_sequence() {
        let mut r = SpanRecorder::new(1, 4);
        r.start(0, "stat", 1);
        r.finish(0, SpanStage::Reply, 2, 0);
        r.reset();
        assert!(r.is_empty());
        r.start(0, "stat", 3);
        r.finish(0, SpanStage::Reply, 4, 0);
        assert_eq!(r.iter().next().unwrap().op_id, 1, "ids continue after reset");
    }
}

//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Metrics are registered once, up front, and addressed afterwards by
//! typed index handles — the hot path never touches a name or a hash
//! map. Each metric is a flat `Vec<u64>` with one slot per MDS (or a
//! single slot for cluster-wide scalars), so recording is one bounds
//! check and one integer add. Export walks metrics in registration
//! order, which is fixed by construction: byte-reproducible output.

use crate::push_json_str;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

struct Metric {
    name: &'static str,
    /// One slot per MDS, or a single slot for scalars.
    slots: Vec<u64>,
}

struct Histogram {
    name: &'static str,
    /// Inclusive upper bounds, strictly increasing; a final implicit
    /// +inf bucket catches the rest.
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }
}

/// Exponential microsecond bounds suitable for op latencies: 64 µs up to
/// ~8.4 s, doubling each bucket.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 131_072, 262_144,
    524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608,
];

/// Small linear bounds for hop counts and similar tiny distributions.
pub const HOPS_BOUNDS: &[u64] = &[0, 1, 2, 3, 4];

/// The per-cluster metrics registry. See module docs.
#[derive(Default)]
pub struct Registry {
    counters: Vec<Metric>,
    gauges: Vec<Metric>,
    histograms: Vec<Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a counter with `slots` slots (1 for a cluster scalar,
    /// `n_mds` for per-server).
    pub fn counter(&mut self, name: &'static str, slots: usize) -> CounterId {
        assert!(slots > 0, "a counter needs at least one slot");
        self.counters.push(Metric { name, slots: vec![0; slots] });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge with `slots` slots.
    pub fn gauge(&mut self, name: &'static str, slots: usize) -> GaugeId {
        assert!(slots > 0, "a gauge needs at least one slot");
        self.gauges.push(Metric { name, slots: vec![0; slots] });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram over fixed `bounds` (strictly increasing).
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [u64]) -> HistogramId {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        self.histograms.push(Histogram {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds 1 to a counter slot.
    #[inline]
    pub fn inc(&mut self, id: CounterId, slot: usize) {
        self.counters[id.0].slots[slot] += 1;
    }

    /// Adds `v` to a counter slot.
    #[inline]
    pub fn add(&mut self, id: CounterId, slot: usize, v: u64) {
        self.counters[id.0].slots[slot] += v;
    }

    /// Sets a gauge slot.
    #[inline]
    pub fn set(&mut self, id: GaugeId, slot: usize, v: u64) {
        self.gauges[id.0].slots[slot] = v;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].observe(value);
    }

    /// A counter slot's current value.
    pub fn counter_value(&self, id: CounterId, slot: usize) -> u64 {
        self.counters[id.0].slots[slot]
    }

    /// Sum of a counter across its slots.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.counters[id.0].slots.iter().sum()
    }

    /// A gauge slot's current value.
    pub fn gauge_value(&self, id: GaugeId, slot: usize) -> u64 {
        self.gauges[id.0].slots[slot]
    }

    /// Observations recorded by a histogram.
    pub fn histogram_count(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].count
    }

    /// Mean of a histogram's observations (0 when empty).
    pub fn histogram_mean(&self, id: HistogramId) -> f64 {
        let h = &self.histograms[id.0];
        if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        }
    }

    /// Approximate quantile from the bucket boundaries: the upper bound
    /// of the bucket holding the `q` quantile (the histogram's resolution
    /// limit; exact enough for p50/p99 reporting).
    pub fn histogram_quantile(&self, id: HistogramId, q: f64) -> u64 {
        let h = &self.histograms[id.0];
        if h.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in h.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return h.bounds.get(i).copied().unwrap_or(h.max);
            }
        }
        h.max
    }

    /// Zeroes every metric (measurement restart after warm-up).
    pub fn reset(&mut self) {
        for m in self.counters.iter_mut().chain(self.gauges.iter_mut()) {
            m.slots.iter_mut().for_each(|s| *s = 0);
        }
        for h in &mut self.histograms {
            h.counts.iter_mut().for_each(|c| *c = 0);
            h.count = 0;
            h.sum = 0;
            h.max = 0;
        }
    }

    /// One JSONL line per metric, in registration order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.counters {
            Self::metric_line(&mut out, "counter", m.name, &m.slots);
        }
        for m in &self.gauges {
            Self::metric_line(&mut out, "gauge", m.name, &m.slots);
        }
        for h in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_str(&mut out, h.name);
            out.push_str(&format!(",\"count\":{},\"sum\":{},\"max\":{}", h.count, h.sum, h.max));
            out.push_str(",\"bounds\":[");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}\n");
        }
        out
    }

    fn metric_line(out: &mut String, kind: &str, name: &str, slots: &[u64]) {
        out.push_str("{\"type\":\"");
        out.push_str(kind);
        out.push_str("\",\"name\":");
        push_json_str(out, name);
        if slots.len() == 1 {
            out.push_str(&format!(",\"value\":{}}}\n", slots[0]));
        } else {
            out.push_str(",\"per_mds\":[");
            for (i, s) in slots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
            out.push_str("]}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_slot() {
        let mut r = Registry::new();
        let c = r.counter("served", 3);
        r.inc(c, 0);
        r.inc(c, 2);
        r.add(c, 2, 5);
        assert_eq!(r.counter_value(c, 0), 1);
        assert_eq!(r.counter_value(c, 1), 0);
        assert_eq!(r.counter_value(c, 2), 6);
        assert_eq!(r.counter_total(c), 7);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        let g = r.gauge("cache_len", 2);
        r.set(g, 1, 40);
        r.set(g, 1, 7);
        assert_eq!(r.gauge_value(g, 1), 7);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut r = Registry::new();
        let h = r.histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            r.observe(h, v);
        }
        assert_eq!(r.histogram_count(h), 5);
        let line = r.to_jsonl();
        assert!(line.contains("\"counts\":[2,2,0,1]"), "{line}");
        assert_eq!(r.histogram_quantile(h, 0.5), 100);
        assert_eq!(r.histogram_quantile(h, 1.0), 5000, "overflow bucket reports max");
    }

    #[test]
    fn jsonl_is_stable_across_identical_sequences() {
        let build = || {
            let mut r = Registry::new();
            let c = r.counter("ops", 2);
            let g = r.gauge("depth", 1);
            let h = r.histogram("lat_us", LATENCY_BOUNDS_US);
            for i in 0..100u64 {
                r.inc(c, (i % 2) as usize);
                r.set(g, 0, i);
                r.observe(h, i * 37);
            }
            r.to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn scalar_counters_render_value_not_array() {
        let mut r = Registry::new();
        let c = r.counter("migrations", 1);
        r.add(c, 0, 9);
        assert!(r.to_jsonl().contains("\"value\":9"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut r = Registry::new();
        let c = r.counter("ops", 2);
        let h = r.histogram("lat", &[10]);
        r.inc(c, 0);
        r.observe(h, 3);
        r.reset();
        assert_eq!(r.counter_total(c), 0);
        assert_eq!(r.histogram_count(h), 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let mut r = Registry::new();
        let h = r.histogram("lat", &[10]);
        assert_eq!(r.histogram_quantile(h, 0.99), 0);
        assert_eq!(r.histogram_mean(h), 0.0);
    }
}

//! Periodic time-series snapshots.
//!
//! Every sampling tick the cluster captures one row per tracked field:
//! a sim-clock timestamp plus one `u64` per MDS (per-server load, cache
//! occupancy split prefix-vs-target, journal depth, delegation count…).
//! Rows are appended in time order and export in that order, so the
//! series is byte-reproducible. This is the data the balancer figures
//! (per-MDS throughput over time, Figures 5–7) can be rebuilt from
//! without re-running a simulation.

/// A named multi-column (one per MDS) time series set.
pub struct SnapshotSeries {
    fields: Vec<&'static str>,
    n_slots: usize,
    /// `(t_us, values)` with `values.len() == fields.len() * n_slots`,
    /// field-major: all of field 0's slots, then field 1's, …
    rows: Vec<(u64, Vec<u64>)>,
}

impl SnapshotSeries {
    /// A series over `fields`, each with `n_slots` per-MDS columns.
    pub fn new(fields: &[&'static str], n_slots: usize) -> Self {
        assert!(n_slots > 0, "need at least one slot");
        SnapshotSeries { fields: fields.to_vec(), n_slots, rows: Vec::new() }
    }

    /// Field names in export order.
    pub fn fields(&self) -> &[&'static str] {
        &self.fields
    }

    /// Appends one row. `values` must hold `fields × slots` entries,
    /// field-major.
    pub fn push_row(&mut self, t_us: u64, values: Vec<u64>) {
        assert_eq!(values.len(), self.fields.len() * self.n_slots, "row shape mismatch");
        self.rows.push((t_us, values));
    }

    /// Number of rows captured.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were captured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of `field` at row `row`, one entry per MDS.
    pub fn row_field(&self, row: usize, field: usize) -> &[u64] {
        let start = field * self.n_slots;
        &self.rows[row].1[start..start + self.n_slots]
    }

    /// Timestamp of row `row`.
    pub fn row_time_us(&self, row: usize) -> u64 {
        self.rows[row].0
    }

    /// Drops all rows (measurement restart).
    pub fn reset(&mut self) {
        self.rows.clear();
    }

    /// One JSON line per row:
    /// `{"t_us":N,"load":[…],"cache_prefix":[…],…}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, values) in &self.rows {
            out.push_str(&format!("{{\"t_us\":{t}"));
            for (f, name) in self.fields.iter().enumerate() {
                out.push_str(",\"");
                out.push_str(name);
                out.push_str("\":[");
                let start = f * self.n_slots;
                for (i, v) in values[start..start + self.n_slots].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&v.to_string());
                }
                out.push(']');
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_keep_shape_and_order() {
        let mut s = SnapshotSeries::new(&["load", "cache"], 2);
        s.push_row(1_000_000, vec![10, 20, 5, 6]);
        s.push_row(2_000_000, vec![11, 21, 7, 8]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row_field(0, 0), &[10, 20]);
        assert_eq!(s.row_field(1, 1), &[7, 8]);
        assert_eq!(s.row_time_us(1), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "row shape mismatch")]
    fn wrong_row_width_panics() {
        let mut s = SnapshotSeries::new(&["load"], 2);
        s.push_row(0, vec![1, 2, 3]);
    }

    #[test]
    fn jsonl_round_shape() {
        let mut s = SnapshotSeries::new(&["load", "journal"], 2);
        s.push_row(500, vec![1, 2, 3, 4]);
        assert_eq!(s.to_jsonl(), "{\"t_us\":500,\"load\":[1,2],\"journal\":[3,4]}\n");
    }

    #[test]
    fn reset_drops_rows() {
        let mut s = SnapshotSeries::new(&["x"], 1);
        s.push_row(1, vec![2]);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.to_jsonl(), "");
    }
}

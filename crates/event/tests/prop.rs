//! Property tests: the event queue behaves exactly like a reference
//! model (sorted stable multimap), and the engine never moves time
//! backwards.

use dynmds_event::{Engine, EventQueue, Handler, SimDuration, SimTime};
use proptest::prelude::*;

/// Reference model: (time, seq) ordered pairs.
fn reference_order(inserts: &[(u64, u32)]) -> Vec<u32> {
    let mut tagged: Vec<(u64, usize, u32)> =
        inserts.iter().enumerate().map(|(seq, &(t, v))| (t, seq, v)).collect();
    tagged.sort_by_key(|&(t, seq, _)| (t, seq));
    tagged.into_iter().map(|(_, _, v)| v).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_matches_reference_model(inserts in prop::collection::vec((0u64..1_000, any::<u32>()), 0..200)) {
        let mut q = EventQueue::new();
        for &(t, v) in &inserts {
            q.schedule(SimTime::from_micros(t), v);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.event);
        }
        prop_assert_eq!(popped, reference_order(&inserts));
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.scheduled_total(), inserts.len() as u64);
    }

    #[test]
    fn interleaved_pops_stay_ordered(
        batches in prop::collection::vec(prop::collection::vec(0u64..500, 1..10), 1..20),
    ) {
        // Schedule a batch, pop one, repeat. The queue's contract (same
        // as the engine enforces on handlers) is that nothing is ever
        // scheduled before the most recently dispatched time, so each
        // batch lands at or after the pop frontier; each pop then yields
        // the current minimum.
        let mut q = EventQueue::new();
        let mut frontier: u64 = 0;
        for batch in &batches {
            for &t in batch {
                q.schedule(SimTime::from_micros(frontier + t), t);
            }
            if let Some(ev) = q.pop() {
                // The popped event is <= everything still queued.
                if let Some(peek) = q.peek_time() {
                    prop_assert!(ev.at <= peek);
                }
                prop_assert!(ev.at.as_micros() >= frontier, "pop frontier went backwards");
                frontier = ev.at.as_micros();
            }
        }
    }

    #[test]
    fn engine_clock_is_monotone(events in prop::collection::vec((0u64..10_000, 0u64..100), 1..100)) {
        struct Recorder {
            times: Vec<u64>,
        }
        impl Handler<u64> for Recorder {
            fn handle(&mut self, now: SimTime, delay: u64, queue: &mut EventQueue<u64>) {
                self.times.push(now.as_micros());
                // Events may reschedule themselves forward.
                if delay > 0 && self.times.len() < 5_000 {
                    queue.schedule(now + SimDuration::from_micros(delay), 0);
                }
            }
        }
        let mut engine = Engine::new(Recorder { times: Vec::new() });
        for &(t, d) in &events {
            engine.queue_mut().schedule(SimTime::from_micros(t), d);
        }
        engine.run_to_quiescence();
        let times = &engine.handler().times;
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "clock went backwards");
        prop_assert!(times.len() >= events.len());
    }
}

//! Differential test: the timer-wheel [`EventQueue`] must be observably
//! identical to the reference binary-heap scheduler ([`HeapEventQueue`])
//! under random interleavings of schedule / pop / pop_due / cancel —
//! including same-timestamp bursts, zero-delay self-schedules at the pop
//! frontier, and deltas that cross every wheel level into the overflow
//! heap. This is the determinism contract the wheel must honor: same
//! inputs, same `(time, seq)` dispatch sequence, same bytes downstream.

use dynmds_event::{EventId, EventQueue, HeapEventQueue, SimDuration, SimRng, SimTime};

/// One live (not yet popped or cancelled) event, with the tickets both
/// queues issued for it. Ticket streams correspond 1:1 because both
/// queues assign sequence numbers in schedule-call order.
struct Live {
    payload: u64,
    wheel_id: EventId,
    heap_id: EventId,
}

fn random_delta(rng: &mut SimRng) -> u64 {
    // Pick a magnitude class first so every wheel level (and the
    // overflow heap) sees traffic: 0 = same-instant tie, then deltas
    // around 2^3, 2^9, 2^14, 2^21, 2^32 microseconds.
    match rng.below(6) {
        0 => 0,
        1 => 1 + rng.below(8),
        2 => rng.below(1 << 9),
        3 => rng.below(1 << 14),
        4 => rng.below(1 << 21),
        _ => rng.below(1 << 32),
    }
}

fn run_differential(seed: u64, hint_us: u64, ops: usize) {
    let mut wheel: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_micros(hint_us));
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = SimRng::seed_from_u64(seed);

    let mut live: Vec<Live> = Vec::new();
    let mut next_payload = 0u64;
    // Times already dispatched; schedules never go below this (the
    // engine's no-past rule).
    let mut frontier = SimTime::ZERO;

    let forget = |live: &mut Vec<Live>, payload: u64| {
        if let Some(i) = live.iter().position(|l| l.payload == payload) {
            live.swap_remove(i);
        }
    };

    for op in 0..ops {
        match rng.below(10) {
            // Schedule (most common, keeps population up).
            0..=4 => {
                let at = frontier + SimDuration::from_micros(random_delta(&mut rng));
                let payload = next_payload;
                next_payload += 1;
                let wheel_id = wheel.schedule(at, payload);
                let heap_id = heap.schedule(at, payload);
                live.push(Live { payload, wheel_id, heap_id });
            }
            // Burst of ties at one instant.
            5 => {
                let at = frontier + SimDuration::from_micros(random_delta(&mut rng));
                for _ in 0..rng.below(12) {
                    let payload = next_payload;
                    next_payload += 1;
                    let wheel_id = wheel.schedule(at, payload);
                    let heap_id = heap.schedule(at, payload);
                    live.push(Live { payload, wheel_id, heap_id });
                }
            }
            // Pop, then sometimes a zero-delay self-schedule at the
            // popped instant (what Reply->Issue chains do).
            6 | 7 => {
                let w = wheel.pop();
                let h = heap.pop();
                match (&w, &h) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.at, a.event), (b.at, b.event), "op {op} seed {seed}");
                    }
                    (None, None) => {}
                    _ => panic!("op {op} seed {seed}: one queue empty, the other not"),
                }
                if let Some(ev) = w {
                    frontier = ev.at;
                    forget(&mut live, ev.event);
                    if rng.chance(0.3) {
                        let payload = next_payload;
                        next_payload += 1;
                        let wheel_id = wheel.schedule(ev.at, payload);
                        let heap_id = heap.schedule(ev.at, payload);
                        live.push(Live { payload, wheel_id, heap_id });
                    }
                }
            }
            // Batch drain at the current earliest instant.
            8 => {
                if let Some(at) = wheel.peek_time() {
                    // Draining an instant makes it the dispatch point even
                    // if everything there was a cancelled tombstone.
                    frontier = at;
                    loop {
                        let w = wheel.pop_due(at);
                        let h = heap.pop_due(at);
                        assert_eq!(w, h, "pop_due mismatch at op {op} seed {seed}");
                        match w {
                            Some(p) => forget(&mut live, p),
                            None => break,
                        }
                    }
                }
            }
            // Cancel a random live event in both queues.
            _ => {
                if !live.is_empty() {
                    let i = rng.below(live.len() as u64) as usize;
                    let l = live.swap_remove(i);
                    assert!(wheel.cancel(l.wheel_id));
                    assert!(heap.cancel(l.heap_id));
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at op {op} seed {seed}");
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "peek_time diverged at op {op} seed {seed}"
        );
        assert_eq!(wheel.is_empty(), heap.is_empty());
    }

    // Drain both to exhaustion: the tails must match event for event.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        match (&w, &h) {
            (Some(a), Some(b)) => assert_eq!((a.at, a.event), (b.at, b.event), "seed {seed}"),
            (None, None) => break,
            _ => panic!("seed {seed}: drain length mismatch"),
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
    assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
}

#[test]
fn wheel_matches_heap_reference_across_seeds() {
    for seed in 0..30 {
        run_differential(seed, 40_000, 600);
    }
}

#[test]
fn wheel_matches_heap_with_tiny_wheel_geometry() {
    // A small level-0 page forces constant upper-level and overflow
    // traffic, stressing cascades and page turns.
    for seed in 100..120 {
        run_differential(seed, 1, 600);
    }
}

#[test]
fn wheel_matches_heap_under_tie_storms() {
    // Drive almost everything to a handful of instants.
    for seed in 0..10u64 {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut rng = SimRng::seed_from_u64(0xBEEF ^ seed);
        for payload in 0..400u64 {
            let at = SimTime::from_micros(rng.below(4) * 1_000);
            wheel.schedule(at, payload);
            heap.schedule(at, payload);
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            match (&w, &h) {
                (Some(a), Some(b)) => assert_eq!((a.at, a.event), (b.at, b.event)),
                (None, None) => break,
                _ => panic!("length mismatch"),
            }
        }
    }
}

//! Deterministic discrete-event simulation engine.
//!
//! The metadata-cluster simulator described in *Dynamic Metadata Management
//! for Petabyte-Scale File Systems* (Weil et al., SC 2004) is event driven:
//! client requests, inter-MDS messages, disk completions and load-balancer
//! heartbeats are all events ordered by virtual time. This crate provides
//! the engine those pieces run on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`Engine`] — a driver loop dispatching events to a [`Handler`],
//! * [`SimRng`] — a seeded random-number source with the distribution
//!   helpers the workload and namespace generators need.
//!
//! Everything is deterministic: two runs with the same seed and the same
//! event insertion order produce identical traces. Ties in time are broken
//! by insertion sequence number, never by heap internals.
//!
//! # Example
//!
//! ```
//! use dynmds_event::{Engine, EventQueue, Handler, SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: Vec<(SimTime, u32)>,
//! }
//!
//! impl Handler<u32> for Counter {
//!     fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
//!         self.fired.push((now, ev));
//!         if ev < 3 {
//!             queue.schedule(now + SimDuration::from_micros(10), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: Vec::new() });
//! engine.queue_mut().schedule(SimTime::ZERO, 1u32);
//! engine.run_until(SimTime::from_micros(1_000));
//! assert_eq!(engine.handler().fired.len(), 3);
//! ```

mod engine;
mod queue;
mod rng;
mod time;

pub use engine::{Engine, Handler, StepOutcome};
pub use queue::{EventId, EventQueue, HeapEventQueue, ScheduledEvent};
pub use rng::{SimRng, ZipfTable};
pub use time::{SimDuration, SimTime};

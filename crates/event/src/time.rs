//! Virtual time for the simulator.
//!
//! All simulation time is kept in integer microseconds so that event
//! ordering is exact and runs are reproducible across platforms (no
//! floating-point accumulation drift).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any event the simulator will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) seconds, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Intended for configuration values, not hot paths.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span expressed in (fractional) seconds, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales a duration by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales a duration by a float factor (e.g. a service-time multiplier).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0 && factor.is_finite(), "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division of the span, used to split costs across items.
    pub fn div_by(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Exact difference; panics in debug builds if `rhs` is later.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(1_000_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(7);
        t += SimDuration::from_micros(3);
        assert_eq!(t.as_micros(), 10);
    }

    #[test]
    fn subtraction_yields_duration() {
        let a = SimTime::from_micros(500);
        let b = SimTime::from_micros(200);
        assert_eq!(a - b, SimDuration::from_micros(300));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(300);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(200));
    }

    #[test]
    fn time_addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_micros(10);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.saturating_mul(3), SimDuration::from_micros(300));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d.div_by(4), SimDuration::from_micros(25));
        assert_eq!(d.div_by(0), SimDuration::from_micros(100), "div by zero clamps to 1");
        assert_eq!(d - SimDuration::from_micros(150), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015), SimDuration::from_micros(2));
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_micros(1_500_000));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::from_micros(7).max(SimTime::from_micros(9)).as_micros(), 9);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "0.001500s");
    }
}

//! Simulation driver loop.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Receives events from the [`Engine`] and may schedule more.
pub trait Handler<E> {
    /// Handles one event at virtual time `now`. Any follow-up events must be
    /// scheduled at `now` or later via `queue`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// Result of a single [`Engine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was dispatched at the contained time.
    Dispatched(SimTime),
    /// The queue was empty; nothing happened.
    Idle,
}

/// Drives a [`Handler`] over an [`EventQueue`] until a time horizon or
/// quiescence. The engine owns both; the clock only moves forward.
pub struct Engine<E, H: Handler<E>> {
    queue: EventQueue<E>,
    handler: H,
    now: SimTime,
    dispatched: u64,
}

impl<E, H: Handler<E>> Engine<E, H> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new(handler: H) -> Self {
        Self::with_queue(handler, EventQueue::new())
    }

    /// Creates an engine at time zero over a caller-configured queue,
    /// e.g. one sized via [`EventQueue::with_delta_hint`].
    pub fn with_queue(handler: H, queue: EventQueue<E>) -> Self {
        Engine { queue, handler, now: SimTime::ZERO, dispatched: 0 }
    }

    /// Current virtual time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Access to the pending-event queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the handler (simulation state).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the handler (simulation state).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Consumes the engine, returning the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Dispatches the single earliest event, if any.
    pub fn step(&mut self) -> StepOutcome {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event scheduled in the past");
                self.now = self.now.max(ev.at);
                self.dispatched += 1;
                self.handler.handle(self.now, ev.event, &mut self.queue);
                StepOutcome::Dispatched(self.now)
            }
            None => StepOutcome::Idle,
        }
    }

    /// Runs until the queue drains or the next event would fire **after**
    /// `horizon`. Events at exactly `horizon` are dispatched. Returns the
    /// number of events dispatched by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            n += self.drain_batch(at);
        }
        // The clock advances to the horizon even if the tail was quiet, so
        // rate computations (ops per second over a window) stay well defined.
        self.now = self.now.max(horizon);
        n
    }

    /// Runs until the queue is completely drained. Returns the number of
    /// events dispatched by this call. Callers are responsible for ensuring
    /// the event population terminates.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            n += self.drain_batch(at);
        }
        n
    }

    /// Dispatches every event due exactly at `at` (including zero-delay
    /// follow-ups scheduled by the handler mid-batch) without re-entering
    /// the queue's ordering machinery per event.
    fn drain_batch(&mut self, at: SimTime) -> u64 {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.now = self.now.max(at);
        let mut n = 0;
        while let Some(ev) = self.queue.pop_due(at) {
            self.dispatched += 1;
            n += 1;
            self.handler.handle(self.now, ev, &mut self.queue);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Doubles every received integer back into the queue until a cap.
    struct Doubler {
        seen: Vec<(u64, u32)>,
    }

    impl Handler<u32> for Doubler {
        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now.as_micros(), ev));
            if ev < 8 {
                queue.schedule(now + SimDuration::from_micros(5), ev * 2);
            }
        }
    }

    #[test]
    fn cascading_events_advance_the_clock() {
        let mut eng = Engine::new(Doubler { seen: Vec::new() });
        eng.queue_mut().schedule(SimTime::ZERO, 1);
        let n = eng.run_to_quiescence();
        assert_eq!(n, 4); // 1, 2, 4, 8
        assert_eq!(eng.handler().seen, vec![(0, 1), (5, 2), (10, 4), (15, 8)]);
        assert_eq!(eng.now(), SimTime::from_micros(15));
        assert_eq!(eng.dispatched(), 4);
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut eng = Engine::new(Doubler { seen: Vec::new() });
        eng.queue_mut().schedule(SimTime::ZERO, 1);
        let n = eng.run_until(SimTime::from_micros(10));
        assert_eq!(n, 3, "events at t=0,5,10 fire; t=15 does not");
        assert_eq!(eng.queue_mut().len(), 1, "the t=15 event remains queued");
        assert_eq!(eng.now(), SimTime::from_micros(10));
    }

    #[test]
    fn run_until_advances_clock_past_quiet_tail() {
        let mut eng = Engine::new(Doubler { seen: Vec::new() });
        eng.run_until(SimTime::from_secs(3));
        assert_eq!(eng.now(), SimTime::from_secs(3));
    }

    #[test]
    fn step_on_empty_queue_is_idle() {
        let mut eng = Engine::new(Doubler { seen: Vec::new() });
        assert_eq!(eng.step(), StepOutcome::Idle);
        assert_eq!(eng.now(), SimTime::ZERO);
    }

    #[test]
    fn into_handler_returns_state() {
        let mut eng = Engine::new(Doubler { seen: Vec::new() });
        eng.queue_mut().schedule(SimTime::ZERO, 8);
        eng.run_to_quiescence();
        let h = eng.into_handler();
        assert_eq!(h.seen.len(), 1);
    }

    #[test]
    fn same_time_events_dispatch_in_schedule_order() {
        struct Recorder(Vec<u32>);
        impl Handler<u32> for Recorder {
            fn handle(&mut self, _now: SimTime, ev: u32, _q: &mut EventQueue<u32>) {
                self.0.push(ev);
            }
        }
        let mut eng = Engine::new(Recorder(Vec::new()));
        for i in 0..10 {
            eng.queue_mut().schedule(SimTime::from_micros(100), i);
        }
        eng.run_to_quiescence();
        assert_eq!(eng.handler().0, (0..10).collect::<Vec<_>>());
    }
}

//! Stable timestamped event queue: a hierarchical timer wheel.
//!
//! Events are dispatched in `(time, insertion-seq)` order. The sequence
//! number is a monotonically increasing insertion counter, so events
//! scheduled for the same instant fire in insertion order; this stability
//! is what makes whole-simulation runs reproducible, and the wheel
//! preserves it bit-for-bit relative to the original binary-heap
//! scheduler (kept below as [`HeapEventQueue`] for differential tests and
//! benchmarks).
//!
//! # Geometry
//!
//! Three wheel levels cover a near-future *span page* of `2^(b0 + 16)`
//! microseconds around the dispatch cursor, where `b0` is the level-0
//! size exponent (default 10, tunable via
//! [`EventQueue::with_delta_hint`]):
//!
//! * level 0 — `2^b0` slots of exactly 1 µs each; a slot is a FIFO of
//!   same-timestamp events, so dispatch within a slot *is* seq order;
//! * levels 1 and 2 — 256 slots each, `2^b0` µs and `2^(b0+8)` µs wide
//!   (≈67 virtual seconds of total span at the default geometry);
//! * an overflow binary heap for events beyond the current span page.
//!
//! Placement is by `diff = at ^ cursor`: the highest differing bit picks
//! the level. Slots cascade lazily — an upper-level slot is exploded into
//! finer slots only when the cursor first reaches it, and the overflow
//! heap is consulted only on a span-page turn. In the simulator's
//! steady state (inter-event deltas far smaller than the span) schedule
//! and pop are O(1) amortized, and bucket storage is recycled (`Vec` /
//! `VecDeque` capacities survive cascades), so the schedule→dispatch
//! cycle allocates nothing once warm.
//!
//! # Determinism argument
//!
//! The wheel only ever holds events inside the cursor's span page, and
//! every pending event is `>= cursor` (the engine never schedules in the
//! past). Consequences, each load-bearing for order stability:
//!
//! 1. an upper-level slot is cascaded exactly once, at the moment the
//!    cursor first enters the region it covers, *before* any same-region
//!    event can be placed directly — so bucket append order is seq order;
//! 2. on a span-page turn the wheel is empty and overflow events migrate
//!    in ascending `(time, seq)` heap order — again append order = seq
//!    order;
//! 3. a level-0 slot holds exactly one timestamp, so FIFO pop order is
//!    `(time, seq)` order.
//!
//! Cancellation ([`EventQueue::cancel`]) is a lazy tombstone: the entry
//! stays in its slot and is reaped when popped. [`EventQueue::peek_time`]
//! may therefore report the time of a cancelled-but-unreaped entry;
//! callers that must not observe tombstones (the sharded engine's
//! idle-window skip) use [`EventQueue::next_event_time`] instead.
//! [`HeapEventQueue`] mirrors exactly the same lazy semantics so the two
//! implementations stay observably identical.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use crate::time::{SimDuration, SimTime};

/// An event plus its dispatch time, as returned by [`EventQueue::pop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The payload.
    pub event: E,
}

/// Ticket identifying one scheduled event, for [`EventQueue::cancel`].
/// Sequence numbers are never reused within a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Min-order wrapper: `BinaryHeap` is a max-heap, so reverse `(at, seq)`.
struct FarEntry<E>(Entry<E>);

impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.at.cmp(&self.0.at).then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for FarEntry<E> {}

/// Slots per upper wheel level.
const LEVEL_BITS: u32 = 8;
const LEVEL_SLOTS: usize = 1 << LEVEL_BITS;
const OCC_WORDS: usize = LEVEL_SLOTS / 64;
const DEFAULT_L0_BITS: u32 = 10;

/// Priority queue of future events, ordered by time then insertion order.
pub struct EventQueue<E> {
    /// Level-0 size exponent: `2^l0_bits` one-microsecond slots.
    l0_bits: u32,
    l0_mask: u64,
    /// Width exponent of the whole wheel span page (`l0_bits + 16`).
    span_bits: u32,
    l0: Box<[VecDeque<Entry<E>>]>,
    l1: Box<[Vec<Entry<E>>]>,
    l2: Box<[Vec<Entry<E>>]>,
    occ0: Box<[u64]>,
    /// Summary of `occ0`: bit `w` is set iff `occ0[w] != 0`, so scanning
    /// a mostly-empty level 0 costs one find-first-set instead of a walk
    /// over all `2^b0 / 64` words (the sparse-schedule fast path).
    sum0: u64,
    occ1: [u64; OCC_WORDS],
    occ2: [u64; OCC_WORDS],
    /// Occupied-slot counts per level, so pops skip the bitmap scan of a
    /// level with nothing in it (the common case for sparse schedules).
    live0: u32,
    live1: u32,
    live2: u32,
    /// Memoized earliest timestamp per upper-level bucket (valid while
    /// the occupancy bit is set), so `advance_next` never rescans bucket
    /// contents.
    min1: Box<[u64]>,
    min2: Box<[u64]>,
    overflow: BinaryHeap<FarEntry<E>>,
    /// Wheel position: the dispatch time of the most recently removed
    /// entry (live or reaped tombstone). All pending events are at
    /// `cursor` or later.
    cursor: u64,
    /// Caller-visible dispatch point: the last time returned by `pop` or
    /// drained via `pop_due`. `cursor` can run ahead of this while
    /// reaping tombstones; when the wheel empties it rewinds here so the
    /// schedule floor never exceeds what the caller has observed.
    floor: u64,
    /// Memoized earliest pending timestamp (tombstones included).
    next_at: Option<u64>,
    next_seq: u64,
    pending: usize,
    scheduled_total: u64,
    /// Seqs cancelled but not yet physically reaped from their slot.
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default level-0 wheel size.
    pub fn new() -> Self {
        Self::with_bits(DEFAULT_L0_BITS)
    }

    /// Creates an empty queue. Slot storage grows on demand and is
    /// recycled thereafter; the capacity hint is accepted for API
    /// compatibility with the heap-based scheduler.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }

    /// Creates a queue whose level-0 wheel is sized for workloads whose
    /// typical inter-event delta is `hint` — roughly four deltas fit in
    /// the exact-time page; beyond that the upper levels and overflow
    /// heap take over.
    pub fn with_delta_hint(hint: SimDuration) -> Self {
        // The exponent is clamped to [8, 10]; pre-clamping the hint keeps
        // `next_power_of_two` far from overflow for absurd inputs.
        let us = hint.as_micros().clamp(1, 1 << 20);
        let bits = (us * 4).next_power_of_two().trailing_zeros().clamp(8, 10);
        Self::with_bits(bits)
    }

    fn with_bits(l0_bits: u32) -> Self {
        let slots0 = 1usize << l0_bits;
        EventQueue {
            l0_bits,
            l0_mask: (1u64 << l0_bits) - 1,
            span_bits: l0_bits + 2 * LEVEL_BITS,
            l0: (0..slots0).map(|_| VecDeque::new()).collect(),
            l1: (0..LEVEL_SLOTS).map(|_| Vec::new()).collect(),
            l2: (0..LEVEL_SLOTS).map(|_| Vec::new()).collect(),
            occ0: vec![0u64; slots0 / 64].into_boxed_slice(),
            sum0: 0,
            occ1: [0; OCC_WORDS],
            occ2: [0; OCC_WORDS],
            live0: 0,
            live1: 0,
            live2: 0,
            min1: vec![0u64; LEVEL_SLOTS].into_boxed_slice(),
            min2: vec![0u64; LEVEL_SLOTS].into_boxed_slice(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            floor: 0,
            next_at: None,
            next_seq: 0,
            pending: 0,
            scheduled_total: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Schedules `event` to fire at `at`. Returns a ticket usable with
    /// [`cancel`](Self::cancel).
    ///
    /// `at` must not precede the queue's dispatch point — the last time
    /// returned by [`pop`](Self::pop) or drained via
    /// [`pop_due`](Self::pop_due) — the same no-scheduling-into-the-past
    /// rule the [`Engine`](crate::Engine) imposes on handlers. Debug
    /// builds assert; release builds clamp.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending += 1;
        debug_assert!(
            at.as_micros() >= self.cursor,
            "event scheduled before an already-dispatched time"
        );
        // Release builds clamp a stale timestamp to the cursor rather
        // than corrupt the wheel invariants.
        let at = at.as_micros().max(self.cursor);
        if self.next_at.is_none_or(|n| at < n) {
            self.next_at = Some(at);
        }
        self.place(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancels a pending event, O(1) via a lazy tombstone. Returns
    /// whether the ticket was newly cancelled. The ticket must refer to
    /// an event that has not fired; cancelling an already-dispatched
    /// ticket is a logic error (debug builds assert).
    pub fn cancel(&mut self, id: EventId) -> bool {
        debug_assert!(id.0 < self.next_seq, "cancel of a never-issued ticket");
        if id.0 < self.next_seq && self.cancelled.insert(id.0) {
            debug_assert!(self.pending > 0, "cancel of an already-fired ticket");
            self.pending = self.pending.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        loop {
            let Some(t) = self.next_at else {
                // Tombstone reaping may have advanced the wheel past the
                // last time the caller saw; the wheel is physically empty
                // now, so rewind to keep the schedule floor observable.
                self.cursor = self.floor;
                return None;
            };
            if let Some(e) = self.take_front(t) {
                self.floor = e.at;
                return Some(ScheduledEvent { at: SimTime::from_micros(e.at), event: e.event });
            }
        }
    }

    /// Removes the next event only if it fires exactly at `now` — the
    /// engine's same-timestamp batch drain. O(1) while the current slot
    /// still has entries.
    pub fn pop_due(&mut self, now: SimTime) -> Option<E> {
        let t = now.as_micros();
        loop {
            if self.next_at != Some(t) {
                return None;
            }
            // The caller named this instant, so it becomes the dispatch
            // point even if every entry here turns out to be a tombstone.
            self.floor = t;
            if let Some(e) = self.take_front(t) {
                return Some(e.event);
            }
        }
    }

    /// The dispatch time of the earliest pending entry, if any. May
    /// report a cancelled-but-unreaped entry's time (see module docs).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_at.map(SimTime::from_micros)
    }

    /// The dispatch time of the earliest *live* pending event — unlike
    /// [`peek_time`](Self::peek_time) this never reports a
    /// cancelled-but-unreaped entry's time, so a caller skipping idle
    /// spans can't under-skip into a window holding only tombstones.
    ///
    /// Read-only: the wheel position (and so the scheduling floor) is
    /// untouched, making this safe to call between dispatches even if
    /// the caller still intends to schedule near the floor. O(1) with
    /// no tombstones outstanding (the simulation hot path); otherwise
    /// it scans the pending entries.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.cancelled.is_empty() {
            return self.next_at.map(SimTime::from_micros);
        }
        let mut best: Option<u64> = None;
        let mut consider = |e: &Entry<E>| {
            if !self.cancelled.contains(&e.seq) && best.is_none_or(|b| e.at < b) {
                best = Some(e.at);
            }
        };
        for (w, &word) in self.occ0.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let s = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.l0[s].iter().for_each(&mut consider);
            }
        }
        for bucket in self.l1.iter().chain(self.l2.iter()) {
            bucket.iter().for_each(&mut consider);
        }
        for far in &self.overflow {
            consider(&far.0);
        }
        best.map(SimTime::from_micros)
    }

    /// Number of pending (scheduled, not fired, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Number of far-future events currently parked in the overflow heap
    /// (diagnostic; exercised by the horizon-boundary tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Buckets an entry by the highest bit in which its time differs
    /// from the cursor. Shared by schedule, cascade and overflow
    /// migration so append order always follows call order.
    fn place(&mut self, e: Entry<E>) {
        let diff = e.at ^ self.cursor;
        if diff >> self.l0_bits == 0 {
            let s = (e.at & self.l0_mask) as usize;
            let (w, m) = (s >> 6, 1u64 << (s & 63));
            if self.occ0[w] & m == 0 {
                self.occ0[w] |= m;
                self.sum0 |= 1u64 << w;
                self.live0 += 1;
            }
            self.l0[s].push_back(e);
        } else if diff >> (self.l0_bits + LEVEL_BITS) == 0 {
            let s = (e.at >> self.l0_bits) as usize & (LEVEL_SLOTS - 1);
            let (w, m) = (s >> 6, 1u64 << (s & 63));
            if self.occ1[w] & m == 0 {
                self.occ1[w] |= m;
                self.live1 += 1;
                self.min1[s] = e.at;
            } else if e.at < self.min1[s] {
                self.min1[s] = e.at;
            }
            self.l1[s].push(e);
        } else if diff >> self.span_bits == 0 {
            let s = (e.at >> (self.l0_bits + LEVEL_BITS)) as usize & (LEVEL_SLOTS - 1);
            let (w, m) = (s >> 6, 1u64 << (s & 63));
            if self.occ2[w] & m == 0 {
                self.occ2[w] |= m;
                self.live2 += 1;
                self.min2[s] = e.at;
            } else if e.at < self.min2[s] {
                self.min2[s] = e.at;
            }
            self.l2[s].push(e);
        } else {
            self.overflow.push(FarEntry(e));
        }
    }

    /// Moves the cursor to `t` (the next dispatch time): on a span-page
    /// turn, migrates newly-near overflow events in; then cascades the
    /// upper-level slots covering `t` down to exact level-0 slots.
    fn settle_to(&mut self, t: u64) {
        if (t ^ self.cursor) >> self.span_bits != 0 {
            // Page turn: t is the minimum pending time and lies outside
            // the old page, so every wheel slot is empty and the cursor
            // can jump. Heap pops arrive in (time, seq) order and
            // `place` appends, so bucket order stays seq order.
            debug_assert!(self.wheel_slots_empty(), "page turn with occupied wheel slots");
            self.cursor = t;
            while let Some(top) = self.overflow.peek() {
                if (top.0.at ^ t) >> self.span_bits != 0 {
                    break;
                }
                let FarEntry(e) = self.overflow.pop().expect("peeked");
                self.place(e);
            }
        } else {
            self.cursor = t;
        }
        let shift1 = self.l0_bits + LEVEL_BITS;
        let s2 = (t >> shift1) as usize & (LEVEL_SLOTS - 1);
        if self.occ2[s2 >> 6] & (1 << (s2 & 63)) != 0 {
            self.occ2[s2 >> 6] &= !(1 << (s2 & 63));
            self.live2 -= 1;
            let mut bucket = std::mem::take(&mut self.l2[s2]);
            for e in bucket.drain(..) {
                debug_assert_eq!(e.at >> shift1, t >> shift1, "stale entry in cascaded slot");
                self.place(e);
            }
            // Hand the emptied Vec back so its capacity is recycled.
            self.l2[s2] = bucket;
        }
        let s1 = (t >> self.l0_bits) as usize & (LEVEL_SLOTS - 1);
        if self.occ1[s1 >> 6] & (1 << (s1 & 63)) != 0 {
            self.occ1[s1 >> 6] &= !(1 << (s1 & 63));
            self.live1 -= 1;
            let mut bucket = std::mem::take(&mut self.l1[s1]);
            for e in bucket.drain(..) {
                debug_assert_eq!(e.at >> self.l0_bits, t >> self.l0_bits, "stale entry");
                self.place(e);
            }
            self.l1[s1] = bucket;
        }
    }

    fn wheel_slots_empty(&self) -> bool {
        self.occ0.iter().all(|&w| w == 0)
            && self.occ1.iter().all(|&w| w == 0)
            && self.occ2.iter().all(|&w| w == 0)
    }

    /// Removes the physically-first `(time, seq)` entry; requires
    /// `next_at == Some(t)`. Returns `None` when that entry was a reaped
    /// tombstone (callers loop).
    fn take_front(&mut self, t: u64) -> Option<Entry<E>> {
        let e = if t == self.cursor {
            self.take_level0(t)
        } else if let Some(e) = self.take_sparse(t) {
            e
        } else {
            self.settle_to(t);
            self.take_level0(t)
        };
        if !self.cancelled.is_empty() && self.cancelled.remove(&e.seq) {
            return None;
        }
        self.pending -= 1;
        Some(e)
    }

    /// Pops the front of the level-0 slot holding `t` (the slow-path tail
    /// of [`take_front`], after any needed cascade).
    fn take_level0(&mut self, t: u64) -> Entry<E> {
        let s = (t & self.l0_mask) as usize;
        let e = self.l0[s].pop_front().expect("next_at points at an occupied slot");
        debug_assert_eq!(e.at, t);
        if self.l0[s].is_empty() {
            let w = s >> 6;
            self.occ0[w] &= !(1 << (s & 63));
            if self.occ0[w] == 0 {
                self.sum0 &= !(1u64 << w);
            }
            self.live0 -= 1;
            self.advance_next();
        }
        e
    }

    /// Sparse fast path: when level 0 is empty and the event at `t` is
    /// the sole occupant of its upper-level bucket — with the other upper
    /// level's covering bucket empty, so nothing else needs cascading —
    /// pop it straight out of the bucket. This skips the settle/cascade
    /// round trip (bucket drain, level-0 occupancy churn, re-scan) that
    /// otherwise costs every pop on schedules whose inter-event gaps
    /// exceed the level-0 page. Correctness: `live0 == 0` rules out
    /// level-0 entries, same-page rules out overflow entries at `t`, and
    /// the bucket indexes are functions of `t` alone, so the popped entry
    /// is the unique earliest; leaving the *other* covering bucket
    /// untouched is required because `advance_next` scans strictly past
    /// the cursor's own slot at every level.
    fn take_sparse(&mut self, t: u64) -> Option<Entry<E>> {
        if self.live0 != 0 || (t ^ self.cursor) >> self.span_bits != 0 {
            return None;
        }
        let s1 = (t >> self.l0_bits) as usize & (LEVEL_SLOTS - 1);
        let s2 = (t >> (self.l0_bits + LEVEL_BITS)) as usize & (LEVEL_SLOTS - 1);
        let (w1, m1) = (s1 >> 6, 1u64 << (s1 & 63));
        let (w2, m2) = (s2 >> 6, 1u64 << (s2 & 63));
        let in1 = self.occ1[w1] & m1 != 0;
        let in2 = self.occ2[w2] & m2 != 0;
        let e = if in1 && !in2 && self.min1[s1] == t && self.l1[s1].len() == 1 {
            self.occ1[w1] &= !m1;
            self.live1 -= 1;
            self.l1[s1].pop().expect("occupied level-1 bucket")
        } else if in2 && !in1 && self.min2[s2] == t && self.l2[s2].len() == 1 {
            self.occ2[w2] &= !m2;
            self.live2 -= 1;
            self.l2[s2].pop().expect("occupied level-2 bucket")
        } else {
            return None;
        };
        debug_assert_eq!(e.at, t);
        self.cursor = t;
        self.advance_next();
        Some(e)
    }

    /// Recomputes `next_at` after the cursor's level-0 slot drained: the
    /// earliest remaining time, scanning occupancy bitmaps outward from
    /// the cursor. Slots behind the cursor at each level are provably
    /// empty (pending times never precede the cursor).
    fn advance_next(&mut self) {
        let t = self.cursor;
        if self.live0 > 0 {
            let s0 = (t & self.l0_mask) as usize;
            if let Some(s) = self.scan_occ0(s0 + 1) {
                self.next_at = Some((t & !self.l0_mask) | s as u64);
                return;
            }
            debug_assert!(false, "live0 > 0 but no occupied slot ahead of the cursor");
        }
        if self.live1 > 0 {
            let s1 = (t >> self.l0_bits) as usize & (LEVEL_SLOTS - 1);
            if let Some(s) = scan_from(&self.occ1, s1 + 1) {
                self.next_at = Some(self.min1[s]);
                return;
            }
            debug_assert!(false, "live1 > 0 but no occupied slot ahead of the cursor");
        }
        if self.live2 > 0 {
            let s2 = (t >> (self.l0_bits + LEVEL_BITS)) as usize & (LEVEL_SLOTS - 1);
            if let Some(s) = scan_from(&self.occ2, s2 + 1) {
                self.next_at = Some(self.min2[s]);
                return;
            }
            debug_assert!(false, "live2 > 0 but no occupied slot ahead of the cursor");
        }
        self.next_at = self.overflow.peek().map(|f| f.0.at);
    }

    /// First occupied level-0 slot at or after `from`, using the summary
    /// word to jump over empty bitmap words (level 0 has at most
    /// `2^10 / 64 = 16` words, so the summary always fits in one `u64`).
    fn scan_occ0(&self, from: usize) -> Option<usize> {
        let w0 = from >> 6;
        if w0 >= self.occ0.len() {
            return None;
        }
        let first = self.occ0[w0] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((w0 << 6) | first.trailing_zeros() as usize);
        }
        let rest = self.sum0 & !((1u64 << (w0 + 1)) - 1);
        if rest == 0 {
            return None;
        }
        let w = rest.trailing_zeros() as usize;
        Some((w << 6) | self.occ0[w].trailing_zeros() as usize)
    }
}

/// Index of the first set bit at or after `from`, if any.
fn scan_from(words: &[u64], from: usize) -> Option<usize> {
    let mut w = from >> 6;
    if w >= words.len() {
        return None;
    }
    let mut word = words[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return Some((w << 6) | word.trailing_zeros() as usize);
        }
        w += 1;
        if w == words.len() {
            return None;
        }
        word = words[w];
    }
}

/// The original binary-heap scheduler, kept as the reference
/// implementation for differential tests and the baseline side of the
/// `crates/bench` scheduler microbenchmark. Observable behavior
/// (including lazy-cancel semantics of `peek_time`) matches
/// [`EventQueue`] exactly.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<FarEntry<E>>,
    next_seq: u64,
    pending: usize,
    scheduled_total: u64,
    cancelled: HashSet<u64>,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: 0,
            scheduled_total: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue { heap: BinaryHeap::with_capacity(cap), ..Self::new() }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending += 1;
        self.heap.push(FarEntry(Entry { at: at.as_micros(), seq, event }));
        EventId(seq)
    }

    /// Cancels a pending event via a lazy tombstone; same contract as
    /// [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        debug_assert!(id.0 < self.next_seq, "cancel of a never-issued ticket");
        if id.0 < self.next_seq && self.cancelled.insert(id.0) {
            debug_assert!(self.pending > 0, "cancel of an already-fired ticket");
            self.pending = self.pending.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        loop {
            let FarEntry(e) = self.heap.pop()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&e.seq) {
                continue;
            }
            self.pending -= 1;
            return Some(ScheduledEvent { at: SimTime::from_micros(e.at), event: e.event });
        }
    }

    /// Removes the next event only if it fires exactly at `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<E> {
        let t = now.as_micros();
        loop {
            if self.heap.peek().map(|f| f.0.at) != Some(t) {
                return None;
            }
            let FarEntry(e) = self.heap.pop().expect("peeked");
            if !self.cancelled.is_empty() && self.cancelled.remove(&e.seq) {
                continue;
            }
            self.pending -= 1;
            return Some(e.event);
        }
    }

    /// The dispatch time of the earliest pending entry, if any
    /// (tombstones included, as for [`EventQueue::peek_time`]).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|f| SimTime::from_micros(f.0.at))
    }

    /// The dispatch time of the earliest *live* pending event; same
    /// contract as [`EventQueue::next_event_time`].
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.cancelled.is_empty() {
            return self.heap.peek().map(|f| SimTime::from_micros(f.0.at));
        }
        self.heap
            .iter()
            .filter(|f| !self.cancelled.contains(&f.0.seq))
            .map(|f| f.0.at)
            .min()
            .map(SimTime::from_micros)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(10), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule(t(10), 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(42), ());
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
    }

    #[test]
    fn len_and_totals_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2, "total counts scheduled, not pending");
    }

    #[test]
    fn scheduled_event_carries_time() {
        let mut q = EventQueue::new();
        q.schedule(t(99), "x");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, t(99));
        assert_eq!(ev.event, "x");
    }

    // --- wheel-specific edge cases -------------------------------------

    /// Span page width for the default geometry (b0 = 10): 2^26 µs.
    const SPAN: u64 = 1 << 26;

    #[test]
    fn far_future_events_park_in_overflow_and_migrate_back() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "near");
        q.schedule(t(5 * SPAN + 17), "far");
        q.schedule(t(2 * SPAN + 9), "mid");
        assert_eq!(q.overflow_len(), 2, "both beyond the cursor's span page");
        assert_eq!(q.pop().unwrap(), ScheduledEvent { at: t(3), event: "near" });
        // Popping "mid" turns the page; only "far" stays parked.
        assert_eq!(q.pop().unwrap(), ScheduledEvent { at: t(2 * SPAN + 9), event: "mid" });
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop().unwrap(), ScheduledEvent { at: t(5 * SPAN + 17), event: "far" });
        assert_eq!(q.overflow_len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_migration_preserves_seq_order_for_ties() {
        let mut q = EventQueue::new();
        let far = 7 * SPAN + 123;
        for i in 0..50 {
            q.schedule(t(far), i);
        }
        q.schedule(t(1), -1);
        assert_eq!(q.overflow_len(), 50);
        assert_eq!(q.pop().unwrap().event, -1);
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().event, i, "ties migrated out of the heap stay stable");
        }
    }

    #[test]
    fn events_straddling_the_page_boundary_stay_ordered() {
        let mut q = EventQueue::new();
        // Just inside and just outside the first span page, interleaved.
        let times = [SPAN - 1, SPAN, SPAN + 1, 1, 0, 2 * SPAN - 1, 2 * SPAN];
        for (i, &us) in times.iter().enumerate() {
            q.schedule(t(us), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_micros())).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn sim_time_max_is_schedulable() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "end-of-time");
        q.schedule(t(1), "soon");
        assert_eq!(q.pop().unwrap().event, "soon");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, SimTime::MAX);
        assert_eq!(ev.event, "end-of-time");
        assert!(q.pop().is_none(), "drained wheel at the top of the time range");
        assert!(q.is_empty());
    }

    #[test]
    fn drained_wheel_fast_path() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        q.schedule(t(400_000), 1); // lands in an upper level from cursor 0
        assert_eq!(q.peek_time(), Some(t(400_000)));
        assert_eq!(q.pop().unwrap().event, 1);
        // Fully drained again: peek/pop hit the memoized-None path.
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn zero_delay_self_schedule_keeps_seq_order() {
        // Schedule at exactly the time being dispatched; the new event
        // must fire in the same batch, after previously queued ties.
        let mut q = EventQueue::new();
        q.schedule(t(10), 0);
        q.schedule(t(10), 1);
        let first = q.pop().unwrap();
        assert_eq!(first.event, 0);
        q.schedule(first.at, 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_due_drains_only_the_given_instant() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(5), "b");
        q.schedule(t(6), "c");
        assert_eq!(q.pop_due(t(4)), None);
        assert_eq!(q.pop_due(t(5)), Some("a"));
        assert_eq!(q.pop_due(t(5)), Some("b"));
        assert_eq!(q.pop_due(t(5)), None, "t=6 event must not fire at t=5");
        assert_eq!(q.pop_due(t(6)), Some("c"));
        assert_eq!(q.pop_due(t(6)), None);
    }

    #[test]
    fn cancel_reaps_lazily_and_updates_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(5), "a");
        let b = q.schedule(t(6), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        // The tombstone still occupies the slot until reaped.
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
        let _ = b;
    }

    #[test]
    fn next_event_time_skips_head_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(5), "a");
        q.schedule(t(900), "b");
        assert_eq!(q.next_event_time(), Some(t(5)));
        assert!(q.cancel(a));
        // peek_time still reports the unreaped tombstone; the skip-aware
        // probe must see through it to the first live event.
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.next_event_time(), Some(t(900)));
        // The probe is read-only: the tombstone is still there to reap
        // and scheduling before it (but at/after the floor) stays legal.
        q.schedule(t(3), "c");
        assert_eq!(q.next_event_time(), Some(t(3)));
        assert_eq!(q.pop().unwrap().event, "c");
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn next_event_time_sees_through_tombstones_on_every_level() {
        let mut q = EventQueue::new();
        let near = q.schedule(t(2), 0);
        let mid = q.schedule(t(500_000), 1);
        let far = q.schedule(t(3 * SPAN), 2);
        assert!(q.cancel(near));
        assert_eq!(q.next_event_time(), Some(t(500_000)), "level-1 live entry");
        assert!(q.cancel(mid));
        assert_eq!(q.next_event_time(), Some(t(3 * SPAN)), "overflow live entry");
        assert!(q.cancel(far));
        assert_eq!(q.next_event_time(), None, "all tombstones: no live event");
        assert!(q.peek_time().is_some(), "while the unreaped heads remain visible to peek_time");
        assert!(q.pop().is_none());

        let mut h = HeapEventQueue::new();
        let x = h.schedule(t(7), "x");
        h.schedule(t(40), "y");
        assert!(h.cancel(x));
        assert_eq!(h.peek_time(), Some(t(7)));
        assert_eq!(h.next_event_time(), Some(t(40)));
    }

    #[test]
    fn cancel_across_levels_and_overflow() {
        let mut q = EventQueue::new();
        let near = q.schedule(t(2), 0);
        let mid = q.schedule(t(500_000), 1);
        let far = q.schedule(t(3 * SPAN), 2);
        let keep = q.schedule(t(700_000), 3);
        assert!(q.cancel(near));
        assert!(q.cancel(mid));
        assert!(q.cancel(far));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        let _ = keep;
    }

    #[test]
    fn delta_hint_changes_geometry_not_order() {
        for hint_us in [1u64, 40, 50_000, u64::MAX / 8] {
            let mut q = EventQueue::with_delta_hint(SimDuration::from_micros(hint_us));
            let times = [9u64, 3, 3, 1 << 22, 40, 1 << 31, 40];
            for (i, &us) in times.iter().enumerate() {
                q.schedule(t(us), i);
            }
            let mut expect: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &us)| (us, i)).collect();
            expect.sort_unstable();
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|e| (e.at.as_micros(), e.event))).collect();
            assert_eq!(got, expect, "hint {hint_us}");
        }
    }

    #[test]
    fn sparse_schedules_match_heap_reference() {
        // Inter-event gaps larger than the level-0 page drive every pop
        // through the sparse fast path (single-occupant upper buckets);
        // mixing in same-time ties, dense clusters and cancels forces the
        // fall-back to the cascade path. Differential against the heap.
        let mut xs = 0x5EED_CAFE_u64;
        let mut rand = move || {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            xs
        };
        let mut wheel = EventQueue::with_bits(8);
        let mut heap = HeapEventQueue::new();
        let mut now = 0u64;
        // Live tickets by payload; popped or cancelled entries become
        // `None` so we never cancel an already-fired ticket (a contract
        // violation both queues assert on in debug builds).
        let mut tickets: Vec<Option<(EventId, EventId)>> = Vec::new();
        for i in 0..5_000usize {
            let gap = match rand() % 10 {
                0..=5 => 300 + rand() % 100_000,     // beyond the 2^8 µs page
                6..=7 => rand() % 8,                 // dense / tied
                _ => (1 << 20) + rand() % (1 << 22), // deep level 2
            };
            let at = t(now + gap);
            tickets.push(Some((wheel.schedule(at, i), heap.schedule(at, i))));
            if rand() % 7 == 0 {
                let pick = (rand() % tickets.len() as u64) as usize;
                if let Some((wt, ht)) = tickets[pick].take() {
                    assert_eq!(wheel.cancel(wt), heap.cancel(ht));
                }
            }
            if rand() % 3 == 0 {
                let (w, h) = (wheel.pop(), heap.pop());
                match (&w, &h) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.at, a.event), (b.at, b.event));
                        now = a.at.as_micros();
                        tickets[a.event] = None;
                    }
                    (None, None) => {}
                    _ => panic!("wheel/heap divergence: {w:?} vs {h:?}"),
                }
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.next_event_time(), heap.next_event_time());
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (Some(a), Some(b)) => assert_eq!((a.at, a.event), (b.at, b.event)),
                (None, None) => break,
                (w, h) => panic!("drain divergence: {w:?} vs {h:?}"),
            }
        }
    }

    #[test]
    fn heap_reference_queue_matches_basic_contract() {
        let mut q = HeapEventQueue::new();
        q.schedule(t(30), "c");
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert!(q.cancel(a));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop_due(t(30)), Some("c"));
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 3);
    }
}

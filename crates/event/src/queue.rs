//! Stable timestamped event queue.
//!
//! A binary heap ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, so events scheduled for the
//! same instant are dispatched in insertion order. This stability is what
//! makes whole-simulation runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event plus its dispatch time, as returned by [`EventQueue::pop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The payload.
    pub event: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the earliest event.
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

/// Priority queue of future events, ordered by time then insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0 }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0, scheduled_total: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| ScheduledEvent { at: e.at, event: e.event })
    }

    /// The dispatch time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(10), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule(t(10), 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(42), ());
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
    }

    #[test]
    fn len_and_totals_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2, "total counts scheduled, not pending");
    }

    #[test]
    fn scheduled_event_carries_time() {
        let mut q = EventQueue::new();
        q.schedule(t(99), "x");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, t(99));
        assert_eq!(ev.event, "x");
    }
}

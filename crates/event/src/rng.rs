//! Seeded randomness with the distribution helpers the generators need.
//!
//! Workload and namespace generation in the paper are statistical: op mixes,
//! skewed directory popularity, bursty inter-arrival times. This module
//! wraps a seeded PRNG and provides exactly those samplers so the rest of
//! the workspace never touches `rand` directly, keeping determinism policy
//! in one place.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source. Two `SimRng`s built from the same seed
/// produce identical streams.
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; used to give each client or
    /// subsystem its own stream so insertion-order changes in one place do
    /// not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seed_from_u64(self.fork_seed(salt))
    }

    /// The seed [`fork`](Self::fork) would hand a child generator —
    /// consumes exactly the same single draw, so callers that need to
    /// *defer* building the child stream (the streaming snapshot
    /// generator materializes subtrees long after the fork sequence ran)
    /// can bank seeds and reconstruct identical streams later.
    pub fn fork_seed(&mut self, salt: u64) -> u64 {
        self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen::<f64>() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Samples an index according to non-negative `weights` (cumulative
    /// scan + binary search). Panics if all weights are zero or the slice
    /// is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty slice");
        let mut cum = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
            total += w;
            cum.push(total);
        }
        assert!(total > 0.0, "weighted_index requires a positive total weight");
        let x = self.unit() * total;
        match cum.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(weights.len() - 1),
            Err(i) => i.min(weights.len() - 1),
        }
    }

    /// Exponentially distributed sample with the given mean (e.g. Poisson
    /// inter-arrival gaps).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1], avoids ln(0)
        -u.ln() * mean
    }

    /// Geometric sample: number of failures before the first success with
    /// success probability `p`; used for directory depths.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.unit();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`; used for skewed
    /// popularity (hot directories, hot files). Sampled by inverse CDF over
    /// a cumulative table — fine for the `n` the generators use.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty support");
        // Harmonic normalization; O(n) but callers cache popularity via
        // `ZipfTable` for hot loops.
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
        }
        let x = self.unit() * total;
        let mut cum = 0.0;
        for k in 1..=n {
            cum += 1.0 / (k as f64).powf(s);
            if x < cum {
                return k - 1;
            }
        }
        n - 1
    }
}

/// Precomputed Zipf sampler for repeated draws over the same support.
pub struct ZipfTable {
    cum: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative table for ranks `[0, n)` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cum.push(total);
        }
        ZipfTable { cum }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws a rank using `rng`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cum.last().expect("non-empty by construction");
        let x = rng.unit() * total;
        match self.cum.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(self.cum.len() - 1),
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..20).map(|_| a.below(1 << 30)).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.below(1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_produces_independent_deterministic_streams() {
        let mut root1 = SimRng::seed_from_u64(42);
        let mut root2 = SimRng::seed_from_u64(42);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        for _ in 0..50 {
            assert_eq!(c1.below(100), c2.below(100));
        }
        // Different salts at the same point diverge.
        let mut root3 = SimRng::seed_from_u64(42);
        let mut d = root3.fork(6);
        let s1: Vec<u64> = (0..20).map(|_| root1.fork(0).below(1 << 20)).collect();
        let s2: Vec<u64> = (0..20).map(|_| d.below(1 << 20)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut r = SimRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(13);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be drawn");
        assert!(counts[2] > counts[0] * 2, "3:1 weight ratio, got {counts:?}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_index_rejects_all_zero() {
        let mut r = SimRng::seed_from_u64(1);
        r.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(17);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.7..5.3).contains(&mean), "got {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut r = SimRng::seed_from_u64(19);
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(23);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric(0.5)).sum();
        let mean = total as f64 / n as f64;
        // mean of geometric (failures before success) is (1-p)/p = 1.
        assert!((0.9..1.1).contains(&mean), "got {mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = SimRng::seed_from_u64(29);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[r.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "rank 0 should dominate: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "all ranks reachable: {counts:?}");
    }

    #[test]
    fn zipf_table_matches_direct_sampling_statistics() {
        let table = ZipfTable::new(10, 1.0);
        let mut r = SimRng::seed_from_u64(31);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[table.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        assert_eq!(table.len(), 10);
        assert!(!table.is_empty());
    }

    #[test]
    fn zipf_single_element_support() {
        let mut r = SimRng::seed_from_u64(37);
        assert_eq!(r.zipf(1, 1.2), 0);
        let t = ZipfTable::new(1, 1.2);
        assert_eq!(t.sample(&mut r), 0);
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::seed_from_u64(41);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}

//! Anchor table for multiply-linked inodes (§4.5).
//!
//! With inodes embedded in directories there is no global inode table, so
//! an inode reached through a *secondary* hard link has no index to locate
//! it. The paper's fix: "a global table mapping inode numbers to parent
//! directory inode numbers, … populat\[ed\] only with multiply-linked inodes
//! and their ancestor directories. Combined with a reference count of all
//! such nested items, embedded inodes can be located by recursively
//! identifying containing directories."
//!
//! Each table entry records an inode's parent and a count of anchor chains
//! passing through it. Anchoring a file adds one to every entry on its
//! ancestor chain (creating entries as needed); unanchoring reverses that;
//! a directory rename retargets only the moved entry's parent pointer and
//! transfers its chain counts — fixed cost in the table regardless of
//! subtree size, matching the paper's claim that the table "is easily
//! modified when directories are moved around the hierarchy".

use dynmds_namespace::{FxHashMap, InodeId, Namespace};

#[derive(Clone, Copy, Debug)]
struct Entry {
    parent: Option<InodeId>,
    refs: u32,
}

/// The global anchor table.
#[derive(Default)]
pub struct AnchorTable {
    entries: FxHashMap<InodeId, Entry>,
}

impl AnchorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AnchorTable::default()
    }

    /// Number of entries (anchored inodes plus their ancestor directories).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` appears in the table.
    pub fn contains(&self, id: InodeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Number of anchor chains passing through `id` (`None` if absent).
    pub fn refs(&self, id: InodeId) -> Option<u32> {
        self.entries.get(&id).map(|e| e.refs)
    }

    /// The stored parent pointer of `id`'s entry (`None` if absent;
    /// `Some(None)` for the root entry).
    pub fn parent_of(&self, id: InodeId) -> Option<Option<InodeId>> {
        self.entries.get(&id).map(|e| e.parent)
    }

    /// Iterates `(id, stored_parent, refs)` over every table entry, in
    /// arbitrary order. Invariant-checking hook.
    pub fn iter(&self) -> impl Iterator<Item = (InodeId, Option<InodeId>, u32)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e.parent, e.refs))
    }

    /// Anchors `id`: records it and every ancestor so the inode can be
    /// located without a path. Call when a file's link count rises above
    /// one.
    pub fn anchor(&mut self, ns: &Namespace, id: InodeId) {
        let mut cur = id;
        loop {
            let parent = ns.parent(cur).ok().flatten();
            let e = self.entries.entry(cur).or_insert(Entry { parent, refs: 0 });
            e.refs += 1;
            // Keep the stored parent fresh in case the subtree moved while
            // this entry existed for another chain.
            e.parent = parent;
            match parent {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    /// Removes one anchor chain for `id` (link count dropped back to one,
    /// or the inode died). Entries are removed when their count reaches
    /// zero. Uses the *stored* parent pointers so it works even after the
    /// namespace has already forgotten the inode.
    pub fn unanchor(&mut self, id: InodeId) {
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.entries.get_mut(&c) {
                Some(e) => {
                    e.refs -= 1;
                    let next = e.parent;
                    if e.refs == 0 {
                        self.entries.remove(&c);
                    }
                    cur = next;
                }
                None => break, // chain was never fully anchored; stop
            }
        }
    }

    /// Resolves `id` to its chain of containing directories, nearest
    /// first, ending at the root. Returns `None` when `id` is not
    /// anchored.
    pub fn resolve(&self, id: InodeId) -> Option<Vec<InodeId>> {
        let mut e = self.entries.get(&id)?;
        let mut chain = Vec::new();
        while let Some(p) = e.parent {
            chain.push(p);
            e = self.entries.get(&p)?;
        }
        Some(chain)
    }

    /// Updates the table after directory `dir` moved to a new parent. The
    /// old ancestor chain loses `dir`'s reference counts, the new chain
    /// (read from `ns`, which must already reflect the move) gains them.
    /// No-op if `dir` is not in the table.
    pub fn on_rename(&mut self, ns: &Namespace, dir: InodeId) {
        let Some(&Entry { parent: old_parent, refs }) = self.entries.get(&dir) else {
            return;
        };
        let new_parent = ns.parent(dir).ok().flatten();
        if old_parent == new_parent {
            return;
        }
        // Strip `refs` counts from the old chain.
        let mut cur = old_parent;
        while let Some(c) = cur {
            match self.entries.get_mut(&c) {
                Some(e) => {
                    e.refs -= refs;
                    let next = e.parent;
                    if e.refs == 0 {
                        self.entries.remove(&c);
                    }
                    cur = next;
                }
                None => break,
            }
        }
        // Add them along the new chain.
        self.entries.get_mut(&dir).expect("checked above").parent = new_parent;
        let mut cur = new_parent;
        while let Some(c) = cur {
            let parent = ns.parent(c).ok().flatten();
            let e = self.entries.entry(c).or_insert(Entry { parent, refs: 0 });
            e.refs += refs;
            e.parent = parent;
            cur = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::Permissions;

    fn tree() -> (Namespace, InodeId, InodeId, InodeId, InodeId) {
        // /a/b/f plus /c
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a", Permissions::directory(1)).unwrap();
        let b = ns.mkdir(a, "b", Permissions::directory(1)).unwrap();
        let f = ns.create_file(b, "f", Permissions::shared(1)).unwrap();
        let c = ns.mkdir(ns.root(), "c", Permissions::directory(1)).unwrap();
        (ns, a, b, f, c)
    }

    #[test]
    fn anchor_records_full_chain() {
        let (ns, a, b, f, _) = tree();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        assert!(t.contains(f));
        assert!(t.contains(b));
        assert!(t.contains(a));
        assert!(t.contains(ns.root()));
        assert_eq!(t.len(), 4);
        assert_eq!(t.resolve(f).unwrap(), vec![b, a, ns.root()]);
    }

    #[test]
    fn unanchor_removes_chain() {
        let (ns, _, _, f, _) = tree();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        t.unanchor(f);
        assert!(t.is_empty());
        assert_eq!(t.resolve(f), None);
    }

    #[test]
    fn shared_ancestors_are_counted_not_duplicated() {
        let (mut ns, a, b, f, _) = tree();
        let g = ns.create_file(b, "g", Permissions::shared(1)).unwrap();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        t.anchor(&ns, g);
        assert_eq!(t.len(), 5, "f, g, b, a, root");
        // Removing one chain keeps the shared ancestors for the other.
        t.unanchor(f);
        assert!(!t.contains(f));
        assert!(t.contains(b));
        assert_eq!(t.resolve(g).unwrap(), vec![b, a, ns.root()]);
        t.unanchor(g);
        assert!(t.is_empty());
    }

    #[test]
    fn rename_retargets_chain() {
        let (mut ns, a, b, f, c) = tree();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        // Move /a/b under /c.
        ns.rename(a, "b", c, "b").unwrap();
        t.on_rename(&ns, b);
        assert_eq!(t.resolve(f).unwrap(), vec![b, c, ns.root()]);
        assert!(!t.contains(a), "old chain released");
        assert!(t.contains(c), "new chain anchored");
    }

    #[test]
    fn rename_of_untracked_dir_is_noop() {
        let (mut ns, a, b, _, c) = tree();
        let mut t = AnchorTable::new();
        ns.rename(a, "b", c, "b").unwrap();
        t.on_rename(&ns, b);
        assert!(t.is_empty());
    }

    #[test]
    fn rename_with_multiple_chains_moves_all_counts() {
        let (mut ns, a, b, f, c) = tree();
        let g = ns.create_file(b, "g", Permissions::shared(1)).unwrap();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        t.anchor(&ns, g);
        ns.rename(a, "b", c, "b").unwrap();
        t.on_rename(&ns, b);
        assert_eq!(t.resolve(f).unwrap(), vec![b, c, ns.root()]);
        assert_eq!(t.resolve(g).unwrap(), vec![b, c, ns.root()]);
        assert!(!t.contains(a));
        // Both chains removable afterwards.
        t.unanchor(f);
        t.unanchor(g);
        assert!(t.is_empty());
    }

    #[test]
    fn double_anchor_same_file_counts_twice() {
        let (ns, _, _, f, _) = tree();
        let mut t = AnchorTable::new();
        t.anchor(&ns, f);
        t.anchor(&ns, f);
        t.unanchor(f);
        assert!(t.contains(f), "second chain still holds it");
        t.unanchor(f);
        assert!(t.is_empty());
    }
}

//! Pool of object-storage devices (OSDs) acting as the shared metadata
//! store.
//!
//! Directory objects, inode-table blocks and per-MDS journals all live as
//! objects spread across the pool; an object's home device is a
//! deterministic hash of its key, standing in for the paper's
//! pseudo-random CRUSH-precursor distribution function (§2.1.1) — the
//! property the simulator needs is only that placement is balanced and
//! computable by anyone from the key alone.

use dynmds_event::SimTime;

use crate::disk::{AccessKind, DiskFault, DiskModel, DiskParams, DiskStats};

/// A collection of identical simulated devices addressed by object key.
pub struct OsdPool {
    disks: Vec<DiskModel>,
}

impl OsdPool {
    /// Creates a pool of `n` devices with identical parameters.
    pub fn new(n: usize, params: DiskParams) -> Self {
        assert!(n > 0, "pool needs at least one device");
        OsdPool { disks: (0..n).map(|_| DiskModel::new(params)).collect() }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Deterministic device index for an object key (Fibonacci hashing —
    /// cheap and well spread for sequential inode numbers).
    pub fn place(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % self.disks.len() as u64) as usize
    }

    /// Submits an access to `key`'s home device at `now`; returns the
    /// completion time.
    pub fn access(&mut self, now: SimTime, key: u64, kind: AccessKind) -> SimTime {
        let idx = self.place(key);
        self.disks[idx].access(now, kind)
    }

    /// Installs (or clears) the same degradation window on every device.
    /// Each device's error stream is reseeded from `base_seed` and its
    /// index so the pool replays identically for a given schedule.
    pub fn set_fault(&mut self, fault: Option<DiskFault>, base_seed: u64) {
        for (i, d) in self.disks.iter_mut().enumerate() {
            d.set_fault(fault, base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }

    /// Aggregate stats across all devices.
    pub fn total_stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.disks {
            total.reads += d.stats().reads;
            total.writes += d.stats().writes;
            total.errors += d.stats().errors;
        }
        total
    }

    /// Per-device stats, index = device.
    pub fn per_device_stats(&self) -> Vec<DiskStats> {
        self.disks.iter().map(|d| d.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_event::SimDuration;

    fn pool(n: usize) -> OsdPool {
        OsdPool::new(n, DiskParams { latency: SimDuration::from_millis(8), iops: 100.0 })
    }

    #[test]
    fn placement_is_deterministic() {
        let p = pool(7);
        for key in 0..100 {
            assert_eq!(p.place(key), p.place(key));
            assert!(p.place(key) < 7);
        }
    }

    #[test]
    fn placement_is_balanced() {
        let p = pool(8);
        let mut counts = [0usize; 8];
        for key in 0..8_000u64 {
            counts[p.place(key)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "imbalanced placement: {counts:?}");
        }
    }

    #[test]
    fn different_keys_can_proceed_in_parallel() {
        let mut p = pool(4);
        // Find two keys on different devices.
        let k1 = 0u64;
        let k2 = (1..100).find(|&k| p.place(k) != p.place(k1)).unwrap();
        let c1 = p.access(SimTime::ZERO, k1, AccessKind::Read);
        let c2 = p.access(SimTime::ZERO, k2, AccessKind::Read);
        assert_eq!(c1, c2, "independent devices don't queue behind each other");
    }

    #[test]
    fn same_key_serializes() {
        let mut p = pool(4);
        let c1 = p.access(SimTime::ZERO, 5, AccessKind::Read);
        let c2 = p.access(SimTime::ZERO, 5, AccessKind::Read);
        assert!(c2 > c1);
    }

    #[test]
    fn stats_aggregate_across_devices() {
        let mut p = pool(3);
        for key in 0..30 {
            p.access(SimTime::ZERO, key, AccessKind::Read);
        }
        p.access(SimTime::ZERO, 0, AccessKind::Write);
        let s = p.total_stats();
        assert_eq!(s.reads, 30);
        assert_eq!(s.writes, 1);
        let per = p.per_device_stats();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().map(|s| s.total()).sum::<u64>(), 31);
    }
}

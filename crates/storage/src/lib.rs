//! Simulated metadata storage substrate.
//!
//! The paper's simulation deliberately keeps the disk subsystem simple:
//! "we simplify the storage simulation to reflect average disk latencies
//! and transactional throughputs only" (§5.1). This crate implements that
//! model, plus the two-tier metadata store of §4.6:
//!
//! * [`disk`] — a single device with average access latency and a
//!   transactional-throughput (IOPS) cap,
//! * [`osd`] — a pool of such devices addressed by object key, the shared
//!   metadata store the MDS cluster sits on,
//! * [`journal`] — the bounded per-MDS update log (tier 1); entries that
//!   fall off the end without re-modification are written back to tier 2,
//! * [`store`] — the long-term tier: directory objects with embedded
//!   inodes (§4.5) for subtree/directory-hash strategies, or a per-inode
//!   table for file-hash and Lazy Hybrid strategies,
//! * [`anchor`] — the anchor table locating multiply-linked inodes.

pub mod anchor;
pub mod disk;
pub mod journal;
pub mod osd;
pub mod store;

pub use anchor::AnchorTable;
pub use disk::{AccessKind, DiskFault, DiskModel, DiskParams, DiskStats};
pub use journal::BoundedLog;
pub use osd::OsdPool;
pub use store::{FetchResult, MetadataStore, StoreLayout};

//! Single-device disk model: average latency + transactional throughput.
//!
//! Per §5.1 of the paper, the simulator does not model seeks, zones or
//! caching inside the device. A device is a pipeline with two knobs:
//!
//! * `latency` — every access completes no sooner than `latency` after it
//!   starts being serviced (average positioning + transfer time), and
//! * `iops` — accesses start at most `iops` per second (transactional
//!   throughput); excess requests queue.

use dynmds_event::{SimDuration, SimTime};

/// Read or write — tracked separately so experiments can report the
/// read/write mix hitting the metadata store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Metadata fetch (directory object or inode-table read).
    Read,
    /// Journal append or tier-2 writeback.
    Write,
}

/// Device parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Average per-access latency.
    pub latency: SimDuration,
    /// Transactional throughput cap, accesses per second.
    pub iops: f64,
}

impl Default for DiskParams {
    /// A 2004-era commodity drive: ~8 ms average access, ~120 transactions
    /// per second — the regime the paper's throttled simulations model.
    fn default() -> Self {
        DiskParams { latency: SimDuration::from_millis(8), iops: 120.0 }
    }
}

impl DiskParams {
    /// The minimum spacing between access starts implied by the IOPS cap.
    pub fn service_interval(&self) -> SimDuration {
        assert!(self.iops > 0.0, "iops must be positive");
        SimDuration::from_secs_f64(1.0 / self.iops)
    }
}

/// Cumulative access counts for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
}

impl DiskStats {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// One simulated device. Accesses are serialized by the IOPS cap but
/// overlap in latency (command queuing).
pub struct DiskModel {
    params: DiskParams,
    next_start: SimTime,
    stats: DiskStats,
}

impl DiskModel {
    /// Creates a device with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskModel { params, next_start: SimTime::ZERO, stats: DiskStats::default() }
    }

    /// Submits one access at `now`; returns its completion time.
    pub fn access(&mut self, now: SimTime, kind: AccessKind) -> SimTime {
        let start = now.max(self.next_start);
        self.next_start = start + self.params.service_interval();
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        start + self.params.latency
    }

    /// Cumulative counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The earliest time a new access could start (queue backlog).
    pub fn next_start(&self) -> SimTime {
        self.next_start
    }

    /// Device parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(latency_ms: u64, iops: f64) -> DiskModel {
        DiskModel::new(DiskParams { latency: SimDuration::from_millis(latency_ms), iops })
    }

    #[test]
    fn idle_access_completes_after_latency() {
        let mut d = disk(8, 100.0);
        let done = d.access(SimTime::from_secs(1), AccessKind::Read);
        assert_eq!(done, SimTime::from_secs(1) + SimDuration::from_millis(8));
    }

    #[test]
    fn throughput_cap_spaces_out_starts() {
        let mut d = disk(8, 100.0); // one start per 10 ms
        let t0 = SimTime::ZERO;
        let c1 = d.access(t0, AccessKind::Read);
        let c2 = d.access(t0, AccessKind::Read);
        let c3 = d.access(t0, AccessKind::Read);
        assert_eq!(c1.as_micros(), 8_000);
        assert_eq!(c2.as_micros(), 18_000, "second starts 10ms after first");
        assert_eq!(c3.as_micros(), 28_000);
    }

    #[test]
    fn queue_drains_when_requests_are_sparse() {
        let mut d = disk(8, 100.0);
        d.access(SimTime::ZERO, AccessKind::Read);
        // 50 ms later the device is idle again.
        let done = d.access(SimTime::from_millis(50), AccessKind::Read);
        assert_eq!(done, SimTime::from_millis(58));
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut d = disk(8, 100.0);
        d.access(SimTime::ZERO, AccessKind::Read);
        d.access(SimTime::ZERO, AccessKind::Write);
        d.access(SimTime::ZERO, AccessKind::Write);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn sustained_rate_matches_iops() {
        let mut d = disk(1, 200.0);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = d.access(SimTime::ZERO, AccessKind::Read);
        }
        // 1000 accesses at 200/s take ~5s of device time.
        let secs = last.as_secs_f64();
        assert!((4.9..5.2).contains(&secs), "got {secs}");
    }

    #[test]
    fn default_params_are_2004_commodity() {
        let p = DiskParams::default();
        assert_eq!(p.latency, SimDuration::from_millis(8));
        assert!((p.iops - 120.0).abs() < f64::EPSILON);
        assert_eq!(p.service_interval(), SimDuration::from_micros(8_333));
    }
}

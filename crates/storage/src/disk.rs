//! Single-device disk model: average latency + transactional throughput.
//!
//! Per §5.1 of the paper, the simulator does not model seeks, zones or
//! caching inside the device. A device is a pipeline with two knobs:
//!
//! * `latency` — every access completes no sooner than `latency` after it
//!   starts being serviced (average positioning + transfer time), and
//! * `iops` — accesses start at most `iops` per second (transactional
//!   throughput); excess requests queue.

use dynmds_event::{SimDuration, SimTime};

/// Read or write — tracked separately so experiments can report the
/// read/write mix hitting the metadata store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Metadata fetch (directory object or inode-table read).
    Read,
    /// Journal append or tier-2 writeback.
    Write,
}

/// Device parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Average per-access latency.
    pub latency: SimDuration,
    /// Transactional throughput cap, accesses per second.
    pub iops: f64,
}

impl Default for DiskParams {
    /// A 2004-era commodity drive: ~8 ms average access, ~120 transactions
    /// per second — the regime the paper's throttled simulations model.
    fn default() -> Self {
        DiskParams { latency: SimDuration::from_millis(8), iops: 120.0 }
    }
}

impl DiskParams {
    /// The minimum spacing between access starts implied by the IOPS cap.
    pub fn service_interval(&self) -> SimDuration {
        assert!(self.iops > 0.0, "iops must be positive");
        SimDuration::from_secs_f64(1.0 / self.iops)
    }
}

/// A degradation window applied to a device: latency inflation, IOPS
/// throttling, and a transient-error probability. Errors are retried
/// internally (one extra transaction) — the caller still gets a
/// completion time, just a later one, plus an `errors` count in
/// [`DiskStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskFault {
    /// Multiplier on per-access latency (`1.0` = nominal).
    pub latency_mult: f64,
    /// Multiplier on transactional throughput (`0.5` = half the IOPS).
    pub iops_mult: f64,
    /// Probability that an access fails transiently and is retried.
    pub error_p: f64,
}

impl Default for DiskFault {
    fn default() -> Self {
        DiskFault { latency_mult: 1.0, iops_mult: 1.0, error_p: 0.0 }
    }
}

/// Cumulative access counts for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
    /// Transient I/O errors (each one cost an internal retry).
    pub errors: u64,
}

impl DiskStats {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// One simulated device. Accesses are serialized by the IOPS cap but
/// overlap in latency (command queuing).
pub struct DiskModel {
    params: DiskParams,
    next_start: SimTime,
    stats: DiskStats,
    fault: Option<DiskFault>,
    /// xorshift64* state for transient-error draws; private to the device
    /// so fault injection never perturbs any other random stream.
    fault_state: u64,
}

impl DiskModel {
    /// Creates a device with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            params,
            next_start: SimTime::ZERO,
            stats: DiskStats::default(),
            fault: None,
            fault_state: 1,
        }
    }

    /// Installs (or clears) a degradation window. `seed` reseeds the
    /// device-private error stream so same seed + same schedule replays
    /// identically.
    pub fn set_fault(&mut self, fault: Option<DiskFault>, seed: u64) {
        if let Some(f) = &fault {
            assert!(f.latency_mult >= 0.0 && f.iops_mult > 0.0, "bad disk fault multipliers");
        }
        self.fault = fault;
        self.fault_state = seed | 1; // xorshift state must be non-zero
    }

    /// The active degradation window, if any.
    pub fn fault(&self) -> Option<DiskFault> {
        self.fault
    }

    fn next_unit(&mut self) -> f64 {
        // xorshift64*: deterministic, allocation-free, good enough for
        // Bernoulli error draws.
        let mut x = self.fault_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.fault_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Submits one access at `now`; returns its completion time.
    pub fn access(&mut self, now: SimTime, kind: AccessKind) -> SimTime {
        let (latency, interval) = match &self.fault {
            Some(f) => (
                self.params.latency.mul_f64(f.latency_mult),
                self.params.service_interval().mul_f64(1.0 / f.iops_mult),
            ),
            None => (self.params.latency, self.params.service_interval()),
        };
        let mut start = now.max(self.next_start);
        self.next_start = start + interval;
        if let Some(f) = self.fault {
            if f.error_p > 0.0 && self.next_unit() < f.error_p {
                // Transient failure: the retry is a second transaction
                // queued after the failed one completes.
                self.stats.errors += 1;
                let retry = (start + latency).max(self.next_start);
                self.next_start = retry + interval;
                start = retry;
            }
        }
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        start + latency
    }

    /// Cumulative counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The earliest time a new access could start (queue backlog).
    pub fn next_start(&self) -> SimTime {
        self.next_start
    }

    /// Device parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(latency_ms: u64, iops: f64) -> DiskModel {
        DiskModel::new(DiskParams { latency: SimDuration::from_millis(latency_ms), iops })
    }

    #[test]
    fn idle_access_completes_after_latency() {
        let mut d = disk(8, 100.0);
        let done = d.access(SimTime::from_secs(1), AccessKind::Read);
        assert_eq!(done, SimTime::from_secs(1) + SimDuration::from_millis(8));
    }

    #[test]
    fn throughput_cap_spaces_out_starts() {
        let mut d = disk(8, 100.0); // one start per 10 ms
        let t0 = SimTime::ZERO;
        let c1 = d.access(t0, AccessKind::Read);
        let c2 = d.access(t0, AccessKind::Read);
        let c3 = d.access(t0, AccessKind::Read);
        assert_eq!(c1.as_micros(), 8_000);
        assert_eq!(c2.as_micros(), 18_000, "second starts 10ms after first");
        assert_eq!(c3.as_micros(), 28_000);
    }

    #[test]
    fn queue_drains_when_requests_are_sparse() {
        let mut d = disk(8, 100.0);
        d.access(SimTime::ZERO, AccessKind::Read);
        // 50 ms later the device is idle again.
        let done = d.access(SimTime::from_millis(50), AccessKind::Read);
        assert_eq!(done, SimTime::from_millis(58));
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut d = disk(8, 100.0);
        d.access(SimTime::ZERO, AccessKind::Read);
        d.access(SimTime::ZERO, AccessKind::Write);
        d.access(SimTime::ZERO, AccessKind::Write);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn sustained_rate_matches_iops() {
        let mut d = disk(1, 200.0);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = d.access(SimTime::ZERO, AccessKind::Read);
        }
        // 1000 accesses at 200/s take ~5s of device time.
        let secs = last.as_secs_f64();
        assert!((4.9..5.2).contains(&secs), "got {secs}");
    }

    #[test]
    fn fault_inflates_latency_and_throttles_iops() {
        let mut d = disk(8, 100.0);
        d.set_fault(Some(DiskFault { latency_mult: 2.0, iops_mult: 0.5, error_p: 0.0 }), 7);
        let c1 = d.access(SimTime::ZERO, AccessKind::Read);
        let c2 = d.access(SimTime::ZERO, AccessKind::Read);
        assert_eq!(c1.as_micros(), 16_000, "latency doubled");
        assert_eq!(c2.as_micros(), 36_000, "starts now 20ms apart");
        // Clearing the fault restores nominal behaviour.
        d.set_fault(None, 0);
        let c3 = d.access(SimTime::from_millis(100), AccessKind::Read);
        assert_eq!(c3, SimTime::from_millis(108));
    }

    #[test]
    fn fault_errors_cost_a_retry_and_are_counted() {
        let mut d = disk(8, 100.0);
        d.set_fault(Some(DiskFault { latency_mult: 1.0, iops_mult: 1.0, error_p: 1.0 }), 3);
        let done = d.access(SimTime::ZERO, AccessKind::Read);
        // Failed attempt completes at 8ms; retry starts at max(8ms, 10ms
        // queue point) = 10ms and completes 8ms later.
        assert_eq!(done.as_micros(), 18_000);
        assert_eq!(d.stats().errors, 1);
        assert_eq!(d.stats().reads, 1, "retry is internal, not a second access");
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = disk(1, 1000.0);
            d.set_fault(Some(DiskFault { latency_mult: 1.0, iops_mult: 1.0, error_p: 0.3 }), seed);
            let mut completions = Vec::new();
            for _ in 0..200 {
                completions.push(d.access(SimTime::ZERO, AccessKind::Write).as_micros());
            }
            (completions, d.stats())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        let (_, s) = run(42);
        assert!(s.errors > 20 && s.errors < 120, "error_p=0.3 over 200 ops, got {}", s.errors);
    }

    #[test]
    fn no_fault_means_no_error_draws() {
        let mut a = disk(8, 100.0);
        let mut b = disk(8, 100.0);
        b.set_fault(Some(DiskFault::default()), 99);
        for i in 0..50 {
            let t = SimTime::from_millis(i * 3);
            assert_eq!(a.access(t, AccessKind::Read), b.access(t, AccessKind::Read));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn default_params_are_2004_commodity() {
        let p = DiskParams::default();
        assert_eq!(p.latency, SimDuration::from_millis(8));
        assert!((p.iops - 120.0).abs() < f64::EPSILON);
        assert_eq!(p.service_interval(), SimDuration::from_micros(8_333));
    }
}

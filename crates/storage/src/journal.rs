//! Bounded per-MDS update log (storage tier 1).
//!
//! §4.6: "We utilize a bounded log structure for the immediate storage of
//! updates on each metadata server. Entries that fall off the end of the
//! log without subsequent modifications are written to a second, more
//! permanent, tier of storage." With a log sized like MDS memory, the log
//! approximates the node's working set and can preload the cache after a
//! failure.
//!
//! The log records *which inode* each update touched. When an entry is
//! pushed off the end, it is retired to tier 2 **unless** a newer entry for
//! the same inode is still in the log (the later modification supersedes
//! it — write coalescing).

use std::collections::VecDeque;

use dynmds_namespace::{FxHashMap, InodeId};

/// Bounded update log.
pub struct BoundedLog {
    cap: usize,
    entries: VecDeque<(u64, InodeId)>,
    /// Latest sequence number per inode still in the log.
    latest: FxHashMap<InodeId, u64>,
    next_seq: u64,
    appended: u64,
    retired: u64,
    coalesced: u64,
}

impl BoundedLog {
    /// Creates a log holding at most `cap` entries. `cap` must be > 0.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "journal capacity must be positive");
        BoundedLog {
            cap,
            entries: VecDeque::with_capacity(cap + 1),
            latest: FxHashMap::default(),
            next_seq: 0,
            appended: 0,
            retired: 0,
            coalesced: 0,
        }
    }

    /// Appends an update for `id`. Returns the inodes whose entries were
    /// pushed off the end and must now be written back to tier 2.
    pub fn append(&mut self, id: InodeId) -> Vec<InodeId> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.appended += 1;
        self.entries.push_back((seq, id));
        self.latest.insert(id, seq);

        let mut writebacks = Vec::new();
        while self.entries.len() > self.cap {
            let (old_seq, old_id) = self.entries.pop_front().expect("len > cap > 0");
            match self.latest.get(&old_id) {
                Some(&s) if s == old_seq => {
                    // This was the newest record for the inode: retire it.
                    self.latest.remove(&old_id);
                    self.retired += 1;
                    writebacks.push(old_id);
                }
                _ => {
                    // Superseded by a later entry still in the log.
                    self.coalesced += 1;
                }
            }
        }
        writebacks
    }

    /// Whether an update for `id` is still in the log (its tier-2 copy may
    /// be stale).
    pub fn contains(&self, id: InodeId) -> bool {
        self.latest.contains_key(&id)
    }

    /// Unique inodes currently in the log — the approximate working set
    /// used to warm the cache on startup/failover (§4.6).
    pub fn working_set(&self) -> impl Iterator<Item = InodeId> + '_ {
        self.latest.keys().copied()
    }

    /// Entries currently in the log (including superseded duplicates).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total appends ever.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Entries retired to tier 2 (each one cost a tier-2 write).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Entries dropped because a newer update coalesced them.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Drains the log as for a clean shutdown, returning every inode that
    /// still needs a tier-2 writeback.
    pub fn flush(&mut self) -> Vec<InodeId> {
        let mut ids: Vec<InodeId> = self.latest.keys().copied().collect();
        ids.sort(); // deterministic order
        self.retired += ids.len() as u64;
        self.coalesced += (self.entries.len() - ids.len()) as u64;
        self.entries.clear();
        self.latest.clear();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> InodeId {
        InodeId(n)
    }

    #[test]
    fn appends_within_capacity_retire_nothing() {
        let mut log = BoundedLog::new(4);
        for n in 0..4 {
            assert!(log.append(id(n)).is_empty());
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.retired(), 0);
    }

    #[test]
    fn overflow_retires_oldest() {
        let mut log = BoundedLog::new(3);
        log.append(id(1));
        log.append(id(2));
        log.append(id(3));
        let out = log.append(id(4));
        assert_eq!(out, vec![id(1)]);
        assert_eq!(log.retired(), 1);
        assert!(!log.contains(id(1)));
        assert!(log.contains(id(4)));
    }

    #[test]
    fn remodification_coalesces() {
        let mut log = BoundedLog::new(3);
        log.append(id(1));
        log.append(id(2));
        log.append(id(1)); // supersedes the first entry
        let out = log.append(id(3)); // pushes the stale id(1) record out
        assert!(out.is_empty(), "superseded entry must not be written back");
        assert_eq!(log.coalesced(), 1);
        assert!(log.contains(id(1)), "newer id(1) entry still in log");
    }

    #[test]
    fn working_set_is_unique_inodes() {
        let mut log = BoundedLog::new(10);
        log.append(id(1));
        log.append(id(2));
        log.append(id(1));
        let mut ws: Vec<InodeId> = log.working_set().collect();
        ws.sort();
        assert_eq!(ws, vec![id(1), id(2)]);
        assert_eq!(log.len(), 3, "log keeps duplicates; working set dedups");
    }

    #[test]
    fn flush_returns_live_entries_once() {
        let mut log = BoundedLog::new(10);
        log.append(id(1));
        log.append(id(2));
        log.append(id(1));
        let out = log.flush();
        assert_eq!(out, vec![id(1), id(2)]);
        assert!(log.is_empty());
        assert_eq!(log.retired(), 2);
        assert_eq!(log.coalesced(), 1);
        assert!(log.flush().is_empty(), "second flush is a no-op");
    }

    #[test]
    fn steady_state_hot_set_never_writes_back() {
        // A working set smaller than the log, updated round-robin, should
        // coalesce forever — the paper's rationale for sizing the log like
        // MDS memory.
        let mut log = BoundedLog::new(100);
        let mut writebacks = 0;
        for i in 0..10_000u64 {
            writebacks += log.append(id(i % 20)).len();
        }
        assert_eq!(writebacks, 0);
        assert!(log.coalesced() > 9_000);
    }

    #[test]
    fn cold_stream_writes_everything_back() {
        let mut log = BoundedLog::new(10);
        let mut writebacks = 0;
        for i in 0..1_000u64 {
            writebacks += log.append(id(i)).len();
        }
        assert_eq!(writebacks, 990, "all but the resident tail retire");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BoundedLog::new(0);
    }

    #[test]
    fn counters_are_consistent() {
        let mut log = BoundedLog::new(5);
        for i in 0..100u64 {
            log.append(id(i % 7));
        }
        assert_eq!(log.appended(), 100);
        assert_eq!(
            log.retired() + log.coalesced() + log.len() as u64,
            log.appended(),
            "every append is either in the log, retired, or coalesced"
        );
    }
}

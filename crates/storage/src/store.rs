//! Long-term metadata tier (tier 2) and its two on-disk layouts.
//!
//! The partitioning strategies differ in how metadata is laid out on disk
//! (§4.5, §5.3):
//!
//! * **Embedded directories** — subtree and directory-hash strategies store
//!   a directory's entries *and their inodes* together as one object.
//!   Fetching any entry loads the whole directory: one disk transaction,
//!   entire directory prefetched.
//! * **Inode table** — file-hash and Lazy Hybrid strategies scatter files
//!   individually, so each miss loads exactly one inode and directory
//!   entry lists are separate objects.
//!
//! The store does not hold metadata contents (the shared
//! shared [`Namespace`] is the single source of
//! truth); it models *which items an access loads* and *when the access
//! completes* against the [`OsdPool`].

use dynmds_event::SimTime;
use dynmds_namespace::{InodeId, Namespace};

use crate::disk::AccessKind;
use crate::osd::OsdPool;

/// On-disk layout of tier 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreLayout {
    /// Directory objects with embedded inodes; fetches prefetch the whole
    /// containing directory.
    EmbeddedDirectories,
    /// Global inode table; fetches load exactly one inode.
    InodeTable,
}

/// Outcome of a metadata fetch.
#[derive(Clone, Debug)]
pub struct FetchResult {
    /// When the disk access completes.
    pub complete_at: SimTime,
    /// Every inode brought into memory by this access (the requested item
    /// plus, under the embedded layout, its whole directory).
    pub loaded: Vec<InodeId>,
}

/// Key space partitioning: journals live far away from inode/dir objects.
const JOURNAL_KEY_BASE: u64 = u64::MAX - (1 << 16);

/// Tier-2 store front-end.
pub struct MetadataStore {
    layout: StoreLayout,
    pool: OsdPool,
    fetches: u64,
    writebacks: u64,
    coalesced_writebacks: u64,
    journal_writes: u64,
    /// Last physical write per object key — journal retirements landing on
    /// a recently rewritten object are folded into that write (§4.6: the
    /// B-tree directory objects absorb "incremental updates … with minimal
    /// modifications to on-disk structures").
    recent_writes: dynmds_namespace::FxHashMap<u64, SimTime>,
    write_coalesce_window: SimTime,
}

/// How long after an object write further writebacks to the same object
/// are absorbed for free.
const WRITE_COALESCE_US: u64 = 500_000;

impl MetadataStore {
    /// Creates a store over `pool` with the given layout.
    pub fn new(layout: StoreLayout, pool: OsdPool) -> Self {
        MetadataStore {
            layout,
            pool,
            fetches: 0,
            writebacks: 0,
            coalesced_writebacks: 0,
            journal_writes: 0,
            recent_writes: dynmds_namespace::FxHashMap::default(),
            write_coalesce_window: SimTime::from_micros(WRITE_COALESCE_US),
        }
    }

    /// The configured layout.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// The object key holding `id`'s inode.
    fn object_key(&self, ns: &Namespace, id: InodeId) -> u64 {
        match self.layout {
            // The inode is embedded in its parent's directory object; the
            // root (no parent) gets its own object.
            StoreLayout::EmbeddedDirectories => match ns.parent(id) {
                Ok(Some(p)) => p.0,
                _ => id.0,
            },
            StoreLayout::InodeTable => id.0,
        }
    }

    /// Fetches the metadata for `id` at `now`.
    pub fn fetch_inode(&mut self, now: SimTime, ns: &Namespace, id: InodeId) -> FetchResult {
        self.fetches += 1;
        let key = self.object_key(ns, id);
        let complete_at = self.pool.access(now, key, AccessKind::Read);
        let loaded = match self.layout {
            StoreLayout::EmbeddedDirectories => match ns.parent(id) {
                Ok(Some(p)) => {
                    // Whole-directory prefetch: every sibling arrives too.
                    ns.children(p)
                        .map(|it| it.map(|(_, c)| c).collect())
                        .unwrap_or_else(|_| vec![id])
                }
                _ => vec![id],
            },
            StoreLayout::InodeTable => vec![id],
        };
        FetchResult { complete_at, loaded }
    }

    /// Fetches one inode from a *fragmented* directory: when a directory
    /// is spread entry-wise across the cluster (§4.3 dynamic directory
    /// hashing), its storage fragments with it, so each entry fetch is an
    /// independent object access keyed by the entry itself — regardless of
    /// the configured layout.
    pub fn fetch_fragment(&mut self, now: SimTime, id: InodeId) -> FetchResult {
        self.fetches += 1;
        let complete_at = self.pool.access(now, id.0, AccessKind::Read);
        FetchResult { complete_at, loaded: vec![id] }
    }

    /// Fetches the contents of directory `dir` (a readdir). Under the
    /// embedded layout this is the same single object as any entry fetch
    /// and loads all embedded inodes; under the inode-table layout it
    /// loads the name list only — the inodes still need individual
    /// fetches (the paper's "inefficient metadata I/O" for file hashing).
    pub fn fetch_dir(&mut self, now: SimTime, ns: &Namespace, dir: InodeId) -> FetchResult {
        self.fetches += 1;
        let complete_at = self.pool.access(now, dir.0, AccessKind::Read);
        let loaded = match self.layout {
            StoreLayout::EmbeddedDirectories => {
                ns.children(dir).map(|it| it.map(|(_, c)| c).collect()).unwrap_or_default()
            }
            StoreLayout::InodeTable => Vec::new(),
        };
        FetchResult { complete_at, loaded }
    }

    /// Writes `id`'s record back to tier 2 (journal retirement). Repeated
    /// writebacks to the same object within the coalescing window are
    /// absorbed by the previous physical write (incremental B-tree
    /// updates) and return immediately.
    pub fn writeback(&mut self, now: SimTime, ns: &Namespace, id: InodeId) -> SimTime {
        self.writebacks += 1;
        let key = self.object_key(ns, id);
        let window = self.write_coalesce_window.as_micros();
        if let Some(&last) = self.recent_writes.get(&key) {
            if now.saturating_since(last).as_micros() < window {
                self.coalesced_writebacks += 1;
                return now;
            }
        }
        self.recent_writes.insert(key, now);
        // Opportunistic pruning keeps the map bounded on long runs.
        if self.recent_writes.len() > 65_536 {
            self.recent_writes.retain(|_, &mut t| now.saturating_since(t).as_micros() < window);
        }
        self.pool.access(now, key, AccessKind::Write)
    }

    /// Appends to the journal of MDS `mds_index` (tier-1 commit).
    pub fn journal_append(&mut self, now: SimTime, mds_index: usize) -> SimTime {
        self.journal_writes += 1;
        let key = JOURNAL_KEY_BASE + mds_index as u64;
        self.pool.access(now, key, AccessKind::Write)
    }

    /// Total tier-2 fetch transactions.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Total tier-2 writeback requests (physical + coalesced).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Writebacks absorbed by a recent write to the same object.
    pub fn coalesced_writebacks(&self) -> u64 {
        self.coalesced_writebacks
    }

    /// Total journal appends.
    pub fn journal_writes(&self) -> u64 {
        self.journal_writes
    }

    /// The underlying pool (for stats).
    pub fn pool(&self) -> &OsdPool {
        &self.pool
    }

    /// Applies (or clears) a degradation window on the whole pool.
    pub fn set_pool_fault(&mut self, fault: Option<crate::disk::DiskFault>, base_seed: u64) {
        self.pool.set_fault(fault, base_seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use dynmds_namespace::Permissions;

    fn setup(layout: StoreLayout) -> (MetadataStore, Namespace, InodeId, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let dir = ns.mkdir(ns.root(), "d", Permissions::directory(1)).unwrap();
        let files: Vec<InodeId> = (0..5)
            .map(|i| ns.create_file(dir, &format!("f{i}"), Permissions::shared(1)).unwrap())
            .collect();
        let store = MetadataStore::new(layout, OsdPool::new(4, DiskParams::default()));
        (store, ns, dir, files)
    }

    #[test]
    fn embedded_fetch_loads_whole_directory() {
        let (mut store, ns, _, files) = setup(StoreLayout::EmbeddedDirectories);
        let res = store.fetch_inode(SimTime::ZERO, &ns, files[0]);
        assert_eq!(res.loaded.len(), 5, "all siblings prefetched");
        for f in &files {
            assert!(res.loaded.contains(f));
        }
        assert!(res.complete_at > SimTime::ZERO);
    }

    #[test]
    fn inode_table_fetch_loads_one() {
        let (mut store, ns, _, files) = setup(StoreLayout::InodeTable);
        let res = store.fetch_inode(SimTime::ZERO, &ns, files[0]);
        assert_eq!(res.loaded, vec![files[0]]);
    }

    #[test]
    fn embedded_readdir_loads_embedded_inodes() {
        let (mut store, ns, dir, files) = setup(StoreLayout::EmbeddedDirectories);
        let res = store.fetch_dir(SimTime::ZERO, &ns, dir);
        assert_eq!(res.loaded.len(), files.len());
    }

    #[test]
    fn inode_table_readdir_loads_names_only() {
        let (mut store, ns, dir, _) = setup(StoreLayout::InodeTable);
        let res = store.fetch_dir(SimTime::ZERO, &ns, dir);
        assert!(res.loaded.is_empty(), "inodes require separate fetches");
    }

    #[test]
    fn root_fetch_works_without_parent() {
        let (mut store, ns, _, _) = setup(StoreLayout::EmbeddedDirectories);
        let res = store.fetch_inode(SimTime::ZERO, &ns, ns.root());
        assert_eq!(res.loaded, vec![ns.root()]);
    }

    #[test]
    fn siblings_share_an_object_under_embedding() {
        let (store, ns, _, files) = setup(StoreLayout::EmbeddedDirectories);
        let k0 = store.object_key(&ns, files[0]);
        let k1 = store.object_key(&ns, files[1]);
        assert_eq!(k0, k1);
    }

    #[test]
    fn siblings_scatter_under_inode_table() {
        let (store, ns, _, files) = setup(StoreLayout::InodeTable);
        let k0 = store.object_key(&ns, files[0]);
        let k1 = store.object_key(&ns, files[1]);
        assert_ne!(k0, k1);
    }

    #[test]
    fn counters_track_operations() {
        let (mut store, ns, dir, files) = setup(StoreLayout::EmbeddedDirectories);
        store.fetch_inode(SimTime::ZERO, &ns, files[0]);
        store.fetch_dir(SimTime::ZERO, &ns, dir);
        store.writeback(SimTime::ZERO, &ns, files[0]);
        store.journal_append(SimTime::ZERO, 0);
        store.journal_append(SimTime::ZERO, 1);
        assert_eq!(store.fetches(), 2);
        assert_eq!(store.writebacks(), 1);
        assert_eq!(store.journal_writes(), 2);
        assert_eq!(store.pool().total_stats().total(), 5);
    }

    #[test]
    fn writebacks_to_one_object_coalesce() {
        let (mut store, ns, _, files) = setup(StoreLayout::EmbeddedDirectories);
        // Siblings share a directory object: the second writeback within
        // the window is free.
        let t1 = store.writeback(SimTime::ZERO, &ns, files[0]);
        let t2 = store.writeback(SimTime::from_micros(10), &ns, files[1]);
        assert!(t1 > SimTime::ZERO, "first write hits the pool");
        assert_eq!(t2, SimTime::from_micros(10), "coalesced write is free");
        assert_eq!(store.coalesced_writebacks(), 1);
        // Outside the window a real write happens again.
        let later = SimTime::from_secs(5);
        let t3 = store.writeback(later, &ns, files[2]);
        assert!(t3 > later);
        assert_eq!(store.writebacks(), 3);
    }

    #[test]
    fn scattered_inode_table_writebacks_do_not_coalesce() {
        let (mut store, ns, _, files) = setup(StoreLayout::InodeTable);
        store.writeback(SimTime::ZERO, &ns, files[0]);
        store.writeback(SimTime::ZERO, &ns, files[1]);
        assert_eq!(store.coalesced_writebacks(), 0, "distinct objects");
    }

    #[test]
    fn journal_keys_do_not_collide_with_inodes() {
        let (mut store, _, _, _) = setup(StoreLayout::InodeTable);
        // Journals and low-numbered inodes may land on the same device but
        // never share a key; this just asserts the key-space separation.
        let t1 = store.journal_append(SimTime::ZERO, 0);
        let t2 = store.journal_append(SimTime::ZERO, 0);
        assert!(t2 > t1, "same journal serializes");
    }
}

//! Property tests: storage-layer conservation laws.

use dynmds_event::SimTime;
use dynmds_namespace::{InodeId, NamespaceSpec};
use dynmds_storage::{
    AccessKind, BoundedLog, DiskModel, DiskParams, MetadataStore, OsdPool, StoreLayout,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal conservation: every append ends up exactly one of
    /// {in log, retired, coalesced}; flush empties; working set ⊆ appended.
    #[test]
    fn journal_conservation(
        cap in 1usize..64,
        appends in prop::collection::vec(0u64..40, 1..300),
    ) {
        let mut log = BoundedLog::new(cap);
        let mut writebacks = 0u64;
        for &id in &appends {
            writebacks += log.append(InodeId(id)).len() as u64;
        }
        prop_assert_eq!(log.appended(), appends.len() as u64);
        prop_assert_eq!(
            log.retired() + log.coalesced() + log.len() as u64,
            log.appended()
        );
        prop_assert_eq!(writebacks, log.retired());
        prop_assert!(log.len() <= cap);
        // Working set only holds ids that were appended.
        for id in log.working_set() {
            prop_assert!(appends.contains(&id.0));
        }
        // Flush drains everything and keeps the books balanced.
        let flushed = log.flush();
        prop_assert!(log.is_empty());
        let mut unique: Vec<InodeId> = flushed.clone();
        unique.dedup();
        prop_assert_eq!(unique.len(), flushed.len(), "flush yields each id once");
        prop_assert_eq!(
            log.retired() + log.coalesced(),
            log.appended()
        );
    }

    /// Disk completions are monotone in submission order and never beat
    /// the device latency; sustained throughput respects the IOPS cap.
    #[test]
    fn disk_completions_monotone_and_capped(
        iops in 50.0f64..2000.0,
        gaps in prop::collection::vec(0u64..10_000, 2..200),
    ) {
        let params = DiskParams { latency: dynmds_event::SimDuration::from_millis(5), iops };
        let mut disk = DiskModel::new(params);
        let mut now = SimTime::ZERO;
        let mut prev_done = SimTime::ZERO;
        let mut first = SimTime::ZERO;
        for (k, &gap) in gaps.iter().enumerate() {
            now += dynmds_event::SimDuration::from_micros(gap);
            let done = disk.access(now, AccessKind::Read);
            prop_assert!(done >= now + params.latency, "latency floor");
            prop_assert!(done >= prev_done, "completion order matches submission");
            if k == 0 { first = done; }
            prev_done = done;
        }
        // Throughput cap: n accesses need at least (n-1)/iops seconds of
        // device time between first and last completion.
        let n = gaps.len() as f64;
        let span = prev_done.saturating_since(first).as_secs_f64();
        let submit_span = now.as_secs_f64();
        let min_span = ((n - 1.0) / iops - submit_span).max(0.0);
        prop_assert!(span + 1e-9 >= min_span, "cap violated: {span} < {min_span}");
    }

    /// Embedded fetches always load the requested inode plus only its
    /// siblings; inode-table fetches load exactly the request.
    #[test]
    fn fetch_loads_are_exact(seed in 0u64..200) {
        let snap = NamespaceSpec { users: 3, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        let files: Vec<InodeId> = ns.live_ids().filter(|&i| !ns.is_dir(i)).collect();
        prop_assume!(!files.is_empty());
        let target = files[seed as usize % files.len()];

        let mut table = MetadataStore::new(StoreLayout::InodeTable, OsdPool::new(4, DiskParams::default()));
        let res = table.fetch_inode(SimTime::ZERO, &ns, target);
        prop_assert_eq!(res.loaded, vec![target]);

        let mut emb = MetadataStore::new(StoreLayout::EmbeddedDirectories, OsdPool::new(4, DiskParams::default()));
        let res = emb.fetch_inode(SimTime::ZERO, &ns, target);
        prop_assert!(res.loaded.contains(&target));
        let parent = ns.parent(target).unwrap().unwrap();
        for id in &res.loaded {
            prop_assert_eq!(ns.parent(*id).unwrap(), Some(parent), "only siblings ride along");
        }
        prop_assert_eq!(res.loaded.len(), ns.child_count(parent).unwrap());
    }

    /// Pool placement is stable and respects device count, whatever the
    /// keys.
    #[test]
    fn pool_placement_stable(n in 1usize..32, keys in prop::collection::vec(any::<u64>(), 1..100)) {
        let pool = OsdPool::new(n, DiskParams::default());
        for &k in &keys {
            let a = pool.place(k);
            prop_assert!(a < n);
            prop_assert_eq!(a, pool.place(k));
        }
    }
}

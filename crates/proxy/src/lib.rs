//! Adaptive hotspot proxy tier (ROADMAP item 4).
//!
//! MIDAS-style middleware that sits between the client population and the
//! MDS cluster. Each proxy runs an online hot-object detector (EWMA over
//! inode touch rates) and, for items it considers hot, absorbs work that
//! would otherwise hammer the authority:
//!
//! * **negative-lookup caching** — a name already known to be absent is
//!   answered at the proxy; creates/renames that materialize the name
//!   invalidate the entry synchronously,
//! * **read absorption** — repeat stats/readdirs of a hot item the proxy
//!   has already read through are answered from the proxy cache,
//! * **write coalescing** — monotone size/mtime bumps (close/setattr)
//!   against a hot file are acknowledged immediately and folded into one
//!   delta that is pushed to the authority at the next flush.
//!
//! Cold traffic bypasses the proxy entirely, so proxy-off runs are
//! byte-identical to a build without this crate.
//!
//! This crate holds only the engine-agnostic state machine ([`ProxyCore`])
//! shared by the legacy event-loop cluster and the sharded engine; the
//! transport (extra network hops, proxy CPU, flush scheduling) lives with
//! each engine. Keeping the coherence rules in one place is what lets the
//! DST oracle and the property tests in `tests/` speak for both engines.

use dynmds_namespace::{FxHashMap, FxHashSet, InodeId};

/// Proxy-tier knobs, carried inside the simulation config. `count == 0`
/// (the default) disables the tier completely: no proxy state is
/// allocated and no code path draws randomness or emits output, keeping
/// proxy-off runs byte-identical to pre-proxy builds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProxyConfig {
    /// Number of proxies fronting the cluster (0 = tier disabled).
    /// Clients map to proxies statically: `client mod count`.
    pub count: u16,
    /// Decayed touch-rate above which an item counts as hot.
    pub hot_threshold: f64,
    /// Half-life of the hot detector's decayed counters, microseconds.
    pub half_life_us: u64,
    /// CPU cost a proxy pays to absorb or forward one request,
    /// microseconds.
    pub proxy_cpu_us: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig { count: 0, hot_threshold: 24.0, half_life_us: 250_000, proxy_cpu_us: 20 }
    }
}

impl ProxyConfig {
    /// Whether the proxy tier is active.
    pub fn enabled(&self) -> bool {
        self.count > 0
    }
}

/// EWMA hot-object detector: a decayed touch counter per item. A stream
/// of `r` touches/second converges on a value of about
/// `r * half_life / ln 2`, so the threshold picks out items whose
/// *sustained* rate is high, not one-off bursts.
#[derive(Clone, Debug)]
pub struct HotDetector {
    half_life_us: f64,
    rates: FxHashMap<InodeId, (f64, u64)>,
}

impl HotDetector {
    /// New detector with the given half-life (microseconds).
    pub fn new(half_life_us: u64) -> Self {
        HotDetector { half_life_us: half_life_us.max(1) as f64, rates: FxHashMap::default() }
    }

    fn decayed(&self, entry: &(f64, u64), now_us: u64) -> f64 {
        let dt = now_us.saturating_sub(entry.1) as f64;
        entry.0 * (-dt / self.half_life_us).exp2()
    }

    /// Records one touch of `item` at `now_us`; returns the new decayed
    /// counter value.
    pub fn record(&mut self, item: InodeId, now_us: u64) -> f64 {
        let e = self.rates.entry(item).or_insert((0.0, now_us));
        let dt = now_us.saturating_sub(e.1) as f64;
        e.0 = e.0 * (-dt / self.half_life_us).exp2() + 1.0;
        e.1 = now_us;
        e.0
    }

    /// The decayed counter of `item` at `now_us` without touching it.
    pub fn value(&self, item: InodeId, now_us: u64) -> f64 {
        self.rates.get(&item).map(|e| self.decayed(e, now_us)).unwrap_or(0.0)
    }

    /// Drops all state for `item` (unlinked inodes must not linger).
    pub fn forget(&mut self, item: InodeId) {
        self.rates.remove(&item);
    }

    /// Number of tracked items (inspection hook).
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the detector tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

/// Absorption counters for one proxy. Registered with the observability
/// layer only when the tier is enabled, so proxy-off metric exports are
/// unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Negative lookups answered from the proxy.
    pub neg_hits: u64,
    /// Negative entries learned from authority misses.
    pub neg_inserts: u64,
    /// Reads of hot cached items answered at the proxy.
    pub read_absorbs: u64,
    /// Write deltas coalesced at the proxy.
    pub writes_coalesced: u64,
    /// Flush rounds that pushed at least one delta.
    pub flush_batches: u64,
    /// Individual item deltas pushed to authorities.
    pub flushed_items: u64,
    /// Hot requests the proxy had to relay to the cluster.
    pub forwarded: u64,
    /// Negative entries dropped by create/rename invalidation.
    pub invalidations: u64,
}

/// The engine-agnostic state of one proxy: hot detector, negative-lookup
/// cache, read-through cache and write coalescer, plus the invalidation
/// protocol tying them together. All per-item state is keyed by
/// [`InodeId`]; any output derived from iteration is sorted first, so the
/// hash maps never leak ordering into deterministic reports.
#[derive(Clone, Debug)]
pub struct ProxyCore {
    hot_threshold: f64,
    detector: HotDetector,
    /// Names known to be absent, per directory.
    neg: FxHashMap<InodeId, FxHashSet<String>>,
    /// Hot items the proxy has read through and may answer for.
    cached: FxHashSet<InodeId>,
    /// Coalesced write deltas (count of absorbed size/mtime bumps).
    pending: FxHashMap<InodeId, u64>,
    /// Absorption counters.
    pub stats: ProxyStats,
}

impl ProxyCore {
    /// New proxy with the given detector tuning.
    pub fn new(cfg: &ProxyConfig) -> Self {
        ProxyCore {
            hot_threshold: cfg.hot_threshold,
            detector: HotDetector::new(cfg.half_life_us),
            neg: FxHashMap::default(),
            cached: FxHashSet::default(),
            pending: FxHashMap::default(),
            stats: ProxyStats::default(),
        }
    }

    // ---- hot detection -------------------------------------------------

    /// Records one touch of `item` and reports whether it is now hot.
    pub fn observe(&mut self, item: InodeId, now_us: u64) -> bool {
        self.detector.record(item, now_us) >= self.hot_threshold
    }

    /// Whether `item` is currently hot (without recording a touch).
    pub fn is_hot(&self, item: InodeId, now_us: u64) -> bool {
        self.detector.value(item, now_us) >= self.hot_threshold
    }

    // ---- negative-lookup cache ----------------------------------------

    /// Whether `(dir, name)` is cached as absent; counts a hit.
    pub fn neg_lookup(&mut self, dir: InodeId, name: &str) -> bool {
        let hit = self.neg.get(&dir).is_some_and(|names| names.contains(name));
        if hit {
            self.stats.neg_hits += 1;
        }
        hit
    }

    /// Whether `(dir, name)` is cached as absent (pure; no counter).
    pub fn neg_contains(&self, dir: InodeId, name: &str) -> bool {
        self.neg.get(&dir).is_some_and(|names| names.contains(name))
    }

    /// Learns from an authority miss: `name` is absent in `dir`.
    pub fn note_negative(&mut self, dir: InodeId, name: &str) {
        if self.neg.entry(dir).or_default().insert(name.to_owned()) {
            self.stats.neg_inserts += 1;
        }
    }

    // ---- read cache ----------------------------------------------------

    /// Marks `item` as read through this proxy (absorbable from now on).
    pub fn note_cached(&mut self, item: InodeId) {
        self.cached.insert(item);
    }

    /// Whether the proxy may answer a read of `item` itself.
    pub fn is_cached(&self, item: InodeId) -> bool {
        self.cached.contains(&item)
    }

    // ---- write coalescing ----------------------------------------------

    /// Absorbs one monotone write against `item`; returns the coalesced
    /// delta count now pending.
    pub fn absorb_write(&mut self, item: InodeId) -> u64 {
        self.stats.writes_coalesced += 1;
        let e = self.pending.entry(item).or_insert(0);
        *e += 1;
        *e
    }

    /// Whether `item` has unflushed coalesced deltas.
    pub fn has_pending(&self, item: InodeId) -> bool {
        self.pending.contains_key(&item)
    }

    /// Removes and returns the pending delta for one item (read-triggered
    /// flush: the authority must see the deltas before serving the read).
    pub fn take_pending(&mut self, item: InodeId) -> Option<u64> {
        let d = self.pending.remove(&item);
        if d.is_some() {
            self.stats.flushed_items += 1;
        }
        d
    }

    /// Drains every pending delta, sorted by inode id so downstream
    /// message order never depends on hash-map iteration.
    pub fn drain_pending(&mut self) -> Vec<(InodeId, u64)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let mut v: Vec<(InodeId, u64)> = self.pending.drain().collect();
        v.sort_unstable();
        self.stats.flush_batches += 1;
        self.stats.flushed_items += v.len() as u64;
        v
    }

    // ---- invalidation protocol ----------------------------------------

    /// A name was materialized in `dir` (create/mkdir/link/rename): any
    /// cached negative for it is now stale and must die, and any absorbed
    /// listing of `dir` is stale too.
    pub fn invalidate_name(&mut self, dir: InodeId, name: &str) {
        if let Some(names) = self.neg.get_mut(&dir) {
            if names.remove(name) {
                self.stats.invalidations += 1;
            }
            if names.is_empty() {
                self.neg.remove(&dir);
            }
        }
        self.dir_mutated(dir);
    }

    /// `dir`'s entry set changed: a previously absorbed readdir of it can
    /// no longer be served from the proxy.
    pub fn dir_mutated(&mut self, dir: InodeId) {
        self.cached.remove(&dir);
    }

    /// `item` died (unlink dropped its last link): purge every trace so
    /// the proxy can never answer for, or push deltas to, a dead inode.
    pub fn forget_item(&mut self, item: InodeId) {
        self.cached.remove(&item);
        self.pending.remove(&item);
        self.detector.forget(item);
        self.neg.remove(&item);
    }

    /// A non-coalescable mutation of `item` went to the cluster: drop the
    /// proxy's read-through copy (it is stale now).
    pub fn invalidate_item(&mut self, item: InodeId) {
        self.cached.remove(&item);
    }

    /// Whether any state mentions `item` (leak check for tests).
    pub fn mentions(&self, item: InodeId) -> bool {
        self.cached.contains(&item)
            || self.pending.contains_key(&item)
            || self.detector.value(item, u64::MAX) != 0.0
            || self.neg.contains_key(&item)
    }

    /// Number of unflushed coalesced items (inspection hook).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ProxyCore {
        ProxyCore::new(&ProxyConfig { count: 1, ..Default::default() })
    }

    #[test]
    fn detector_decays_by_half_life() {
        let mut d = HotDetector::new(1000);
        for _ in 0..8 {
            d.record(InodeId(7), 0);
        }
        let v0 = d.value(InodeId(7), 0);
        assert_eq!(v0, 8.0);
        let v1 = d.value(InodeId(7), 1000);
        assert!((v1 - 4.0).abs() < 1e-9, "one half-life halves the counter, got {v1}");
        assert_eq!(d.value(InodeId(8), 0), 0.0);
        d.forget(InodeId(7));
        assert_eq!(d.value(InodeId(7), 0), 0.0);
    }

    #[test]
    fn sustained_touches_cross_the_threshold() {
        let mut p = core();
        let mut hot = false;
        for i in 0..2000u64 {
            hot = p.observe(InodeId(42), i * 100); // 10k touches/s
        }
        assert!(hot, "sustained 10k/s stream must register as hot");
        assert!(!p.is_hot(InodeId(42), u64::MAX / 2), "far future: decayed cold");
    }

    #[test]
    fn negative_cache_invalidates_on_create() {
        let mut p = core();
        let dir = InodeId(3);
        assert!(!p.neg_lookup(dir, "gone"));
        p.note_negative(dir, "gone");
        assert!(p.neg_lookup(dir, "gone"));
        p.invalidate_name(dir, "gone");
        assert!(!p.neg_lookup(dir, "gone"), "created name must not stay negative");
        assert_eq!(p.stats.neg_hits, 1);
        assert_eq!(p.stats.neg_inserts, 1);
        assert_eq!(p.stats.invalidations, 1);
    }

    #[test]
    fn coalescer_drains_sorted_and_empties() {
        let mut p = core();
        for id in [9u64, 2, 5, 2, 9, 9] {
            p.absorb_write(InodeId(id));
        }
        let drained = p.drain_pending();
        assert_eq!(drained, vec![(InodeId(2), 2), (InodeId(5), 1), (InodeId(9), 3)]);
        assert_eq!(p.pending_len(), 0);
        assert!(p.drain_pending().is_empty(), "second drain finds nothing");
        assert_eq!(p.stats.flush_batches, 1);
        assert_eq!(p.stats.flushed_items, 3);
    }

    #[test]
    fn forget_item_purges_every_table() {
        let mut p = core();
        let id = InodeId(11);
        p.observe(id, 0);
        p.note_cached(id);
        p.absorb_write(id);
        p.note_negative(id, "child"); // id as a directory
        assert!(p.mentions(id));
        p.forget_item(id);
        assert!(!p.mentions(id), "unlinked inode must leave no trace");
    }

    #[test]
    fn dir_mutation_drops_absorbed_listing_only() {
        let mut p = core();
        let dir = InodeId(4);
        let file = InodeId(5);
        p.note_cached(dir);
        p.note_cached(file);
        p.dir_mutated(dir);
        assert!(!p.is_cached(dir), "mutated dir listing is stale");
        assert!(p.is_cached(file), "unrelated item survives");
    }
}

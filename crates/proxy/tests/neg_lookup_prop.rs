//! Property test for the negative-lookup invalidation protocol.
//!
//! 10 000 seeded interleavings of lookup-miss / create / rename / unlink
//! (plus read-through caching and write coalescing) against one hot
//! directory, checked after every step against a flat reference model:
//!
//! * the proxy never holds a *stale negative* — a name cached as absent
//!   that the reference says exists, and
//! * an unlinked inode never *leaks* — no proxy table still mentions it.

use std::collections::BTreeMap;

use dynmds_event::SimRng;
use dynmds_namespace::InodeId;
use dynmds_proxy::{ProxyConfig, ProxyCore};

const SEEDS: u64 = 10_000;
const OPS_PER_SEED: usize = 40;
const NAMES: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

fn check_no_stale_negative(p: &ProxyCore, dir: InodeId, reference: &BTreeMap<String, u64>) {
    for name in NAMES {
        if p.neg_contains(dir, name) {
            assert!(
                !reference.contains_key(name),
                "stale negative: '{name}' cached as absent but exists in the reference"
            );
        }
    }
}

#[test]
fn never_stale_negative_never_leaked_entry() {
    let dir = InodeId(1);
    let cfg = ProxyConfig { count: 1, ..Default::default() };
    for seed in 0..SEEDS {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9E6_1000);
        let mut p = ProxyCore::new(&cfg);
        // Reference truth for the hot directory: name -> inode id.
        let mut reference: BTreeMap<String, u64> = BTreeMap::new();
        let mut next_id = 100u64;
        let mut unlinked: Vec<u64> = Vec::new();

        for step in 0..OPS_PER_SEED {
            let name = NAMES[rng.below(NAMES.len() as u64) as usize];
            match rng.below(100) {
                // Lookup: a cached negative answers at the proxy; an
                // authority miss teaches the proxy the negative.
                0..=39 => {
                    if p.neg_lookup(dir, name) {
                        assert!(
                            !reference.contains_key(name),
                            "seed {seed} step {step}: proxy served a stale negative for '{name}'"
                        );
                    } else if !reference.contains_key(name) {
                        p.note_negative(dir, name);
                    }
                }
                // Create: materializes the name, must kill its negative.
                40..=59 => {
                    if !reference.contains_key(name) {
                        reference.insert(name.to_owned(), next_id);
                        next_id += 1;
                        p.invalidate_name(dir, name);
                    }
                }
                // Rename: the new name materializes, the old one vanishes.
                60..=74 => {
                    let new_name = NAMES[rng.below(NAMES.len() as u64) as usize];
                    if let Some(&id) = reference.get(name) {
                        if !reference.contains_key(new_name) {
                            reference.remove(name);
                            reference.insert(new_name.to_owned(), id);
                            p.invalidate_name(dir, new_name);
                            p.dir_mutated(dir);
                        }
                    }
                }
                // Unlink: the inode dies; nothing may still mention it.
                75..=89 => {
                    if let Some(id) = reference.remove(name) {
                        p.forget_item(InodeId(id));
                        p.dir_mutated(dir);
                        unlinked.push(id);
                    }
                }
                // Hot-path traffic against a live entry: read-through
                // caching and write coalescing build up state that a later
                // unlink must fully purge.
                _ => {
                    if let Some(&id) = reference.get(name) {
                        p.observe(InodeId(id), step as u64 * 50);
                        if rng.chance(0.5) {
                            p.note_cached(InodeId(id));
                        } else {
                            p.absorb_write(InodeId(id));
                        }
                    }
                }
            }

            check_no_stale_negative(&p, dir, &reference);
            for &id in &unlinked {
                assert!(
                    !p.mentions(InodeId(id)),
                    "seed {seed} step {step}: unlinked inode {id} leaked in proxy state"
                );
            }
        }
    }
}

//! Property tests: workload generators produce valid, deterministic
//! operation streams on arbitrary snapshots.

use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::{ClientId, NamespaceSpec};
use dynmds_workload::{
    FlashCrowd, GeneralWorkload, Op, ScientificWorkload, Workload, WorkloadConfig, WriteCrowd,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated op targets a live inode, for any seed combination.
    #[test]
    fn general_ops_always_valid(snap_seed in 0u64..200, wl_seed in 0u64..200, n_clients in 1usize..12) {
        let snap = NamespaceSpec { users: 4, seed: snap_seed, ..Default::default() }.generate();
        let mut wl = GeneralWorkload::new(
            WorkloadConfig { seed: wl_seed, ..Default::default() },
            n_clients,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        for i in 0..300u32 {
            let client = ClientId(i % n_clients as u32);
            let op = wl.next_op(&snap.ns, client, SimTime::from_micros(i as u64));
            prop_assert!(snap.ns.is_alive(op.target()), "{op:?} targets a dead inode");
            // Namespace ops name directories as their anchor.
            if let Op::Create { dir, .. } | Op::Mkdir { dir, .. } = &op {
                prop_assert!(snap.ns.is_dir(*dir));
            }
        }
    }

    /// Same seeds → identical stream; different workload seeds diverge.
    #[test]
    fn general_is_deterministic_per_seed(snap_seed in 0u64..100, wl_seed in 0u64..100) {
        let snap = NamespaceSpec { users: 4, seed: snap_seed, ..Default::default() }.generate();
        let mk = |s: u64| GeneralWorkload::new(
            WorkloadConfig { seed: s, ..Default::default() },
            4,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        let mut a = mk(wl_seed);
        let mut b = mk(wl_seed);
        let mut c = mk(wl_seed.wrapping_add(1));
        let mut diverged = false;
        for i in 0..200u32 {
            let client = ClientId(i % 4);
            let oa = a.next_op(&snap.ns, client, SimTime::ZERO);
            let ob = b.next_op(&snap.ns, client, SimTime::ZERO);
            prop_assert_eq!(&oa, &ob, "same seed must match");
            if oa != c.next_op(&snap.ns, client, SimTime::ZERO) {
                diverged = true;
            }
        }
        prop_assert!(diverged, "different seeds should diverge somewhere");
    }

    /// Crowd workloads: exactly one open per client, then steady repeats
    /// of the same target.
    #[test]
    fn crowds_open_once_then_repeat(n in 1usize..50) {
        let ns = dynmds_namespace::Namespace::new();
        let target = ns.root();
        let mut fc = FlashCrowd::new(target, n);
        let mut wc = WriteCrowd::new(target, n);
        for c in 0..n as u32 {
            prop_assert_eq!(fc.next_op(&ns, ClientId(c), SimTime::ZERO), Op::Open(target));
            prop_assert_eq!(wc.next_op(&ns, ClientId(c), SimTime::ZERO), Op::Open(target));
        }
        for c in 0..n as u32 {
            prop_assert_eq!(fc.next_op(&ns, ClientId(c), SimTime::ZERO), Op::Stat(target));
            prop_assert_eq!(wc.next_op(&ns, ClientId(c), SimTime::ZERO), Op::SetAttr(target));
        }
    }

    /// Scientific bursts are synchronized: inside a burst window all
    /// clients aim at one target; outside, activity scatters.
    #[test]
    fn scientific_bursts_synchronize(seed in 0u64..100) {
        let snap = NamespaceSpec { users: 6, seed, ..Default::default() }.generate();
        let mut wl = ScientificWorkload::new(
            seed ^ 1,
            6,
            &snap.user_homes,
            &snap.shared_roots,
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        let burst_t = SimTime::from_secs(1);
        let targets: std::collections::HashSet<_> = (0..6)
            .map(|c| wl.next_op(&snap.ns, ClientId(c), burst_t).target())
            .collect();
        prop_assert_eq!(targets.len(), 1, "burst targets one item");
        for i in 0..100u32 {
            let op = wl.next_op(&snap.ns, ClientId(i % 6), SimTime::from_secs(5));
            prop_assert!(snap.ns.is_alive(op.target()));
        }
    }
}

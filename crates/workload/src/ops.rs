//! Metadata operations and the observed operation mix.

use dynmds_event::SimRng;
use dynmds_namespace::InodeId;

/// A metadata operation as submitted by a client (§2.2: "operations like
/// open, close, and setattr are applied to … inodes, and operations like
/// rename and unlink manipulate the directory entries").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read an inode's attributes.
    Stat(InodeId),
    /// Resolve `name` inside `dir` (may miss: the only op whose common
    /// case is a *negative* answer, which the proxy tier caches).
    Lookup {
        /// Directory being searched.
        dir: InodeId,
        /// Entry name being resolved.
        name: String,
    },
    /// Open a file (permission check + inode fetch).
    Open(InodeId),
    /// Close a previously opened file (size/mtime update).
    Close(InodeId),
    /// List a directory.
    Readdir(InodeId),
    /// Create a file in `dir`.
    Create {
        /// Containing directory.
        dir: InodeId,
        /// New entry name (unique per generator).
        name: String,
    },
    /// Create a subdirectory in `dir`.
    Mkdir {
        /// Containing directory.
        dir: InodeId,
        /// New entry name.
        name: String,
    },
    /// Remove the entry `name` from `dir`.
    Unlink {
        /// Containing directory.
        dir: InodeId,
        /// Entry to remove.
        name: String,
    },
    /// Rename `name` within `dir` to `new_name` (same-directory renames
    /// dominate real workloads).
    Rename {
        /// Containing directory.
        dir: InodeId,
        /// Old name.
        name: String,
        /// New name.
        new_name: String,
    },
    /// Change permissions of an inode. Directory chmods are the expensive
    /// case for Lazy Hybrid.
    Chmod {
        /// Target inode.
        target: InodeId,
        /// New mode bits.
        mode: u16,
    },
    /// Update timestamps/attributes of an inode (setattr/utimes).
    SetAttr(InodeId),
    /// Add a hard link `dir/name` → `target` (rare; exercises the anchor
    /// table of §4.5).
    Link {
        /// Existing file being linked.
        target: InodeId,
        /// Directory receiving the new dentry.
        dir: InodeId,
        /// New link name.
        name: String,
    },
}

impl Op {
    /// The kind tag for statistics.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Stat(_) => OpKind::Stat,
            Op::Lookup { .. } => OpKind::Lookup,
            Op::Open(_) => OpKind::Open,
            Op::Close(_) => OpKind::Close,
            Op::Readdir(_) => OpKind::Readdir,
            Op::Create { .. } => OpKind::Create,
            Op::Mkdir { .. } => OpKind::Mkdir,
            Op::Unlink { .. } => OpKind::Unlink,
            Op::Rename { .. } => OpKind::Rename,
            Op::Chmod { .. } => OpKind::Chmod,
            Op::SetAttr(_) => OpKind::SetAttr,
            Op::Link { .. } => OpKind::Link,
        }
    }

    /// Whether this operation mutates metadata (must be journaled).
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            Op::Close(_)
                | Op::Create { .. }
                | Op::Mkdir { .. }
                | Op::Unlink { .. }
                | Op::Rename { .. }
                | Op::Chmod { .. }
                | Op::SetAttr(_)
                | Op::Link { .. }
        )
    }

    /// The primary inode the operation touches (the directory for
    /// namespace ops).
    pub fn target(&self) -> InodeId {
        match self {
            Op::Stat(id) | Op::Open(id) | Op::Close(id) | Op::Readdir(id) | Op::SetAttr(id) => *id,
            Op::Create { dir, .. }
            | Op::Mkdir { dir, .. }
            | Op::Unlink { dir, .. }
            | Op::Rename { dir, .. }
            | Op::Lookup { dir, .. } => *dir,
            Op::Chmod { target, .. } => *target,
            Op::Link { target, .. } => *target,
        }
    }
}

/// Operation kinds, for accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    Stat,
    Lookup,
    Open,
    Close,
    Readdir,
    Create,
    Mkdir,
    Unlink,
    Rename,
    Chmod,
    SetAttr,
    Link,
}

/// Relative frequencies of *initiating* operations. `Close` is not listed:
/// every `Open` enqueues its own `Close` (the open-close pair of §2.2), and
/// `Readdir` enqueues a burst of `Stat`s.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Weight of `Stat`.
    pub stat: f64,
    /// Weight of `Open` (implies a later `Close`).
    pub open: f64,
    /// Weight of `Readdir` (implies a `Stat` burst).
    pub readdir: f64,
    /// Weight of `Create`.
    pub create: f64,
    /// Weight of `Mkdir`.
    pub mkdir: f64,
    /// Weight of `Unlink`.
    pub unlink: f64,
    /// Weight of `Rename`.
    pub rename: f64,
    /// Weight of `Chmod`.
    pub chmod: f64,
    /// Weight of `SetAttr`.
    pub setattr: f64,
    /// Weight of `Link` (hard links; "rare enough", §4.5).
    pub link: f64,
}

impl OpMix {
    /// General-purpose mix shaped after the Roselli et al. 2000 study:
    /// reads dominate, namespace changes and permission changes are rare.
    pub fn general() -> Self {
        OpMix {
            stat: 42.0,
            open: 22.0,
            readdir: 8.0,
            create: 3.0,
            mkdir: 0.4,
            unlink: 2.0,
            rename: 0.4,
            chmod: 0.6,
            setattr: 1.6,
            link: 0.1,
        }
    }

    /// Create-heavy mix used by clients that have just migrated into new
    /// territory (Figure 5: "create new files in portions of the
    /// hierarchy served by a single MDS").
    pub fn create_heavy() -> Self {
        OpMix {
            stat: 15.0,
            open: 10.0,
            readdir: 3.0,
            create: 60.0,
            mkdir: 4.0,
            unlink: 1.0,
            rename: 0.5,
            chmod: 0.5,
            setattr: 6.0,
            link: 0.0,
        }
    }

    /// Read-only mix (scientific analysis phases).
    pub fn read_only() -> Self {
        OpMix {
            stat: 55.0,
            open: 35.0,
            readdir: 10.0,
            create: 0.0,
            mkdir: 0.0,
            unlink: 0.0,
            rename: 0.0,
            chmod: 0.0,
            setattr: 0.0,
            link: 0.0,
        }
    }

    /// Samples an initiating op kind.
    pub fn sample(&self, rng: &mut SimRng) -> OpKind {
        const KINDS: [OpKind; 10] = [
            OpKind::Stat,
            OpKind::Open,
            OpKind::Readdir,
            OpKind::Create,
            OpKind::Mkdir,
            OpKind::Unlink,
            OpKind::Rename,
            OpKind::Chmod,
            OpKind::SetAttr,
            OpKind::Link,
        ];
        let weights = [
            self.stat,
            self.open,
            self.readdir,
            self.create,
            self.mkdir,
            self.unlink,
            self.rename,
            self.chmod,
            self.setattr,
            self.link,
        ];
        KINDS[rng.weighted_index(&weights)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn kind_tags_match() {
        assert_eq!(Op::Stat(InodeId(1)).kind(), OpKind::Stat);
        assert_eq!(Op::Create { dir: InodeId(1), name: "x".into() }.kind(), OpKind::Create);
        assert_eq!(
            Op::Rename { dir: InodeId(1), name: "a".into(), new_name: "b".into() }.kind(),
            OpKind::Rename
        );
    }

    #[test]
    fn update_classification() {
        assert!(!Op::Stat(InodeId(1)).is_update());
        assert!(!Op::Lookup { dir: InodeId(1), name: "x".into() }.is_update());
        assert!(!Op::Open(InodeId(1)).is_update());
        assert!(!Op::Readdir(InodeId(1)).is_update());
        assert!(Op::Close(InodeId(1)).is_update());
        assert!(Op::Chmod { target: InodeId(1), mode: 0o600 }.is_update());
        assert!(Op::Unlink { dir: InodeId(1), name: "x".into() }.is_update());
    }

    #[test]
    fn target_extraction() {
        assert_eq!(Op::Open(InodeId(9)).target(), InodeId(9));
        assert_eq!(Op::Create { dir: InodeId(3), name: "x".into() }.target(), InodeId(3));
        assert_eq!(Op::Lookup { dir: InodeId(4), name: "x".into() }.target(), InodeId(4));
        assert_eq!(Op::Chmod { target: InodeId(7), mode: 0 }.target(), InodeId(7));
    }

    #[test]
    fn general_mix_is_read_dominated() {
        let mut rng = SimRng::seed_from_u64(1);
        let mix = OpMix::general();
        let mut counts: HashMap<OpKind, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(mix.sample(&mut rng)).or_insert(0) += 1;
        }
        let stats = counts[&OpKind::Stat];
        let renames = counts.get(&OpKind::Rename).copied().unwrap_or(0);
        assert!(stats > 7_000, "stats should dominate: {counts:?}");
        assert!(renames < 300, "renames should be rare: {counts:?}");
        assert!(!counts.contains_key(&OpKind::Close), "close never initiates");
    }

    #[test]
    fn create_heavy_mix_is_create_dominated() {
        let mut rng = SimRng::seed_from_u64(2);
        let mix = OpMix::create_heavy();
        let creates = (0..10_000).filter(|_| mix.sample(&mut rng) == OpKind::Create).count();
        assert!(creates > 5_000, "got {creates}");
    }

    #[test]
    fn read_only_mix_never_mutates() {
        let mut rng = SimRng::seed_from_u64(3);
        let mix = OpMix::read_only();
        for _ in 0..5_000 {
            let k = mix.sample(&mut rng);
            assert!(matches!(k, OpKind::Stat | OpKind::Open | OpKind::Readdir), "unexpected {k:?}");
        }
    }
}

//! Adversarial hotspot generators for the proxy-tier experiment
//! (ROADMAP item 4).
//!
//! The paper's traffic control replicates *read*-hot metadata and
//! redirects clients at it (§4.4, Figure 7). These generators are built
//! to probe where that defense cannot follow:
//!
//! * [`CreateStorm`] — every client creates files in one shared
//!   directory. All ops are updates, so replication never engages and the
//!   directory's authority serializes the whole cluster's demand.
//! * [`RenameStorm`] — clients hammer renames in directories spread
//!   across authority boundaries; again pure updates.
//! * [`DeepPathHerd`] — a thundering herd of stats against one item at
//!   maximum path depth (worst-case traversal per request).
//! * [`LookupChurn`] — wraps any workload with negative lookups, creates,
//!   unlinks and renames against one hot directory; the DST harness uses
//!   it to stress the proxy's negative-lookup invalidation protocol.
//!
//! All four are RNG-free or per-client-seeded, so their operation streams
//! are independent of how clients are partitioned across shards.

use dynmds_event::{SimRng, SimTime};
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// Every client creates unique files in the same directory, forever.
pub struct CreateStorm {
    dir: InodeId,
    n_clients: usize,
    seqs: Vec<u64>,
}

impl CreateStorm {
    /// A storm of `n_clients` all creating in `dir`.
    pub fn new(dir: InodeId, n_clients: usize) -> Self {
        assert!(n_clients > 0, "need at least one client");
        CreateStorm { dir, n_clients, seqs: vec![0; n_clients] }
    }

    /// The shared target directory.
    pub fn dir(&self) -> InodeId {
        self.dir
    }
}

impl Workload for CreateStorm {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let i = client.index();
        self.seqs[i] += 1;
        Op::Create { dir: self.dir, name: format!("s{}_{}", client.0, self.seqs[i]) }
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

/// Clients rename entries back and forth inside directories spread across
/// authority boundaries. Each client's first op creates its own entry in
/// its directory; every later op renames it to the alternate name.
pub struct RenameStorm {
    dirs: Vec<InodeId>,
    n_clients: usize,
    seqs: Vec<u64>,
}

impl RenameStorm {
    /// A storm of `n_clients` spread round-robin over `dirs` (which should
    /// live under different authorities for the cross-boundary stress).
    pub fn new(dirs: Vec<InodeId>, n_clients: usize) -> Self {
        assert!(n_clients > 0, "need at least one client");
        assert!(!dirs.is_empty(), "need target directories");
        RenameStorm { dirs, n_clients, seqs: vec![0; n_clients] }
    }

    /// The directory `client` works in.
    pub fn dir_of(&self, client: ClientId) -> InodeId {
        self.dirs[client.index() % self.dirs.len()]
    }
}

impl Workload for RenameStorm {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let i = client.index();
        let dir = self.dirs[i % self.dirs.len()];
        let seq = self.seqs[i];
        self.seqs[i] += 1;
        if seq == 0 {
            return Op::Create { dir, name: format!("r{}_a", client.0) };
        }
        let (from, to) = if seq % 2 == 1 { ("a", "b") } else { ("b", "a") };
        Op::Rename {
            dir,
            name: format!("r{}_{}", client.0, from),
            new_name: format!("r{}_{}", client.0, to),
        }
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

/// A thundering herd of stats against one deeply nested item: every
/// request pays the full path traversal at whichever node serves it.
pub struct DeepPathHerd {
    target: InodeId,
    n_clients: usize,
}

impl DeepPathHerd {
    /// A herd of `n_clients` statting `target`.
    pub fn new(target: InodeId, n_clients: usize) -> Self {
        assert!(n_clients > 0, "need at least one client");
        DeepPathHerd { target, n_clients }
    }

    /// The deepest inode in `ns` (first one found at maximum depth, so
    /// the choice is deterministic for a given snapshot).
    pub fn deepest_item(ns: &Namespace) -> InodeId {
        let mut best = ns.root();
        let mut best_depth = 0;
        for id in ns.walk(ns.root()) {
            let depth = ns.ancestors(id).count();
            if depth > best_depth {
                best = id;
                best_depth = depth;
            }
        }
        best
    }

    /// The shared target.
    pub fn target(&self) -> InodeId {
        self.target
    }
}

impl Workload for DeepPathHerd {
    fn next_op(&mut self, _ns: &Namespace, _client: ClientId, _now: SimTime) -> Op {
        Op::Stat(self.target)
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

/// Names the churn cycles through; a small pool maximizes collisions
/// between lookups, creates, unlinks and renames.
const CHURN_NAMES: [&str; 6] = ["nl0", "nl1", "nl2", "nl3", "nl4", "nl5"];

/// Wraps a workload with hot-directory churn: a fraction of every
/// client's ops becomes a lookup / create / unlink / rename against one
/// shared directory. Lookups dominate and mostly *miss*, which is exactly
/// the stream the proxy's negative-lookup cache absorbs — and the
/// interleaved creates/renames are what must invalidate it.
pub struct LookupChurn<W: Workload> {
    inner: W,
    dir: InodeId,
    churn_p: f64,
    rngs: Vec<SimRng>,
}

impl<W: Workload> LookupChurn<W> {
    /// Wraps `inner`; each op independently becomes churn against `dir`
    /// with probability `churn_p`. Per-client RNG streams keep the op
    /// sequence invariant under client-to-shard partitioning.
    pub fn new(inner: W, dir: InodeId, churn_p: f64, seed: u64) -> Self {
        let mut root = SimRng::seed_from_u64(seed);
        let rngs = (0..inner.clients()).map(|i| root.fork(i as u64)).collect();
        LookupChurn { inner, dir, churn_p, rngs }
    }

    /// The churned directory.
    pub fn dir(&self) -> InodeId {
        self.dir
    }
}

impl<W: Workload> Workload for LookupChurn<W> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        let rng = &mut self.rngs[client.index()];
        if !rng.chance(self.churn_p) {
            return self.inner.next_op(ns, client, now);
        }
        let name = CHURN_NAMES[rng.below(CHURN_NAMES.len() as u64) as usize].to_owned();
        match rng.below(100) {
            0..=49 => Op::Lookup { dir: self.dir, name },
            50..=69 => Op::Create { dir: self.dir, name },
            70..=84 => Op::Unlink { dir: self.dir, name },
            _ => {
                let new_name = CHURN_NAMES[rng.below(CHURN_NAMES.len() as u64) as usize].to_owned();
                Op::Rename { dir: self.dir, name, new_name }
            }
        }
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }

    fn think_scale(&self, now: SimTime) -> f64 {
        self.inner.think_scale(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;

    #[test]
    fn create_storm_names_are_unique_per_client() {
        let ns = Namespace::new();
        let mut s = CreateStorm::new(InodeId(5), 2);
        let a = s.next_op(&ns, ClientId(0), SimTime::ZERO);
        let b = s.next_op(&ns, ClientId(0), SimTime::ZERO);
        let c = s.next_op(&ns, ClientId(1), SimTime::ZERO);
        match (&a, &b, &c) {
            (
                Op::Create { dir: d1, name: n1 },
                Op::Create { dir: d2, name: n2 },
                Op::Create { dir: d3, name: n3 },
            ) => {
                assert_eq!((*d1, *d2, *d3), (InodeId(5), InodeId(5), InodeId(5)));
                assert_ne!(n1, n2);
                assert_ne!(n1, n3);
            }
            other => panic!("expected creates, got {other:?}"),
        }
    }

    #[test]
    fn rename_storm_creates_then_alternates() {
        let ns = Namespace::new();
        let mut s = RenameStorm::new(vec![InodeId(3), InodeId(4)], 2);
        assert_eq!(
            s.next_op(&ns, ClientId(1), SimTime::ZERO),
            Op::Create { dir: InodeId(4), name: "r1_a".into() }
        );
        assert_eq!(
            s.next_op(&ns, ClientId(1), SimTime::ZERO),
            Op::Rename { dir: InodeId(4), name: "r1_a".into(), new_name: "r1_b".into() }
        );
        assert_eq!(
            s.next_op(&ns, ClientId(1), SimTime::ZERO),
            Op::Rename { dir: InodeId(4), name: "r1_b".into(), new_name: "r1_a".into() }
        );
        assert_eq!(s.dir_of(ClientId(0)), InodeId(3));
    }

    #[test]
    fn deep_herd_finds_the_deepest_item() {
        let snap = NamespaceSpec { users: 4, seed: 11, ..Default::default() }.generate();
        let deep = DeepPathHerd::deepest_item(&snap.ns);
        let depth = snap.ns.ancestors(deep).count();
        for id in snap.ns.walk(snap.ns.root()) {
            assert!(snap.ns.ancestors(id).count() <= depth);
        }
        let mut herd = DeepPathHerd::new(deep, 3);
        assert_eq!(herd.next_op(&snap.ns, ClientId(2), SimTime::ZERO), Op::Stat(deep));
    }

    #[test]
    fn lookup_churn_is_partition_invariant() {
        // The same client must see the same op stream regardless of which
        // other clients were polled in between (shard partitioning).
        let ns = Namespace::new();
        let mk = || LookupChurn::new(CreateStorm::new(InodeId(9), 4), InodeId(2), 0.6, 42);
        let mut all = mk();
        let mut interleaved: Vec<Op> = Vec::new();
        for round in 0..20 {
            for c in 0..4u32 {
                let _ = round;
                interleaved.push(all.next_op(&ns, ClientId(c), SimTime::ZERO));
            }
        }
        let mut solo = mk();
        for c in 0..4u32 {
            for round in 0..20 {
                let op = solo.next_op(&ns, ClientId(c), SimTime::ZERO);
                assert_eq!(op, interleaved[round * 4 + c as usize], "client {c} round {round}");
            }
        }
    }

    #[test]
    fn lookup_churn_mixes_lookups_and_mutations() {
        let ns = Namespace::new();
        let mut wl = LookupChurn::new(CreateStorm::new(InodeId(9), 1), InodeId(2), 1.0, 7);
        let mut lookups = 0;
        let mut mutations = 0;
        for _ in 0..500 {
            match wl.next_op(&ns, ClientId(0), SimTime::ZERO) {
                Op::Lookup { dir, .. } => {
                    assert_eq!(dir, InodeId(2));
                    lookups += 1;
                }
                Op::Create { .. } | Op::Unlink { .. } | Op::Rename { .. } => mutations += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(lookups > 150, "lookups should dominate: {lookups}");
        assert!(mutations > 100, "mutations must interleave: {mutations}");
    }
}

//! General-purpose workload generator.
//!
//! Each client owns a *region* of the hierarchy (its home directory) and a
//! current working directory inside it. Operations follow the configured
//! [`OpMix`]; sequences the trace literature highlights are generated as
//! sequences (`open`→`close`, `readdir`→`stat` burst); a small fraction of
//! operations stray outside the region, which is what makes prefix caching
//! and replication matter.

use std::collections::VecDeque;

use dynmds_event::{SimRng, SimTime};
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::{Op, OpKind, OpMix};
use crate::Workload;

/// Tunables for [`GeneralWorkload`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Probability an operation targets the client's own region.
    pub locality: f64,
    /// Probability a local read targets a file in the *current working
    /// directory* rather than anywhere in the region — the directory
    /// locality of Floyd & Ellis that embedded-inode prefetching exploits.
    pub dir_affinity: f64,
    /// Probability of changing the working directory before an operation.
    pub navigate_prob: f64,
    /// `readdir` is followed by this many `stat`s (inclusive range),
    /// capped by directory size.
    pub readdir_stats: (usize, usize),
    /// Fraction of renames that move a whole directory (the expensive case
    /// for path-hashed strategies).
    pub dir_rename_fraction: f64,
    /// Fraction of chmods that hit a directory (the expensive case for
    /// Lazy Hybrid).
    pub dir_chmod_fraction: f64,
    /// Operation mix for all clients (individual clients may be overridden
    /// via [`GeneralWorkload::relocate`]).
    pub mix: OpMix,
    /// Seed for all per-client streams.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            locality: 0.9,
            dir_affinity: 0.75,
            navigate_prob: 0.15,
            readdir_stats: (3, 10),
            dir_rename_fraction: 0.1,
            dir_chmod_fraction: 0.15,
            mix: OpMix::general(),
            seed: 42,
        }
    }
}

struct ClientState {
    region: InodeId,
    cwd: InodeId,
    uid: u32,
    mix: OpMix,
    rng: SimRng,
    pending: VecDeque<Op>,
    create_seq: u64,
    /// Cached directories inside the region; refreshed when stale.
    region_dirs: Vec<InodeId>,
}

/// The general-purpose generator. See module docs.
pub struct GeneralWorkload {
    cfg: WorkloadConfig,
    clients: Vec<ClientState>,
    /// All region roots, used for non-local targeting.
    regions: Vec<InodeId>,
}

impl GeneralWorkload {
    /// Creates a workload of `n_clients` clients. `regions` are candidate
    /// home regions (typically one per user, from the snapshot); client
    /// `i` works in `regions[i % regions.len()]`. `shared` trees join the
    /// foreign-target candidate set.
    pub fn new(
        cfg: WorkloadConfig,
        n_clients: usize,
        regions: &[InodeId],
        shared: &[InodeId],
        ns: &Namespace,
    ) -> Self {
        assert!(!regions.is_empty(), "need at least one region");
        assert!(n_clients > 0, "need at least one client");
        let mut root_rng = SimRng::seed_from_u64(cfg.seed);
        let clients = (0..n_clients)
            .map(|i| {
                let region = regions[i % regions.len()];
                let uid = ns.inode(region).map(|ino| ino.perm.uid).unwrap_or(0);
                ClientState {
                    region,
                    cwd: region,
                    uid,
                    mix: cfg.mix,
                    rng: root_rng.fork(i as u64),
                    pending: VecDeque::new(),
                    create_seq: 0,
                    region_dirs: Vec::new(),
                }
            })
            .collect();
        let mut all_regions: Vec<InodeId> = regions.to_vec();
        all_regions.extend_from_slice(shared);
        GeneralWorkload { cfg, clients, regions: all_regions }
    }

    /// The uid a client authenticates as.
    pub fn uid_of(&self, client: ClientId) -> u32 {
        self.clients[client.index()].uid
    }

    /// Moves a client to a new region with a new mix — the Figure 5
    /// migration ("clients change their local region of activity and
    /// create new files").
    pub fn relocate(&mut self, client: ClientId, region: InodeId, mix: OpMix) {
        let c = &mut self.clients[client.index()];
        c.region = region;
        c.cwd = region;
        c.mix = mix;
        c.region_dirs.clear();
        c.pending.clear();
    }

    /// Current region of a client.
    pub fn region_of(&self, client: ClientId) -> InodeId {
        self.clients[client.index()].region
    }

    fn refresh_region_dirs(ns: &Namespace, c: &mut ClientState) {
        c.region_dirs.clear();
        // Cap the sweep: huge regions keep a sample of their dirs.
        for id in ns.walk(c.region).take(512) {
            if ns.is_dir(id) {
                c.region_dirs.push(id);
            }
        }
        if c.region_dirs.is_empty() {
            c.region_dirs.push(c.region);
        }
    }

    /// A short random walk from `root` toward the leaves; returns a file
    /// when one is hit (or `fallback_dir` behaviour: the deepest directory
    /// reached).
    fn random_walk(ns: &Namespace, rng: &mut SimRng, root: InodeId, want_file: bool) -> InodeId {
        // Count-then-select keeps this allocation-free: the walk runs for
        // a large share of generated ops, and materialising each level's
        // child list dominated workload-generation cost. The RNG stream
        // is identical to the collect-into-a-Vec formulation.
        let mut cur = root;
        for _ in 0..8 {
            let n_kids = match ns.child_count(cur) {
                Ok(n) => n,
                Err(_) => return cur,
            };
            if n_kids == 0 {
                return cur;
            }
            let i = rng.below(n_kids as u64) as usize;
            let pick =
                ns.children(cur).expect("counted above").nth(i).expect("index < child count").1;
            if !ns.is_dir(pick) {
                if want_file {
                    return pick;
                }
                // Want a directory: try again among dir children only.
                let n_dirs =
                    ns.children(cur).expect("counted above").filter(|&(_, k)| ns.is_dir(k)).count();
                if n_dirs == 0 {
                    return cur;
                }
                let j = rng.below(n_dirs as u64) as usize;
                cur = ns
                    .children(cur)
                    .expect("counted above")
                    .filter(|&(_, k)| ns.is_dir(k))
                    .nth(j)
                    .expect("index < dir count")
                    .1;
            } else {
                // Descend, sometimes stopping here.
                if !want_file && rng.chance(0.35) {
                    return pick;
                }
                cur = pick;
            }
        }
        cur
    }

    /// A random file in `dir`, if any. Allocates only the returned name.
    fn random_file_in(ns: &Namespace, rng: &mut SimRng, dir: InodeId) -> Option<(String, InodeId)> {
        let n_files = ns.children(dir).ok()?.filter(|&(_, c)| !ns.is_dir(c)).count();
        if n_files == 0 {
            return None;
        }
        let i = rng.below(n_files as u64) as usize;
        let (name, id) = ns
            .children(dir)
            .ok()?
            .filter(|&(_, c)| !ns.is_dir(c))
            .nth(i)
            .expect("index < file count");
        Some((name.to_string(), id))
    }

    fn generate(&mut self, ns: &Namespace, client: ClientId) -> Op {
        let c = &mut self.clients[client.index()];

        // Drain pending sequence ops first, skipping stale targets.
        while let Some(op) = c.pending.pop_front() {
            if ns.is_alive(op.target()) {
                return op;
            }
        }

        // Keep the client's view of its region fresh.
        if !ns.is_alive(c.cwd) || !ns.is_dir(c.cwd) {
            c.cwd = c.region;
        }
        if c.region_dirs.is_empty() || c.rng.chance(0.01) {
            Self::refresh_region_dirs(ns, c);
        }

        // Occasionally move the working directory within the region.
        if c.rng.chance(self.cfg.navigate_prob) {
            let i = c.rng.below(c.region_dirs.len() as u64) as usize;
            let cand = c.region_dirs[i];
            if ns.is_alive(cand) && ns.is_dir(cand) {
                c.cwd = cand;
            }
        }

        // Pick the base of this operation: local cwd or a foreign region.
        let local = c.rng.chance(self.cfg.locality);
        let base = if local {
            c.cwd
        } else {
            let i = c.rng.below(self.regions.len() as u64) as usize;
            self.regions[i]
        };
        let base = if ns.is_alive(base) { base } else { c.region };

        let kind = c.mix.sample(&mut c.rng);
        match kind {
            OpKind::Stat | OpKind::SetAttr | OpKind::Open => {
                // Directory locality: local reads mostly stay in the cwd.
                let affine = local && c.rng.chance(self.cfg.dir_affinity);
                let target = if affine {
                    match Self::random_file_in(ns, &mut c.rng, c.cwd) {
                        Some((_, id)) => id,
                        None => Self::random_walk(ns, &mut c.rng, base, true),
                    }
                } else {
                    Self::random_walk(ns, &mut c.rng, base, true)
                };
                match kind {
                    OpKind::Open => {
                        c.pending.push_back(Op::Close(target));
                        Op::Open(target)
                    }
                    OpKind::SetAttr => Op::SetAttr(target),
                    _ => Op::Stat(target),
                }
            }
            OpKind::Readdir => {
                let dir = if ns.is_dir(base) {
                    base
                } else {
                    ns.parent(base).ok().flatten().unwrap_or(c.region)
                };
                // readdir → burst of stats over the entries (§2.2).
                let (lo, hi) = self.cfg.readdir_stats;
                let want = c.rng.range(lo as u64, hi as u64 + 1) as usize;
                let kids: Vec<InodeId> =
                    ns.children(dir).map(|it| it.map(|(_, k)| k).collect()).unwrap_or_default();
                for &k in kids.iter().take(want) {
                    c.pending.push_back(Op::Stat(k));
                }
                Op::Readdir(dir)
            }
            OpKind::Create | OpKind::Mkdir => {
                let dir = if ns.is_dir(base) { base } else { c.cwd };
                let dir = if ns.is_dir(dir) { dir } else { c.region };
                c.create_seq += 1;
                let name = format!("c{}_{}", client.0, c.create_seq);
                if kind == OpKind::Create {
                    Op::Create { dir, name }
                } else {
                    Op::Mkdir { dir, name }
                }
            }
            OpKind::Unlink => match Self::random_file_in(ns, &mut c.rng, c.cwd) {
                Some((name, _)) => Op::Unlink { dir: c.cwd, name },
                None => Op::Readdir(c.cwd),
            },
            OpKind::Rename => {
                if c.rng.chance(self.cfg.dir_rename_fraction) {
                    // Move a directory within the region: pick a non-region
                    // dir and rename it in place.
                    let i = c.rng.below(c.region_dirs.len() as u64) as usize;
                    let dir = c.region_dirs[i];
                    if dir != c.region && ns.is_alive(dir) {
                        if let (Ok(Some(parent)), Ok(name)) = (ns.parent(dir), ns.name(dir)) {
                            c.create_seq += 1;
                            return Op::Rename {
                                dir: parent,
                                name: name.to_string(),
                                new_name: format!("mv{}_{}", client.0, c.create_seq),
                            };
                        }
                    }
                }
                match Self::random_file_in(ns, &mut c.rng, c.cwd) {
                    Some((name, _)) => {
                        c.create_seq += 1;
                        Op::Rename {
                            dir: c.cwd,
                            name,
                            new_name: format!("mv{}_{}", client.0, c.create_seq),
                        }
                    }
                    None => Op::Readdir(c.cwd),
                }
            }
            OpKind::Chmod => {
                if c.rng.chance(self.cfg.dir_chmod_fraction) {
                    Op::Chmod { target: c.cwd, mode: 0o750 }
                } else {
                    match Self::random_file_in(ns, &mut c.rng, c.cwd) {
                        Some((_, id)) => Op::Chmod { target: id, mode: 0o640 },
                        None => Op::Chmod { target: c.cwd, mode: 0o750 },
                    }
                }
            }
            OpKind::Link => {
                // Link a random region file into the cwd under a fresh
                // name; falls back to a stat when nothing suits.
                let target = Self::random_walk(ns, &mut c.rng, c.region, true);
                if ns.is_alive(target) && !ns.is_dir(target) && ns.is_dir(c.cwd) {
                    c.create_seq += 1;
                    Op::Link {
                        target,
                        dir: c.cwd,
                        name: format!("ln{}_{}", client.0, c.create_seq),
                    }
                } else {
                    Op::Stat(target)
                }
            }
            OpKind::Close => unreachable!("close never initiates"),
            OpKind::Lookup => unreachable!("lookup is not in any mix"),
        }
    }
}

impl Workload for GeneralWorkload {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        self.generate(ns, client)
    }

    fn clients(&self) -> usize {
        self.clients.len()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.clients[client.index()].uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use dynmds_namespace::NamespaceSpec;
    use std::collections::HashMap;

    fn setup(n_clients: usize) -> (Namespace, GeneralWorkload) {
        let snap = NamespaceSpec { users: 10, seed: 5, ..Default::default() }.generate();
        let wl = GeneralWorkload::new(
            WorkloadConfig::default(),
            n_clients,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        (snap.ns, wl)
    }

    #[test]
    fn generates_valid_targets() {
        let (ns, mut wl) = setup(4);
        for i in 0..400 {
            let op = wl.next_op(&ns, ClientId(i % 4), SimTime::ZERO);
            assert!(ns.is_alive(op.target()), "op {op:?} targets dead inode");
        }
    }

    #[test]
    fn open_is_followed_by_close_of_same_file() {
        let (ns, mut wl) = setup(1);
        let mut last_open: Option<InodeId> = None;
        let mut pairs = 0;
        for _ in 0..2000 {
            let op = wl.next_op(&ns, ClientId(0), SimTime::ZERO);
            match op {
                Op::Open(f) => last_open = Some(f),
                Op::Close(f) => {
                    assert_eq!(Some(f), last_open, "close must match the open");
                    pairs += 1;
                    last_open = None;
                }
                _ => {}
            }
        }
        assert!(pairs > 50, "open/close pairs should be frequent, got {pairs}");
    }

    #[test]
    fn readdir_triggers_stat_burst() {
        let (ns, mut wl) = setup(1);
        let mut bursts = 0;
        let mut i = 0;
        let ops: Vec<Op> = (0..3000).map(|_| wl.next_op(&ns, ClientId(0), SimTime::ZERO)).collect();
        while i < ops.len() {
            if let Op::Readdir(dir) = &ops[i] {
                // Count immediately following stats of that dir's children.
                let mut stats = 0;
                let mut j = i + 1;
                while j < ops.len() {
                    if let Op::Stat(s) = ops[j] {
                        if ns.parent(s).ok().flatten() == Some(*dir) {
                            stats += 1;
                            j += 1;
                            continue;
                        }
                    }
                    break;
                }
                if stats >= 1 {
                    bursts += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        assert!(bursts > 10, "readdir→stat bursts expected, got {bursts}");
    }

    #[test]
    fn mix_is_respected() {
        let (ns, mut wl) = setup(2);
        let mut counts: HashMap<OpKind, usize> = HashMap::new();
        for i in 0..20_000 {
            let op = wl.next_op(&ns, ClientId(i % 2), SimTime::ZERO);
            *counts.entry(op.kind()).or_insert(0) += 1;
        }
        assert!(counts[&OpKind::Stat] > counts[&OpKind::Create]);
        assert!(counts[&OpKind::Open] > 1000);
        assert!(counts.get(&OpKind::Rename).copied().unwrap_or(0) < 1000);
    }

    #[test]
    fn locality_keeps_most_ops_in_region() {
        let (ns, mut wl) = setup(4);
        let mut local = 0;
        let mut total = 0;
        for i in 0..4000u32 {
            let client = ClientId(i % 4);
            let region = wl.region_of(client);
            let op = wl.next_op(&ns, client, SimTime::ZERO);
            let t = op.target();
            if t == region || ns.is_ancestor(region, t) {
                local += 1;
            }
            total += 1;
        }
        let frac = local as f64 / total as f64;
        assert!(frac > 0.7, "expected mostly-local ops, got {frac}");
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let (ns, mut a) = setup(3);
        let (_, mut b) = setup(3);
        for i in 0..500 {
            let c = ClientId(i % 3);
            assert_eq!(a.next_op(&ns, c, SimTime::ZERO), b.next_op(&ns, c, SimTime::ZERO));
        }
    }

    #[test]
    fn relocate_switches_region_and_mix() {
        let (ns, mut wl) = setup(2);
        let snap_regions: Vec<InodeId> = (0..2).map(|i| wl.region_of(ClientId(i))).collect();
        let new_region = snap_regions[1];
        wl.relocate(ClientId(0), new_region, OpMix::create_heavy());
        assert_eq!(wl.region_of(ClientId(0)), new_region);
        let creates = (0..1000)
            .filter(|_| {
                matches!(
                    wl.next_op(&ns, ClientId(0), SimTime::ZERO).kind(),
                    OpKind::Create | OpKind::Mkdir
                )
            })
            .count();
        assert!(creates > 300, "create-heavy after relocation, got {creates}");
    }

    #[test]
    fn clients_count() {
        let (_, wl) = setup(7);
        assert_eq!(wl.clients(), 7);
    }

    #[test]
    fn uid_matches_region_owner() {
        let (ns, wl) = setup(3);
        for i in 0..3 {
            let c = ClientId(i);
            let region = wl.region_of(c);
            assert_eq!(wl.uid_of(c), ns.inode(region).unwrap().perm.uid);
        }
    }
}

//! Hot-set replay workload: each client cycles `stat`s over a small
//! private ring of files.
//!
//! This is the throughput scenario for the sharded engine benchmarks: a
//! lease-friendly, cache-resident access pattern (the "every client
//! hammers its working set" regime CFS-style container platforms report)
//! where almost every operation completes client-side against a valid
//! lease. It deliberately has near-zero generator cost — no tree walks,
//! no RNG-heavy mix sampling — so engine overhead, not workload
//! generation, dominates what a benchmark measures.

use dynmds_event::{SimRng, SimTime};
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// Per-client ring replay of `stat`s over a fixed working set.
pub struct HotSetWorkload {
    /// All clients' rings, flattened: client `c` owns
    /// `items[c * ring .. (c + 1) * ring]`.
    items: Vec<InodeId>,
    /// Ring length per client.
    ring: usize,
    /// Next ring position per client.
    cursor: Vec<u32>,
    n_clients: usize,
}

impl HotSetWorkload {
    /// Builds rings of `ring` files per client, sampled uniformly (with
    /// a deterministic seed) from the namespace's live files. Identical
    /// `(ns, n_clients, ring, seed)` always yield identical rings, so
    /// per-shard copies replay the same streams.
    pub fn new(ns: &Namespace, n_clients: usize, ring: usize, seed: u64) -> Self {
        assert!(n_clients > 0 && ring > 0);
        let pool: Vec<InodeId> = ns.live_ids().filter(|&id| !ns.is_dir(id)).collect();
        assert!(!pool.is_empty(), "namespace has no files to stat");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x407_5E7);
        let items =
            (0..n_clients * ring).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect();
        HotSetWorkload { items, ring, cursor: vec![0; n_clients], n_clients }
    }
}

impl Workload for HotSetWorkload {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let c = client.index();
        let pos = self.cursor[c] as usize;
        self.cursor[c] = ((pos + 1) % self.ring) as u32;
        Op::Stat(self.items[c * self.ring + pos])
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;

    #[test]
    fn rings_are_deterministic_and_cyclic() {
        let snap = NamespaceSpec::with_target_items(4, 2_000, 9).generate();
        let mut a = HotSetWorkload::new(&snap.ns, 3, 4, 77);
        let mut b = HotSetWorkload::new(&snap.ns, 3, 4, 77);
        let c1 = ClientId(1);
        let first: Vec<Op> = (0..8).map(|_| a.next_op(&snap.ns, c1, SimTime::ZERO)).collect();
        let second: Vec<Op> = (0..8).map(|_| b.next_op(&snap.ns, c1, SimTime::ZERO)).collect();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        // Ring of 4 repeats with period 4.
        assert_eq!(format!("{:?}", first[0]), format!("{:?}", first[4]));
    }

    #[test]
    fn clients_have_independent_rings() {
        let snap = NamespaceSpec::with_target_items(4, 2_000, 9).generate();
        let mut w = HotSetWorkload::new(&snap.ns, 2, 8, 1);
        // Advancing client 0 must not disturb client 1's stream.
        let mut w2 = HotSetWorkload::new(&snap.ns, 2, 8, 1);
        for _ in 0..5 {
            w.next_op(&snap.ns, ClientId(0), SimTime::ZERO);
        }
        let a = w.next_op(&snap.ns, ClientId(1), SimTime::ZERO);
        let b = w2.next_op(&snap.ns, ClientId(1), SimTime::ZERO);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

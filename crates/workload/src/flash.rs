//! Scientific-computing bursts and flash crowds (§5.2, §5.4).
//!
//! The LLNL trace analysis the paper builds on "found bursts of activity
//! for which all the nodes access the same file or a set of files in the
//! same directory". Two generators model that:
//!
//! * [`FlashCrowd`] — the Figure 7 stress: every client requests the same
//!   file (open, then repeat stats as results stream back),
//! * [`ScientificWorkload`] — alternating independent phases and
//!   synchronized bursts (same-file opens or same-directory creates).

use dynmds_event::{SimDuration, SimRng, SimTime};
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// All clients hammer one file. Each client's first op is `Open`; later
/// ops re-`Stat` the same file (checkpoint polling).
pub struct FlashCrowd {
    target: InodeId,
    n_clients: usize,
    issued_open: Vec<bool>,
}

impl FlashCrowd {
    /// A crowd of `n_clients` all targeting `target`.
    pub fn new(target: InodeId, n_clients: usize) -> Self {
        assert!(n_clients > 0, "need at least one client");
        FlashCrowd { target, n_clients, issued_open: vec![false; n_clients] }
    }

    /// The shared target.
    pub fn target(&self) -> InodeId {
        self.target
    }
}

impl Workload for FlashCrowd {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let first = !self.issued_open[client.index()];
        if first {
            self.issued_open[client.index()] = true;
            Op::Open(self.target)
        } else {
            Op::Stat(self.target)
        }
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

/// All clients hammer one file with *writes*: an N-to-1 checkpoint, the
/// other LLNL burst shape. Each client opens once, then streams `SetAttr`
/// updates (size/mtime growth) at the shared target.
pub struct WriteCrowd {
    target: InodeId,
    n_clients: usize,
    issued_open: Vec<bool>,
}

impl WriteCrowd {
    /// A write crowd of `n_clients` targeting `target`.
    pub fn new(target: InodeId, n_clients: usize) -> Self {
        assert!(n_clients > 0, "need at least one client");
        WriteCrowd { target, n_clients, issued_open: vec![false; n_clients] }
    }

    /// The shared target.
    pub fn target(&self) -> InodeId {
        self.target
    }
}

impl Workload for WriteCrowd {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let first = !self.issued_open[client.index()];
        if first {
            self.issued_open[client.index()] = true;
            Op::Open(self.target)
        } else {
            Op::SetAttr(self.target)
        }
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

/// What a synchronized burst does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstKind {
    /// Every node opens the same file (checkpoint read-back).
    OpenSameFile,
    /// Every node creates files in the same directory (N-to-1 checkpoint
    /// write).
    CreateInSharedDir,
}

/// Scientific workload: independent activity punctuated by synchronized
/// bursts against shared targets.
pub struct ScientificWorkload {
    /// Per-client home regions for the independent phases.
    regions: Vec<InodeId>,
    /// Candidate burst targets: directories in shared project trees.
    shared_dirs: Vec<InodeId>,
    period: SimDuration,
    burst_len: SimDuration,
    n_clients: usize,
    rngs: Vec<SimRng>,
    create_seqs: Vec<u64>,
}

impl ScientificWorkload {
    /// Creates the workload. Bursts occupy the first `burst_len` of every
    /// `period`; burst `k` alternates kind and picks its shared target
    /// deterministically.
    pub fn new(
        seed: u64,
        n_clients: usize,
        regions: &[InodeId],
        shared_dirs: &[InodeId],
        period: SimDuration,
        burst_len: SimDuration,
    ) -> Self {
        assert!(n_clients > 0, "need at least one client");
        assert!(!regions.is_empty(), "need regions");
        assert!(!shared_dirs.is_empty(), "need shared burst targets");
        assert!(burst_len <= period, "burst must fit in the period");
        let mut root = SimRng::seed_from_u64(seed);
        let rngs = (0..n_clients).map(|i| root.fork(i as u64)).collect();
        ScientificWorkload {
            regions: regions.to_vec(),
            shared_dirs: shared_dirs.to_vec(),
            period,
            burst_len,
            n_clients,
            rngs,
            create_seqs: vec![0; n_clients],
        }
    }

    /// Which burst window `now` falls into, if any.
    pub fn burst_at(&self, now: SimTime) -> Option<(u64, BurstKind)> {
        let p = self.period.as_micros();
        let idx = now.as_micros() / p;
        let offset = now.as_micros() % p;
        if offset < self.burst_len.as_micros() {
            let kind = if idx.is_multiple_of(2) {
                BurstKind::OpenSameFile
            } else {
                BurstKind::CreateInSharedDir
            };
            Some((idx, kind))
        } else {
            None
        }
    }

    /// Deterministic shared target for burst `idx`: a directory from the
    /// shared trees; for open-bursts, its first file child (or the dir
    /// itself when it has none).
    fn burst_target(&self, ns: &Namespace, idx: u64, kind: BurstKind) -> InodeId {
        let dir = self.shared_dirs[(idx as usize) % self.shared_dirs.len()];
        match kind {
            BurstKind::CreateInSharedDir => dir,
            BurstKind::OpenSameFile => ns
                .children(dir)
                .ok()
                .and_then(|mut it| it.find(|&(_, c)| !ns.is_dir(c)))
                .map(|(_, c)| c)
                .unwrap_or(dir),
        }
    }
}

impl Workload for ScientificWorkload {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        let i = client.index();
        if let Some((idx, kind)) = self.burst_at(now) {
            let target = self.burst_target(ns, idx, kind);
            return match kind {
                BurstKind::OpenSameFile => Op::Open(target),
                BurstKind::CreateInSharedDir => {
                    self.create_seqs[i] += 1;
                    Op::Create {
                        dir: target,
                        name: format!("ckpt{}_{}_{}", idx, client.0, self.create_seqs[i]),
                    }
                }
            };
        }
        // Independent phase: read around the client's own region.
        let region = self.regions[i % self.regions.len()];
        let rng = &mut self.rngs[i];
        let mut cur = region;
        for _ in 0..6 {
            let kids: Vec<InodeId> = match ns.children(cur) {
                Ok(it) => it.map(|(_, c)| c).collect(),
                Err(_) => break,
            };
            if kids.is_empty() {
                break;
            }
            let pick = kids[rng.below(kids.len() as u64) as usize];
            if !ns.is_dir(pick) {
                return Op::Stat(pick);
            }
            cur = pick;
        }
        Op::Readdir(cur)
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;

    #[test]
    fn flash_crowd_opens_then_stats() {
        let mut fc = FlashCrowd::new(InodeId(7), 3);
        let ns = Namespace::new();
        assert_eq!(fc.next_op(&ns, ClientId(0), SimTime::ZERO), Op::Open(InodeId(7)));
        assert_eq!(fc.next_op(&ns, ClientId(0), SimTime::ZERO), Op::Stat(InodeId(7)));
        assert_eq!(fc.next_op(&ns, ClientId(1), SimTime::ZERO), Op::Open(InodeId(7)));
        assert_eq!(fc.clients(), 3);
        assert_eq!(fc.target(), InodeId(7));
    }

    fn sci() -> (Namespace, ScientificWorkload) {
        let snap = NamespaceSpec { users: 6, seed: 3, ..Default::default() }.generate();
        let wl = ScientificWorkload::new(
            9,
            6,
            &snap.user_homes,
            &snap.shared_roots,
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        (snap.ns, wl)
    }

    #[test]
    fn burst_windows_alternate_kinds() {
        let (_, wl) = sci();
        assert_eq!(wl.burst_at(SimTime::from_secs(1)).unwrap().1, BurstKind::OpenSameFile);
        assert_eq!(wl.burst_at(SimTime::from_secs(5)), None, "outside window");
        assert_eq!(wl.burst_at(SimTime::from_secs(11)).unwrap().1, BurstKind::CreateInSharedDir);
        assert_eq!(wl.burst_at(SimTime::from_secs(21)).unwrap().1, BurstKind::OpenSameFile);
    }

    #[test]
    fn open_burst_targets_one_file_for_all_clients() {
        let (ns, mut wl) = sci();
        let t = SimTime::from_secs(1);
        let ops: Vec<Op> = (0..6).map(|i| wl.next_op(&ns, ClientId(i), t)).collect();
        let first = match &ops[0] {
            Op::Open(f) => *f,
            other => panic!("expected open, got {other:?}"),
        };
        for op in &ops {
            assert_eq!(*op, Op::Open(first), "all clients hit the same file");
        }
    }

    #[test]
    fn create_burst_targets_one_directory() {
        let (ns, mut wl) = sci();
        let t = SimTime::from_secs(11);
        let mut dirs = std::collections::HashSet::new();
        for i in 0..6 {
            match wl.next_op(&ns, ClientId(i), t) {
                Op::Create { dir, name } => {
                    dirs.insert(dir);
                    assert!(name.starts_with("ckpt1_"));
                }
                other => panic!("expected create, got {other:?}"),
            }
        }
        assert_eq!(dirs.len(), 1, "one shared directory");
    }

    #[test]
    fn independent_phase_spreads_across_regions() {
        let (ns, mut wl) = sci();
        let t = SimTime::from_secs(5); // outside burst
        let mut targets = std::collections::HashSet::new();
        for i in 0..6 {
            for _ in 0..10 {
                targets.insert(wl.next_op(&ns, ClientId(i), t).target());
            }
        }
        assert!(targets.len() > 6, "independent activity should scatter");
    }
}

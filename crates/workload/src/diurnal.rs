//! Long-horizon non-stationary load shapes for elasticity experiments.
//!
//! λFS (ASPLOS'24) and CFS both motivate elastic metadata services with
//! traffic that is *predictably* non-stationary: container fleets and
//! interactive users produce strong day/night cycles, batch systems
//! produce on/off bursts. These wrappers reshape any stationary generator
//! by modulating the mean client think time over virtual time — the op
//! mix and locality stay exactly those of the wrapped workload, only the
//! offered rate changes.
//!
//! The modulation is a pure function of the virtual clock, so runs stay
//! deterministic; the engines fold [`Workload::think_scale`] into the
//! think-time draw (a `×1.0` no-op for every stationary workload).

use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::{ClientId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// A smooth day/night cycle over an inner workload.
///
/// The think-time multiplier follows a raised cosine between `1.0`
/// (daytime peak, at phase 0) and `night_mult` (nighttime trough, at
/// phase ½): offered load swings by roughly `1/night_mult` and sustains
/// both extremes long enough for watermark controllers to react.
pub struct DiurnalWorkload<W> {
    inner: W,
    period: SimDuration,
    night_mult: f64,
}

impl<W: Workload> DiurnalWorkload<W> {
    /// Wraps `inner` with a day/night cycle of `period`; off-peak think
    /// times stretch up to `night_mult` (≥ 1.0).
    pub fn new(inner: W, period: SimDuration, night_mult: f64) -> Self {
        assert!(period.as_micros() > 0, "period must be positive");
        assert!(night_mult >= 1.0, "night_mult stretches think time");
        DiurnalWorkload { inner, period, night_mult }
    }
}

impl<W: Workload> Workload for DiurnalWorkload<W> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        self.inner.next_op(ns, client, now)
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }

    fn think_scale(&self, now: SimTime) -> f64 {
        let phase =
            (now.as_micros() % self.period.as_micros()) as f64 / self.period.as_micros() as f64;
        // 1.0 at the daytime peak, 0.0 at the trough.
        let day = 0.5 * (1.0 + (2.0 * std::f64::consts::PI * phase).cos());
        1.0 + (self.night_mult - 1.0) * (1.0 - day)
    }
}

/// An on/off batch-burst shape over an inner workload: each cycle opens
/// with a full-rate burst of `burst` virtual time, then idles (think
/// times stretched by `idle_mult`) until the next cycle.
pub struct BurstyWorkload<W> {
    inner: W,
    cycle: SimDuration,
    burst: SimDuration,
    idle_mult: f64,
}

impl<W: Workload> BurstyWorkload<W> {
    /// Wraps `inner` with bursts of `burst` every `cycle`; between bursts
    /// think times stretch by `idle_mult` (≥ 1.0).
    pub fn new(inner: W, cycle: SimDuration, burst: SimDuration, idle_mult: f64) -> Self {
        assert!(cycle.as_micros() > 0, "cycle must be positive");
        assert!(burst.as_micros() > 0 && burst < cycle, "burst must fit inside the cycle");
        assert!(idle_mult >= 1.0, "idle_mult stretches think time");
        BurstyWorkload { inner, cycle, burst, idle_mult }
    }
}

impl<W: Workload> Workload for BurstyWorkload<W> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        self.inner.next_op(ns, client, now)
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }

    fn think_scale(&self, now: SimTime) -> f64 {
        if now.as_micros() % self.cycle.as_micros() < self.burst.as_micros() {
            1.0
        } else {
            self.idle_mult
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inner stand-in: the shape tests never call next_op.
    struct Idle;
    impl Workload for Idle {
        fn next_op(&mut self, ns: &Namespace, _client: ClientId, _now: SimTime) -> Op {
            Op::Stat(ns.root())
        }
        fn clients(&self) -> usize {
            1
        }
    }

    #[test]
    fn diurnal_peaks_at_phase_zero_and_troughs_at_half() {
        let w = DiurnalWorkload::new(Idle, SimDuration::from_secs(10), 8.0);
        assert!((w.think_scale(SimTime::ZERO) - 1.0).abs() < 1e-9);
        assert!((w.think_scale(SimTime::from_secs(5)) - 8.0).abs() < 1e-9);
        assert!((w.think_scale(SimTime::from_secs(10)) - 1.0).abs() < 1e-9, "periodic");
        let quarter = w.think_scale(SimTime::from_micros(2_500_000));
        assert!(quarter > 1.0 && quarter < 8.0, "smooth in between: {quarter}");
    }

    #[test]
    fn bursty_is_a_square_wave() {
        let w =
            BurstyWorkload::new(Idle, SimDuration::from_secs(10), SimDuration::from_secs(2), 6.0);
        assert_eq!(w.think_scale(SimTime::ZERO), 1.0);
        assert_eq!(w.think_scale(SimTime::from_millis(1_999)), 1.0);
        assert_eq!(w.think_scale(SimTime::from_secs(2)), 6.0);
        assert_eq!(w.think_scale(SimTime::from_secs(9)), 6.0);
        assert_eq!(w.think_scale(SimTime::from_secs(10)), 1.0, "next cycle bursts again");
    }

    #[test]
    fn stationary_default_is_exactly_one() {
        assert_eq!(Idle.think_scale(SimTime::from_secs(123)), 1.0);
    }
}

//! Million-client scale workload: clients hammer per-user file ranges
//! shared behind `Arc`s.
//!
//! The scale tier runs ≥10⁶ clients against a streaming-generated
//! namespace where only a sample of user subtrees is materialized. Two
//! constraints shape this generator:
//!
//! * **Per-shard copies must be near-free.** The sharded engine builds
//!   one workload instance per shard from a factory; at a million
//!   clients, cloning a `HotSetWorkload`-style flattened ring table
//!   (clients × ring inode ids) per shard would dwarf the namespace
//!   itself. Here the file table and per-user ranges live behind `Arc`s
//!   built once; each instance owns only its cursor array.
//! * **Clients outnumber materialized users.** Every client is pinned to
//!   the materialized user subtree `client % users` and cycles a
//!   client-specific ring inside that user's files, so load spreads over
//!   the whole materialized sample without any per-client setup state.
//!
//! Like [`crate::hotset`], it is allocation- and RNG-free per op so the
//! engine, not workload generation, dominates measured throughput.

use std::sync::Arc;

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// The shared tables every per-shard instance borrows: the flattened
/// file ids and the per-user `(start, len)` ranges into them.
pub type ScaleTables = (Arc<[InodeId]>, Arc<[(u32, u32)]>);

/// Stat-hammer over per-user file ranges; construction is O(clients) for
/// the cursor array only, all shared tables arrive pre-built.
pub struct ScaleWorkload {
    /// All materialized users' files, flattened; user `u` owns
    /// `files[ranges[u].0 as usize ..][.. ranges[u].1 as usize]`.
    files: Arc<[InodeId]>,
    /// `(start, len)` into `files` per materialized user.
    ranges: Arc<[(u32, u32)]>,
    /// Ring length per client (clamped to the user's file count).
    ring: u32,
    /// Next ring position per client.
    cursor: Vec<u32>,
    n_clients: usize,
}

impl ScaleWorkload {
    /// Builds a workload over pre-collected per-user file ranges. Every
    /// range must be non-empty and lie within `files`.
    pub fn new(
        files: Arc<[InodeId]>,
        ranges: Arc<[(u32, u32)]>,
        n_clients: usize,
        ring: u32,
    ) -> Self {
        assert!(n_clients > 0 && ring > 0, "need clients and a ring");
        assert!(!ranges.is_empty(), "need at least one materialized user");
        for &(start, len) in ranges.iter() {
            assert!(len > 0, "user range must be non-empty");
            assert!((start as usize + len as usize) <= files.len(), "range out of bounds");
        }
        ScaleWorkload { files, ranges, ring, cursor: vec![0; n_clients], n_clients }
    }

    /// Collects the shared tables from the live files under each of
    /// `homes` (one walk per subtree, sorted id order within each). The
    /// result is reused by every per-shard instance. Subtrees holding no
    /// files (the generator's size distributions allow all-directory
    /// homes) are skipped — clients are spread over the ranges that
    /// exist, so the mapping stays total.
    pub fn collect(ns: &Namespace, homes: &[InodeId]) -> ScaleTables {
        let mut files: Vec<InodeId> = Vec::new();
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(homes.len());
        for &home in homes {
            let start = files.len();
            files.extend(ns.walk(home).filter(|&id| !ns.is_dir(id)));
            let len = files.len() - start;
            if len > 0 {
                ranges.push((start as u32, len as u32));
            }
        }
        assert!(!ranges.is_empty(), "no materialized subtree holds any files");
        (files.into(), ranges.into())
    }
}

impl Workload for ScaleWorkload {
    fn next_op(&mut self, _ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let c = client.index();
        let (start, len) = self.ranges[c % self.ranges.len()];
        let pos = self.cursor[c];
        let ring = self.ring.min(len);
        self.cursor[c] = (pos + 1) % ring;
        // Offset each client's ring by a multiplicative hash of its id so
        // clients sharing a user cover different windows of its files.
        let base = (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = start as u64 + (base.wrapping_add(pos as u64)) % len as u64;
        Op::Stat(self.files[idx as usize])
    }

    fn clients(&self) -> usize {
        self.n_clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;

    fn build(n_clients: usize, ring: u32) -> (Namespace, ScaleWorkload) {
        let snap = NamespaceSpec::with_target_items(6, 3_000, 11).generate();
        let (files, ranges) = ScaleWorkload::collect(&snap.ns, &snap.user_homes);
        let w = ScaleWorkload::new(files, ranges, n_clients, ring);
        (snap.ns, w)
    }

    #[test]
    fn streams_are_deterministic_and_cyclic() {
        let (ns, mut a) = build(10, 4);
        let (_, mut b) = build(10, 4);
        let c = ClientId(3);
        let first: Vec<Op> = (0..8).map(|_| a.next_op(&ns, c, SimTime::ZERO)).collect();
        let second: Vec<Op> = (0..8).map(|_| b.next_op(&ns, c, SimTime::ZERO)).collect();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        assert_eq!(format!("{:?}", first[0]), format!("{:?}", first[4]), "period = ring");
    }

    #[test]
    fn clients_stay_inside_their_users_files() {
        let (ns, mut w) = build(13, 6);
        let snap_homes: Vec<InodeId> = {
            let snap = NamespaceSpec::with_target_items(6, 3_000, 11).generate();
            snap.user_homes.clone()
        };
        for c in 0..13usize {
            let u = c % snap_homes.len();
            for _ in 0..10 {
                let Op::Stat(id) = w.next_op(&ns, ClientId(c as u32), SimTime::ZERO) else {
                    panic!("scale workload only stats");
                };
                assert!(ns.is_alive(id) && !ns.is_dir(id));
                assert!(ns.is_ancestor(snap_homes[u], id), "client {c} strayed outside user {u}");
            }
        }
    }

    #[test]
    fn shared_tables_make_per_shard_copies_cheap() {
        let (ns, _) = build(4, 2);
        let snap = NamespaceSpec::with_target_items(6, 3_000, 11).generate();
        let (files, ranges) = ScaleWorkload::collect(&snap.ns, &snap.user_homes);
        // Factory pattern: many instances over the same Arcs.
        let instances: Vec<ScaleWorkload> = (0..4)
            .map(|_| ScaleWorkload::new(Arc::clone(&files), Arc::clone(&ranges), 1000, 8))
            .collect();
        assert_eq!(Arc::strong_count(&files), 1 + instances.len());
        let mut w0 = instances.into_iter().next().unwrap();
        let op = w0.next_op(&ns, ClientId(0), SimTime::ZERO);
        assert!(matches!(op, Op::Stat(_)));
    }
}

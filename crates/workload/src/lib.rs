//! Synthetic metadata workload generators (§5.2).
//!
//! The paper generates client workloads rather than replaying traces:
//! "we chose to simulate client workload based on prior research
//! characterizing file system usage, executed against snapshots of actual
//! file systems". Three published observations shape the generators here:
//!
//! * **Op mix** — metadata operation frequencies follow the Roselli et
//!   al. 2000 trace study: stats dominate, `open`→`close` pairs and
//!   `readdir`→many-`stat` sequences are the common idioms, namespace
//!   mutations are rare ([`ops::OpMix`]).
//! * **Locality** — clients work inside a local region of the hierarchy
//!   (Floyd & Ellis 1989); the general-purpose generator gives each client
//!   a home region and only occasionally strays ([`general`]).
//! * **Scientific bursts** — LLNL 2003 traces show "bursts of activity for
//!   which all the nodes access the same file or a set of files in the
//!   same directory" ([`flash`]).
//!
//! The [`shift`] module wraps the general generator with the Figure 5/6
//! scenario: mid-run, half the clients migrate their activity into one
//! server's subtree and turn create-heavy.

pub mod diurnal;
pub mod flash;
pub mod general;
pub mod hotset;
pub mod hotspot;
pub mod ops;
pub mod scale;
pub mod shift;
pub mod trace;

pub use diurnal::{BurstyWorkload, DiurnalWorkload};
pub use flash::{BurstKind, FlashCrowd, ScientificWorkload, WriteCrowd};
pub use general::{GeneralWorkload, WorkloadConfig};
pub use hotset::HotSetWorkload;
pub use hotspot::{CreateStorm, DeepPathHerd, LookupChurn, RenameStorm};
pub use ops::{Op, OpKind, OpMix};
pub use scale::ScaleWorkload;
pub use shift::ShiftingWorkload;
pub use trace::{Trace, TraceOp, TraceRecord, TraceRecorder, TraceReplay};

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, Namespace};

/// A source of client operations. The simulator calls `next_op` each time
/// a client is ready to issue its next metadata request; generators see
/// the live namespace so they never target dead inodes.
pub trait Workload {
    /// The next operation for `client` at virtual time `now`.
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op;

    /// Number of clients this workload drives.
    fn clients(&self) -> usize;

    /// The uid `client` authenticates as (default: superuser-ish 0, used
    /// by workloads that only touch world-readable trees).
    fn uid_of(&self, _client: ClientId) -> u32 {
        0
    }

    /// Multiplier on the mean client think time at virtual time `now`.
    /// Long-horizon generators ([`diurnal`]) modulate offered load by
    /// stretching think time; the default of exactly `1.0` leaves every
    /// stationary workload's timing bit-identical (`mean * 1.0 == mean`).
    fn think_scale(&self, _now: SimTime) -> f64 {
        1.0
    }
}

/// Boxed workloads forward everything, so factory-style builders can
/// return `Box<dyn Workload + Send>` and callers can still wrap the box
/// in generic combinators like [`TraceRecorder`].
impl Workload for Box<dyn Workload + Send> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        (**self).next_op(ns, client, now)
    }

    fn clients(&self) -> usize {
        (**self).clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        (**self).uid_of(client)
    }

    fn think_scale(&self, now: SimTime) -> f64 {
        (**self).think_scale(now)
    }
}

//! The Figure 5/6 workload-shift scenario.
//!
//! "After a short time, about half of the clients change their local
//! region of activity and create new files in portions of the hierarchy
//! served by a single MDS." This wrapper delegates to a
//! [`GeneralWorkload`] and performs that migration the first time the
//! clock passes `shift_at`.

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::general::GeneralWorkload;
use crate::ops::{Op, OpMix};
use crate::Workload;

/// General-purpose workload with a one-time mid-run migration.
pub struct ShiftingWorkload {
    base: GeneralWorkload,
    shift_at: SimTime,
    /// Clients that migrate (e.g. every other client).
    movers: Vec<ClientId>,
    /// Destination regions — the subtrees one MDS serves; movers spread
    /// over them round-robin.
    destinations: Vec<InodeId>,
    shifted: bool,
}

impl ShiftingWorkload {
    /// Wraps `base`; at `shift_at`, `movers` relocate into `destinations`
    /// with a create-heavy mix.
    pub fn new(
        base: GeneralWorkload,
        shift_at: SimTime,
        movers: Vec<ClientId>,
        destinations: Vec<InodeId>,
    ) -> Self {
        assert!(!destinations.is_empty(), "need at least one destination");
        ShiftingWorkload { base, shift_at, movers, destinations, shifted: false }
    }

    /// Whether the migration has happened yet.
    pub fn shifted(&self) -> bool {
        self.shifted
    }

    /// The wrapped workload.
    pub fn base(&self) -> &GeneralWorkload {
        &self.base
    }

    fn maybe_shift(&mut self, now: SimTime) {
        if self.shifted || now < self.shift_at {
            return;
        }
        self.shifted = true;
        for (i, &c) in self.movers.iter().enumerate() {
            let dest = self.destinations[i % self.destinations.len()];
            self.base.relocate(c, dest, OpMix::create_heavy());
        }
    }
}

impl Workload for ShiftingWorkload {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        self.maybe_shift(now);
        self.base.next_op(ns, client, now)
    }

    fn clients(&self) -> usize {
        self.base.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.base.uid_of(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::WorkloadConfig;
    use crate::ops::OpKind;
    use dynmds_namespace::NamespaceSpec;

    fn setup() -> (Namespace, ShiftingWorkload, InodeId) {
        let snap = NamespaceSpec { users: 8, seed: 11, ..Default::default() }.generate();
        let base = GeneralWorkload::new(
            WorkloadConfig::default(),
            8,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        let dest = snap.user_homes[0];
        let movers = (0..8).filter(|i| i % 2 == 0).map(ClientId).collect();
        let wl = ShiftingWorkload::new(base, SimTime::from_secs(10), movers, vec![dest]);
        (snap.ns, wl, dest)
    }

    #[test]
    fn no_shift_before_deadline() {
        let (ns, mut wl, dest) = setup();
        for i in 0..100 {
            wl.next_op(&ns, ClientId(i % 8), SimTime::from_secs(5));
        }
        assert!(!wl.shifted());
        assert_ne!(wl.base().region_of(ClientId(2)), dest);
    }

    #[test]
    fn shift_relocates_movers_only() {
        let (ns, mut wl, dest) = setup();
        wl.next_op(&ns, ClientId(0), SimTime::from_secs(10));
        assert!(wl.shifted());
        for i in 0..8u32 {
            let region = wl.base().region_of(ClientId(i));
            if i % 2 == 0 {
                assert_eq!(region, dest, "mover {i} relocated");
            } else {
                assert_ne!(region, dest, "stayer {i} untouched");
            }
        }
    }

    #[test]
    fn movers_become_create_heavy() {
        let (ns, mut wl, _) = setup();
        let creates = (0..1000)
            .filter(|_| {
                matches!(
                    wl.next_op(&ns, ClientId(0), SimTime::from_secs(20)).kind(),
                    OpKind::Create | OpKind::Mkdir
                )
            })
            .count();
        assert!(creates > 300, "got {creates}");
    }

    #[test]
    fn shift_happens_once() {
        let (ns, mut wl, dest) = setup();
        wl.next_op(&ns, ClientId(0), SimTime::from_secs(10));
        // Manually relocate a mover elsewhere; a later tick must not
        // re-migrate it.
        let other = wl.base().region_of(ClientId(1));
        let _ = other;
        wl.next_op(&ns, ClientId(2), SimTime::from_secs(30));
        assert_eq!(wl.base().region_of(ClientId(2)), dest);
        assert!(wl.shifted());
    }

    #[test]
    fn clients_passthrough() {
        let (_, wl, _) = setup();
        assert_eq!(wl.clients(), 8);
    }
}

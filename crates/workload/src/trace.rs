//! Workload traces: record any workload's operation stream and replay it
//! later.
//!
//! The paper's future work calls for "the use of actual workload traces
//! with matching file system metadata snapshots". This module provides the
//! machinery: a [`TraceRecorder`] wraps any [`Workload`] and logs each
//! generated operation; the resulting [`Trace`] serializes with `serde`
//! and replays deterministically via [`TraceReplay`] against the *same*
//! snapshot (pair a trace with its snapshot seed, as the paper prescribes).

use serde::{Deserialize, Serialize};

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, InodeId, Namespace};

use crate::ops::Op;
use crate::Workload;

/// A serializable operation record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Which client issued it.
    pub client: u32,
    /// Virtual time of generation, microseconds.
    pub at_us: u64,
    /// The operation, flattened for serialization.
    pub op: TraceOp,
}

/// Serialization-friendly mirror of [`Op`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TraceOp {
    Stat(u64),
    Lookup { dir: u64, name: String },
    Open(u64),
    Close(u64),
    Readdir(u64),
    Create { dir: u64, name: String },
    Mkdir { dir: u64, name: String },
    Unlink { dir: u64, name: String },
    Rename { dir: u64, name: String, new_name: String },
    Chmod { target: u64, mode: u16 },
    SetAttr(u64),
    Link { target: u64, dir: u64, name: String },
}

impl From<&Op> for TraceOp {
    fn from(op: &Op) -> Self {
        match op {
            Op::Stat(i) => TraceOp::Stat(i.0),
            Op::Lookup { dir, name } => TraceOp::Lookup { dir: dir.0, name: name.clone() },
            Op::Open(i) => TraceOp::Open(i.0),
            Op::Close(i) => TraceOp::Close(i.0),
            Op::Readdir(i) => TraceOp::Readdir(i.0),
            Op::Create { dir, name } => TraceOp::Create { dir: dir.0, name: name.clone() },
            Op::Mkdir { dir, name } => TraceOp::Mkdir { dir: dir.0, name: name.clone() },
            Op::Unlink { dir, name } => TraceOp::Unlink { dir: dir.0, name: name.clone() },
            Op::Rename { dir, name, new_name } => {
                TraceOp::Rename { dir: dir.0, name: name.clone(), new_name: new_name.clone() }
            }
            Op::Chmod { target, mode } => TraceOp::Chmod { target: target.0, mode: *mode },
            Op::SetAttr(i) => TraceOp::SetAttr(i.0),
            Op::Link { target, dir, name } => {
                TraceOp::Link { target: target.0, dir: dir.0, name: name.clone() }
            }
        }
    }
}

impl From<&TraceOp> for Op {
    fn from(t: &TraceOp) -> Self {
        match t {
            TraceOp::Stat(i) => Op::Stat(InodeId(*i)),
            TraceOp::Lookup { dir, name } => Op::Lookup { dir: InodeId(*dir), name: name.clone() },
            TraceOp::Open(i) => Op::Open(InodeId(*i)),
            TraceOp::Close(i) => Op::Close(InodeId(*i)),
            TraceOp::Readdir(i) => Op::Readdir(InodeId(*i)),
            TraceOp::Create { dir, name } => Op::Create { dir: InodeId(*dir), name: name.clone() },
            TraceOp::Mkdir { dir, name } => Op::Mkdir { dir: InodeId(*dir), name: name.clone() },
            TraceOp::Unlink { dir, name } => Op::Unlink { dir: InodeId(*dir), name: name.clone() },
            TraceOp::Rename { dir, name, new_name } => {
                Op::Rename { dir: InodeId(*dir), name: name.clone(), new_name: new_name.clone() }
            }
            TraceOp::Chmod { target, mode } => Op::Chmod { target: InodeId(*target), mode: *mode },
            TraceOp::SetAttr(i) => Op::SetAttr(InodeId(*i)),
            TraceOp::Link { target, dir, name } => {
                Op::Link { target: InodeId(*target), dir: InodeId(*dir), name: name.clone() }
            }
        }
    }
}

/// A recorded operation stream plus the snapshot seed it was captured
/// against.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Seed of the `NamespaceSpec` the trace is valid against.
    pub snapshot_seed: u64,
    /// Clients the original workload drove.
    pub n_clients: u32,
    /// The records, in generation order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Wraps a workload, recording everything it generates.
pub struct TraceRecorder<W: Workload> {
    inner: W,
    trace: Trace,
}

impl<W: Workload> TraceRecorder<W> {
    /// Starts recording `inner`; `snapshot_seed` documents the snapshot
    /// this trace pairs with.
    pub fn new(inner: W, snapshot_seed: u64) -> Self {
        let n_clients = inner.clients() as u32;
        TraceRecorder { inner, trace: Trace { snapshot_seed, n_clients, records: Vec::new() } }
    }

    /// Finishes recording, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        let op = self.inner.next_op(ns, client, now);
        self.trace.records.push(TraceRecord {
            client: client.0,
            at_us: now.as_micros(),
            op: TraceOp::from(&op),
        });
        op
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }
}

/// Replays a [`Trace`]: each client consumes its own records in order.
/// When a client exhausts its records the replay falls back to re-statting
/// its last target (an idle tail), so the simulator's closed loop stays
/// well-formed.
pub struct TraceReplay {
    per_client: Vec<Vec<Op>>,
    cursor: Vec<usize>,
    uids: Vec<u32>,
}

impl TraceReplay {
    /// Builds a replayer. `uids` may be empty (all clients uid 0) or one
    /// entry per client.
    pub fn new(trace: &Trace, uids: Vec<u32>) -> Self {
        let n = trace.n_clients as usize;
        assert!(uids.is_empty() || uids.len() == n, "uid table arity");
        let mut per_client: Vec<Vec<Op>> = vec![Vec::new(); n];
        for rec in &trace.records {
            per_client[rec.client as usize].push(Op::from(&rec.op));
        }
        TraceReplay { per_client, cursor: vec![0; n], uids }
    }

    /// Records remaining for `client`.
    pub fn remaining(&self, client: ClientId) -> usize {
        self.per_client[client.index()].len()
            - self.cursor[client.index()].min(self.per_client[client.index()].len())
    }
}

impl Workload for TraceReplay {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, _now: SimTime) -> Op {
        let i = client.index();
        let ops = &self.per_client[i];
        if self.cursor[i] < ops.len() {
            let op = ops[self.cursor[i]].clone();
            self.cursor[i] += 1;
            return op;
        }
        // Idle tail: re-stat the last valid target, or the root.
        let fallback =
            ops.iter().rev().map(|o| o.target()).find(|&t| ns.is_alive(t)).unwrap_or(ns.root());
        Op::Stat(fallback)
    }

    fn clients(&self) -> usize {
        self.per_client.len()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.uids.get(client.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::{GeneralWorkload, WorkloadConfig};
    use dynmds_namespace::NamespaceSpec;

    fn setup() -> (Namespace, GeneralWorkload) {
        let snap = NamespaceSpec { users: 6, seed: 3, ..Default::default() }.generate();
        let wl = GeneralWorkload::new(
            WorkloadConfig { seed: 4, ..Default::default() },
            6,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        );
        (snap.ns, wl)
    }

    #[test]
    fn recorder_captures_everything() {
        let (ns, wl) = setup();
        let mut rec = TraceRecorder::new(wl, 3);
        for i in 0..120u32 {
            rec.next_op(&ns, ClientId(i % 6), SimTime::from_micros(i as u64));
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 120);
        assert_eq!(trace.snapshot_seed, 3);
        assert_eq!(trace.n_clients, 6);
        assert!(trace.records.iter().all(|r| r.client < 6));
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let (ns, wl) = setup();
        let mut rec = TraceRecorder::new(wl, 3);
        let original: Vec<Op> = (0..100u32)
            .map(|i| rec.next_op(&ns, ClientId(i % 6), SimTime::from_micros(i as u64)))
            .collect();
        let trace = rec.into_trace();
        let mut replay = TraceReplay::new(&trace, vec![]);
        let replayed: Vec<Op> =
            (0..100u32).map(|i| replay.next_op(&ns, ClientId(i % 6), SimTime::ZERO)).collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn replay_falls_back_after_exhaustion() {
        let (ns, wl) = setup();
        let mut rec = TraceRecorder::new(wl, 3);
        rec.next_op(&ns, ClientId(0), SimTime::ZERO);
        let trace = rec.into_trace();
        let mut replay = TraceReplay::new(&trace, vec![]);
        replay.next_op(&ns, ClientId(0), SimTime::ZERO);
        // Exhausted: fallback stats keep coming.
        for _ in 0..5 {
            let op = replay.next_op(&ns, ClientId(0), SimTime::ZERO);
            assert!(matches!(op, Op::Stat(_)));
        }
        assert_eq!(replay.remaining(ClientId(0)), 0);
    }

    #[test]
    fn trace_round_trips_through_every_op_kind() {
        let ops = vec![
            Op::Stat(InodeId(1)),
            Op::Lookup { dir: InodeId(3), name: "missing".into() },
            Op::Open(InodeId(2)),
            Op::Close(InodeId(2)),
            Op::Readdir(InodeId(3)),
            Op::Create { dir: InodeId(3), name: "a".into() },
            Op::Mkdir { dir: InodeId(3), name: "b".into() },
            Op::Unlink { dir: InodeId(3), name: "a".into() },
            Op::Rename { dir: InodeId(3), name: "b".into(), new_name: "c".into() },
            Op::Chmod { target: InodeId(1), mode: 0o640 },
            Op::SetAttr(InodeId(1)),
        ];
        for op in &ops {
            let t = TraceOp::from(op);
            let back = Op::from(&t);
            assert_eq!(*op, back);
        }
    }

    #[test]
    fn uids_replay_per_client() {
        let trace = Trace { snapshot_seed: 0, n_clients: 3, records: Vec::new() };
        let replay = TraceReplay::new(&trace, vec![7, 8, 9]);
        assert_eq!(replay.uid_of(ClientId(1)), 8);
        let replay0 = TraceReplay::new(&trace, vec![]);
        assert_eq!(replay0.uid_of(ClientId(1)), 0);
    }
}

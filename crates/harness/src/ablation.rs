//! Design-choice ablations.
//!
//! **Table A — embedded inodes / directory prefetch (§4.5).** The paper
//! attributes the DirHash-vs-FileHash gap to inode embedding: "the
//! benefits of this approach are best seen by contrasting the performance
//! of the directory and file hashing strategies, which are otherwise
//! identical." We isolate the mechanism directly: run DirHash with its
//! normal embedded-directory layout, then again with the layout forced to
//! a per-inode table (placement identical; only prefetch changes).
//!
//! **Table B — balancing vs total throughput (§5.3.2).** "A perfectly
//! balanced distribution of load may not be ideal … a perfect load balance
//! … tends to ensure that all nodes achieve equally mediocre performance."
//! We run DynamicSubtree with the balancer on and off under the static
//! general-purpose workload and report total throughput and per-node
//! spread.

use dynmds_metrics::Table;
use dynmds_partition::StrategyKind;

use crate::parallel::parallel_map;
use crate::params::{run_steady, scaling_config, ExperimentScale};

/// Cluster size for the ablations.
pub const ABLATE_CLUSTER: u16 = 8;

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    /// Setting label.
    pub label: String,
    /// Average per-MDS throughput, ops/s.
    pub throughput: f64,
    /// Cluster-wide hit rate.
    pub hit_rate: f64,
    /// Disk fetches in the measurement window.
    pub disk_fetches: u64,
    /// Per-node served min and max (imbalance evidence).
    pub served_min: u64,
    /// See `served_min`.
    pub served_max: u64,
}

fn point(label: &str, report: &dynmds_core::SimReport) -> AblationPoint {
    AblationPoint {
        label: label.to_string(),
        throughput: report.avg_mds_throughput(),
        hit_rate: report.overall_hit_rate(),
        disk_fetches: report.nodes.iter().map(|n| n.disk_fetches).sum(),
        served_min: report.nodes.iter().map(|n| n.served).min().unwrap_or(0),
        served_max: report.nodes.iter().map(|n| n.served).max().unwrap_or(0),
    }
}

/// Table A: embedded-directory prefetch on/off for DirHash (plus FileHash
/// as the paper's reference point).
pub fn run_ablate_prefetch(scale: ExperimentScale) -> Vec<AblationPoint> {
    let settings: Vec<(&str, StrategyKind, bool)> = vec![
        ("DirHash+embedded", StrategyKind::DirHash, false),
        ("DirHash+inode-table", StrategyKind::DirHash, true),
        ("FileHash", StrategyKind::FileHash, false),
    ];
    parallel_map(&settings, |&(label, strategy, force_table)| {
        let mut cfg = scaling_config(strategy, ABLATE_CLUSTER, scale);
        cfg.force_inode_table = force_table;
        let report = run_steady(cfg, scale);
        point(label, &report)
    })
}

/// Table B: load balancing on/off for DynamicSubtree under a static
/// workload.
pub fn run_ablate_balance(scale: ExperimentScale) -> Vec<AblationPoint> {
    let settings: Vec<(&str, bool)> = vec![("balancing-on", true), ("balancing-off", false)];
    parallel_map(&settings, |&(label, balancing)| {
        let mut cfg = scaling_config(StrategyKind::DynamicSubtree, ABLATE_CLUSTER, scale);
        cfg.balancing = balancing;
        let report = run_steady(cfg, scale);
        point(label, &report)
    })
}

/// Renders an ablation table.
pub fn ablation_table(title: &str, points: &[AblationPoint]) -> Table {
    let mut t = Table::new(
        title,
        &["setting", "ops/s", "hit%", "disk_fetches", "served_min", "served_max"],
    );
    for p in points {
        t.row(&[
            p.label.clone(),
            format!("{:.0}", p.throughput),
            format!("{:.1}", p.hit_rate * 100.0),
            p.disk_fetches.to_string(),
            p.served_min.to_string(),
            p.served_max.to_string(),
        ]);
    }
    t
}

/// Table C — dynamic directory hashing (§4.3): every client creates files
/// in **one** directory. With entry-wise hashing the creates spread across
/// the cluster; without it one authority absorbs everything.
pub fn run_ablate_dir_hash(scale: ExperimentScale) -> Vec<AblationPoint> {
    use dynmds_core::Simulation;
    use dynmds_event::SimTime;
    use dynmds_namespace::NamespaceSpec;
    use dynmds_workload::{GeneralWorkload, OpMix, WorkloadConfig};

    let settings: Vec<(&str, usize)> = vec![("dir-hashing-off", 0), ("dir-hashing-on", 200)];
    parallel_map(&settings, |&(label, threshold)| {
        let mut cfg = scaling_config(StrategyKind::DynamicSubtree, ABLATE_CLUSTER, scale);
        cfg.n_clients = match scale {
            ExperimentScale::Quick => 48,
            ExperimentScale::Full => 120,
        };
        cfg.dir_hash_threshold = threshold;
        cfg.balancing = false; // isolate the mechanism
        cfg.traffic_control = false;
        let snap = NamespaceSpec { users: 8, seed: 31, ..Default::default() }.generate();
        // One shared target directory for every client.
        let hot_dir = snap.shared_roots[0];
        let wl = Box::new(GeneralWorkload::new(
            WorkloadConfig {
                locality: 1.0,
                navigate_prob: 0.0,
                mix: OpMix::create_heavy(),
                seed: 32,
                ..Default::default()
            },
            cfg.n_clients as usize,
            &[hot_dir],
            &[],
            &snap.ns,
        ));
        let mut sim = Simulation::new(cfg, snap, wl);
        let end = SimTime::ZERO + scale.warmup() + scale.measure();
        sim.run_until(SimTime::ZERO + scale.warmup());
        sim.cluster_mut().reset_measurement(SimTime::ZERO + scale.warmup());
        sim.run_until(end);
        let report = sim.finish();
        point(label, &report)
    })
}

/// Table D — journal cache warming on recovery (§4.6: the log "allow\[s\]
/// the memory cache to be quickly preloaded … on startup or after a
/// failure"). A node dies and rejoins; under hashed placement its keys
/// snap back to it immediately, so the first seconds after rejoin show a
/// cold cache vs a journal-warmed one.
pub fn run_ablate_journal_warming(scale: ExperimentScale) -> Vec<AblationPoint> {
    use dynmds_core::Simulation;
    use dynmds_event::{SimDuration, SimTime};
    use dynmds_namespace::MdsId;

    let settings: Vec<(&str, bool)> = vec![("warming-on", true), ("warming-off", false)];
    parallel_map(&settings, |&(label, warming)| {
        let mut cfg = scaling_config(StrategyKind::FileHash, ABLATE_CLUSTER, scale);
        cfg.journal_warming = warming;
        let snap = crate::params::scaling_snapshot(&cfg, scale);
        // Sticky working sets: the §4.6 claim is that the log approximates
        // the *current* working set, so the workload must not churn its
        // region between crash and rejoin.
        let wl = Box::new(dynmds_workload::GeneralWorkload::new(
            dynmds_workload::WorkloadConfig {
                seed: cfg.seed ^ 0x17,
                navigate_prob: 0.01,
                dir_affinity: 0.95,
                ..Default::default()
            },
            cfg.n_clients as usize,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        ));
        let mut sim = Simulation::new(cfg, snap, wl);
        let fail_at = SimTime::ZERO + scale.warmup();
        let back_at = fail_at + SimDuration::from_secs(1);
        sim.schedule_failure(fail_at, MdsId(0));
        sim.schedule_recovery(back_at, MdsId(0));
        // Measure the first seconds after the rejoin: the recovered node
        // is either journal-warmed or stone cold.
        sim.run_until(back_at);
        sim.cluster_mut().reset_measurement(back_at);
        sim.run_until(back_at + SimDuration::from_secs(2));
        let report = sim.finish();
        point(label, &report)
    })
}

/// One client-lease ablation measurement.
#[derive(Clone, Debug)]
pub struct LeasePoint {
    /// Setting label.
    pub label: String,
    /// Operations the MDS cluster served per second, per node.
    pub mds_ops: f64,
    /// Operations completed per second cluster-wide, including reads the
    /// clients answered from leases.
    pub client_ops: f64,
    /// Fraction of all completed operations served by leases.
    pub lease_frac: f64,
    /// Mean client-observed latency, ms.
    pub latency_ms: f64,
}

/// Table E — client metadata leases (§4.2): attribute reads under a live
/// lease never reach the cluster; measures offload and latency.
pub fn run_ablate_leases(scale: ExperimentScale) -> Vec<LeasePoint> {
    use dynmds_core::Simulation;
    use dynmds_event::SimTime;

    let settings: Vec<(&str, bool)> = vec![("leases-off", false), ("leases-on", true)];
    parallel_map(&settings, |&(label, leases)| {
        let mut cfg = scaling_config(StrategyKind::DynamicSubtree, ABLATE_CLUSTER, scale);
        cfg.client_leases = leases;
        let snap = crate::params::scaling_snapshot(&cfg, scale);
        let wl = crate::params::general_workload(&cfg, &snap);
        let mut sim = Simulation::new(cfg, snap, wl);
        let start = SimTime::ZERO + scale.warmup();
        sim.run_until(start);
        sim.cluster_mut().reset_measurement(start);
        let hits_before = sim.cluster().clients.lease_hits();
        sim.run_until(start + scale.measure());
        let hits = sim.cluster().clients.lease_hits() - hits_before;
        let report = sim.finish();
        let secs = report.span_secs().max(1e-9);
        let served = report.total_served() as f64;
        LeasePoint {
            label: label.to_string(),
            mds_ops: report.avg_mds_throughput(),
            client_ops: (served + hits as f64) / secs,
            lease_frac: hits as f64 / (served + hits as f64).max(1.0),
            latency_ms: report.latency.mean().unwrap_or(0.0) * 1e3,
        }
    })
}

/// Renders Table E.
pub fn lease_table(points: &[LeasePoint]) -> Table {
    let mut t = Table::new(
        "Table E: client metadata leases",
        &["setting", "mds_ops/s/node", "client_ops/s", "lease%", "lat_ms"],
    );
    for p in points {
        t.row(&[
            p.label.clone(),
            format!("{:.0}", p.mds_ops),
            format!("{:.0}", p.client_ops),
            format!("{:.1}", p.lease_frac * 100.0),
            format!("{:.2}", p.latency_ms),
        ]);
    }
    t
}

/// Table F — GPFS-style shared writes (§4.2): an N-to-1 write crowd
/// (every client streams size/mtime updates at one checkpoint file).
/// Without shared writes the authority serializes every update; with
/// them, replicas absorb writes locally and the authority max-merges on
/// the heartbeat.
pub fn run_ablate_shared_writes(scale: ExperimentScale) -> Vec<AblationPoint> {
    use dynmds_core::Simulation;
    use dynmds_event::{SimDuration, SimTime};
    use dynmds_namespace::NamespaceSpec;
    use dynmds_workload::WriteCrowd;

    let settings: Vec<(&str, bool)> =
        vec![("shared-writes-off", false), ("shared-writes-on", true)];
    parallel_map(&settings, |&(label, shared)| {
        let mut cfg = scaling_config(StrategyKind::DynamicSubtree, ABLATE_CLUSTER, scale);
        cfg.n_clients = match scale {
            ExperimentScale::Quick => 200,
            ExperimentScale::Full => 1_000,
        };
        cfg.shared_writes = shared;
        cfg.traffic_control = true;
        cfg.replication_threshold = 48.0;
        cfg.balancing = false;
        cfg.heartbeat = SimDuration::from_millis(500);
        cfg.costs.think_mean = SimDuration::from_millis(20);
        let snap = NamespaceSpec { users: 16, seed: 91, ..Default::default() }.generate();
        let target =
            snap.ns.walk(snap.shared_roots[0]).find(|&i| !snap.ns.is_dir(i)).expect("shared file");
        let wl = Box::new(WriteCrowd::new(target, cfg.n_clients as usize));
        let mut sim = Simulation::with_start(
            cfg,
            snap,
            wl,
            SimTime::from_millis(100),
            SimDuration::from_millis(200),
        );
        let warm = SimTime::from_millis(600);
        sim.run_until(warm);
        sim.cluster_mut().reset_measurement(warm);
        sim.run_until(warm + SimDuration::from_secs(2));
        let report = sim.finish();
        point(label, &report)
    })
}

/// Table G — near-tail prefetch insertion (§4.5: "prefetched metadata is
/// inserted near the tail of the cache's LRU list to avoid displacing
/// known useful information"). DirHash (heavy whole-directory prefetch)
/// with the probation segment on vs off, at a cache small enough for
/// displacement to matter.
pub fn run_ablate_probation(scale: ExperimentScale) -> Vec<AblationPoint> {
    let settings: Vec<(&str, bool)> = vec![("near-tail-insertion", false), ("mru-insertion", true)];
    parallel_map(&settings, |&(label, disable)| {
        let mut cfg = scaling_config(StrategyKind::DirHash, ABLATE_CLUSTER, scale);
        cfg.disable_prefetch_probation = disable;
        // Small cache: displacement effects dominate.
        cfg.cache_capacity = scale.cache_capacity() / 3;
        cfg.journal_capacity = cfg.cache_capacity * 4;
        let report = run_steady(cfg, scale);
        point(label, &report)
    })
}

//! Hotspot absorption: proxy tier vs replication+redirect (ROADMAP item 4).
//!
//! The paper's traffic control (§4.4) replicates a *read*-hot item across
//! the cluster and redirects clients, but it has no answer for
//! write-dominated hotspots: a create storm or rename storm serializes at
//! the single authority no matter how many replicas advertise the item.
//! The proxy tier attacks exactly that gap — hot writes are coalesced at
//! the proxy and flushed to the authority as one merged delta per
//! heartbeat, while hot reads are absorbed from the proxy cache.
//!
//! This experiment drives four adversarial hotspot shapes through the
//! same cluster twice — once with replication+redirect (the paper's
//! mechanism, proxies off) and once with the proxy tier (redirect off) —
//! and compares completion latency. The proxy should win decisively on
//! the write storms (lower p99 bucket) and stay comparable on the
//! read-side shapes.
//!
//! Runs use the sharded engine, so the CSV is byte-identical across
//! reruns, shard counts and thread counts at a fixed seed.

use dynmds_core::{ShardReport, ShardedSimulation, SimConfig};
use dynmds_event::SimDuration;
use dynmds_metrics::Table;
use dynmds_partition::StrategyKind;
use dynmds_workload::{CreateStorm, DeepPathHerd, FlashCrowd, RenameStorm};

use crate::params::{scaling_config, scaling_snapshot, ExperimentScale};

/// Cluster size for every hotspot run.
pub const HOTSPOT_CLUSTER: u16 = 8;

/// Proxies in front of the cluster in proxy mode.
pub const HOTSPOT_PROXIES: u16 = 2;

/// The four adversarial hotspot shapes.
pub const HOTSPOT_SCENARIOS: [&str; 4] =
    ["flash_crowd", "create_storm", "rename_storm", "deep_herd"];

/// The two mitigation modes under comparison.
pub const HOTSPOT_MODES: [&str; 2] = ["redirect", "proxy"];

/// Config for one hotspot run. Both modes share sizing; they differ only
/// in which mitigation is armed. Balancing is off so the hotspot cannot
/// migrate away mid-run — the experiment isolates the two absorption
/// mechanisms, not the balancer.
pub fn hotspot_config(mode: &str, scale: ExperimentScale) -> SimConfig {
    let mut cfg = scaling_config(StrategyKind::DynamicSubtree, HOTSPOT_CLUSTER, scale);
    cfg.heartbeat = SimDuration::from_millis(500);
    cfg.balancing = false;
    match mode {
        "redirect" => {
            cfg.traffic_control = true;
        }
        "proxy" => {
            cfg.traffic_control = false;
            cfg.proxy.count = HOTSPOT_PROXIES;
            // The storms concentrate the whole client population on a
            // handful of items; a low threshold lets the detector commit
            // within the first heartbeats of the measurement window.
            cfg.proxy.hot_threshold = 8.0;
        }
        other => panic!("unknown hotspot mode `{other}`"),
    }
    cfg
}

/// One (scenario, mode) outcome.
#[derive(Clone, Debug)]
pub struct HotspotPoint {
    /// Hotspot shape label (one of [`HOTSPOT_SCENARIOS`]).
    pub scenario: &'static str,
    /// Mitigation label (one of [`HOTSPOT_MODES`]).
    pub mode: &'static str,
    /// The engine's (shard-count-invariant) report.
    pub report: ShardReport,
}

/// Runs every scenario under both modes. Runs are sequential: each
/// sharded engine already fans out across the worker pool.
pub fn run_hotspot(
    scale: ExperimentScale,
    shards: usize,
    threads: Option<usize>,
) -> Vec<HotspotPoint> {
    crate::parallel::install_shard_driver();
    let mut points = Vec::new();
    for scenario in HOTSPOT_SCENARIOS {
        for mode in HOTSPOT_MODES {
            eprintln!("hotspot: {scenario} under {mode}...");
            let cfg = hotspot_config(mode, scale);
            let snap = scaling_snapshot(&cfg, scale);
            let n_clients = cfg.n_clients as usize;
            let shared = snap.shared_roots.clone();
            let sim =
                ShardedSimulation::new(cfg, shards, threads, snap, &move |ns| match scenario {
                    "flash_crowd" => {
                        let target =
                            ns.walk(ns.root()).find(|&i| !ns.is_dir(i)).expect("a file exists");
                        Box::new(FlashCrowd::new(target, n_clients))
                    }
                    "create_storm" => {
                        let dir = shared.first().copied().unwrap_or_else(|| ns.root());
                        Box::new(CreateStorm::new(dir, n_clients))
                    }
                    "rename_storm" => Box::new(RenameStorm::new(
                        if shared.is_empty() { vec![ns.root()] } else { shared.clone() },
                        n_clients,
                    )),
                    "deep_herd" => {
                        Box::new(DeepPathHerd::new(DeepPathHerd::deepest_item(ns), n_clients))
                    }
                    other => panic!("unknown hotspot scenario `{other}`"),
                });
            let report = sim.run_measured(scale.warmup(), scale.measure());
            points.push(HotspotPoint { scenario, mode, report });
        }
    }
    points
}

/// Renders the hotspot table (and CSV): latency per (scenario, mode)
/// plus the proxy tier's activity counters.
pub fn hotspot_table(points: &[HotspotPoint]) -> Table {
    let mut t = Table::new(
        "Hotspot absorption: proxy tier vs replication+redirect",
        &[
            "scenario",
            "mode",
            "ops",
            "lat_mean_us",
            "lat_p50_us",
            "lat_p99_us",
            "failed",
            "absorbed",
            "coalesced",
            "forwarded",
            "flushes",
        ],
    );
    for p in points {
        let r = &p.report;
        t.row(&[
            p.scenario.to_string(),
            p.mode.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.latency.mean_us()),
            r.latency.quantile_us(0.50).to_string(),
            r.latency.quantile_us(0.99).to_string(),
            r.failed.to_string(),
            r.proxy_absorbed.to_string(),
            r.proxy_coalesced.to_string(),
            r.proxy_forwarded.to_string(),
            r.proxy_flushes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(points: &'a [HotspotPoint], scenario: &str, mode: &str) -> &'a HotspotPoint {
        points
            .iter()
            .find(|p| p.scenario == scenario && p.mode == mode)
            .expect("every (scenario, mode) pair ran")
    }

    #[test]
    fn proxy_beats_redirect_on_create_storm_p99() {
        let points = run_hotspot(ExperimentScale::Quick, 2, Some(1));
        assert_eq!(points.len(), HOTSPOT_SCENARIOS.len() * HOTSPOT_MODES.len());
        let redirect = point(&points, "create_storm", "redirect");
        let proxy = point(&points, "create_storm", "proxy");
        assert!(
            proxy.report.proxy_absorbed + proxy.report.proxy_coalesced > 0,
            "proxy mode never engaged the tier"
        );
        assert_eq!(redirect.report.proxy_absorbed, 0, "redirect mode must not touch the tier");
        let (rp99, pp99) =
            (redirect.report.latency.quantile_us(0.99), proxy.report.latency.quantile_us(0.99));
        // Redirect never replicates write-hot items, so the create storm
        // serializes at one authority; the proxy acks from coalescing and
        // collapses the tail by whole buckets.
        assert!(pp99 < rp99, "proxy p99 {pp99}µs not below redirect p99 {rp99}µs");
    }

    #[test]
    fn hotspot_csv_is_invariant_across_shard_counts() {
        let a = hotspot_table(&run_hotspot(ExperimentScale::Quick, 1, Some(1))).to_csv();
        let b = hotspot_table(&run_hotspot(ExperimentScale::Quick, 4, Some(2))).to_csv();
        assert_eq!(a, b, "CSV must be shard-count- and thread-count-invariant");
    }
}

//! Figure 4: cache hit rate as a function of (relative) cache size.
//!
//! "Figure 4 shows how cache performance varies with the cache size,
//! expressed as a fraction of the total size of the file system's
//! metadata. For smaller caches, inefficient cache utilization due to
//! replicated prefixes results in lower hit rates" (§5.3.1).

use dynmds_metrics::Table;
use dynmds_partition::StrategyKind;

use crate::parallel::parallel_map;
use crate::params::{run_steady, scaling_config, ExperimentScale};

/// Cluster size used for the Figure 4 sweep (fixed; only cache varies).
pub const FIG4_CLUSTER: u16 = 8;

/// One (strategy, cache fraction) measurement.
#[derive(Clone, Debug)]
pub struct HitratePoint {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Aggregate cache size relative to total metadata size.
    pub cache_frac: f64,
    /// Cluster-wide cache hit rate.
    pub hit_rate: f64,
    /// Average per-MDS throughput (context).
    pub throughput: f64,
}

/// Runs the sweep: every strategy × every cache fraction.
pub fn run_hitrate(scale: ExperimentScale) -> Vec<HitratePoint> {
    let fracs = scale.cache_fractions();
    let total_items = scale.items_per_mds() * FIG4_CLUSTER as u64;
    let configs: Vec<(StrategyKind, f64)> =
        StrategyKind::ALL.iter().flat_map(|&s| fracs.iter().map(move |&f| (s, f))).collect();
    parallel_map(&configs, |&(strategy, frac)| {
        let mut cfg = scaling_config(strategy, FIG4_CLUSTER, scale);
        cfg.cache_capacity = ((total_items as f64 * frac / FIG4_CLUSTER as f64) as usize).max(64);
        cfg.journal_capacity = cfg.cache_capacity;
        let report = run_steady(cfg, scale);
        HitratePoint {
            strategy,
            cache_frac: frac,
            hit_rate: report.overall_hit_rate(),
            throughput: report.avg_mds_throughput(),
        }
    })
}

/// Figure 4 table: rows = cache fraction, columns = strategy hit rate.
pub fn fig4_table(points: &[HitratePoint]) -> Table {
    let mut fracs: Vec<f64> = points.iter().map(|p| p.cache_frac).collect();
    fracs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    fracs.dedup();
    let mut headers: Vec<String> = vec!["cache_frac".to_string()];
    headers.extend(StrategyKind::ALL.iter().map(|s| s.label().to_string()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t =
        Table::new("Figure 4: cache hit rate vs cache size (fraction of total metadata)", &hrefs);
    for f in fracs {
        let mut row = vec![format!("{f:.3}")];
        for s in StrategyKind::ALL {
            let v = points
                .iter()
                .find(|p| p.strategy == s && (p.cache_frac - f).abs() < 1e-12)
                .map(|p| format!("{:.3}", p.hit_rate))
                .unwrap_or_else(|| "-".into());
            row.push(v);
        }
        t.row(&row);
    }
    t
}

//! CLI regenerating the paper's evaluation figures.
//!
//! ```text
//! experiments [--quick] [--csv DIR] <SUBCOMMAND>
//! ```
//!
//! Subcommands: `fig2` `fig3` `fig4` `fig5` `fig6` `fig7` (the paper's
//! figures), `sci` (the §5.2 scientific workload), `ablate-prefetch`
//! `ablate-balance` `ablate-dirhash` `ablate-warming` `ablate-leases`
//! `ablate-shared-writes` `ablate-probation` (design-choice ablations),
//! or `all`.
//!
//! Each subcommand prints the figure's data as an aligned table; `--csv`
//! additionally writes machine-readable CSVs.

use std::io::Write as _;

use dynmds_event::SimDuration;
use dynmds_harness::{ablation, flashrun, hitrate, scaling, scirun, shiftrun, ExperimentScale};
use dynmds_metrics::Table;

struct Args {
    scale: ExperimentScale,
    csv_dir: Option<String>,
    command: String,
}

fn parse_args() -> Args {
    let mut scale = ExperimentScale::Full;
    let mut csv_dir = None;
    let mut command = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = ExperimentScale::Quick,
            "--csv" => csv_dir = Some(it.next().unwrap_or_else(|| usage("missing --csv DIR"))),
            "-h" | "--help" => usage(""),
            other if !other.starts_with('-') && command.is_none() => command = Some(other.to_string()),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    Args { scale, csv_dir, command: command.unwrap_or_else(|| "all".to_string()) }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [--quick] [--csv DIR] \
         <fig2|fig3|fig4|fig5|fig6|fig7|sci|ablate-prefetch|ablate-balance|ablate-dirhash|ablate-warming|ablate-leases|ablate-shared-writes|ablate-probation|all>"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn emit(args: &Args, name: &str, table: &Table) {
    println!("{}", table.render());
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(table.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let series_bin = match scale {
        ExperimentScale::Quick => SimDuration::from_secs(1),
        ExperimentScale::Full => SimDuration::from_secs(2),
    };

    let want = |name: &str| args.command == name || args.command == "all";

    if want("fig2") || want("fig3") {
        eprintln!("running scaling sweep (figures 2 and 3)...");
        let points = scaling::run_scaling(scale);
        if want("fig2") {
            emit(&args, "fig2", &scaling::fig2_table(&points));
        }
        if want("fig3") {
            emit(&args, "fig3", &scaling::fig3_table(&points));
        }
        emit(&args, "scaling_detail", &scaling::context_table(&points));
    }

    if want("fig4") {
        eprintln!("running cache-size sweep (figure 4)...");
        let points = hitrate::run_hitrate(scale);
        emit(&args, "fig4", &hitrate::fig4_table(&points));
    }

    if want("fig5") || want("fig6") {
        eprintln!("running workload-shift comparison (figures 5 and 6)...");
        let r = shiftrun::run_shift(scale);
        if want("fig5") {
            emit(&args, "fig5", &shiftrun::fig5_table(&r, series_bin));
        }
        if want("fig6") {
            emit(&args, "fig6", &shiftrun::fig6_table(&r, series_bin));
        }
        let s = shiftrun::shift_summary(&r);
        println!(
            "post-shift mean per-MDS throughput: dynamic {:.0} ops/s vs static {:.0} ops/s",
            s.dyn_after, s.sta_after
        );
        println!(
            "post-shift per-node spread (max-min): dynamic {:.0} vs static {:.0}\n",
            s.dyn_spread, s.sta_spread
        );
    }

    if want("fig7") {
        eprintln!("running flash crowd (figure 7)...");
        let r = flashrun::run_flash(scale);
        let bin = SimDuration::from_millis(50);
        emit(&args, "fig7", &flashrun::fig7_table(&r, bin));
        let s = flashrun::flash_summary(&r, scale);
        println!(
            "time to serve 95% of the crowd: with TC {:.3}s, without TC {:.3}s",
            s.tc_t95, s.notc_t95
        );
        println!(
            "total forwards: with TC {}, without TC {}\n",
            s.tc_forwards, s.notc_forwards
        );
    }

    if want("sci") {
        eprintln!("running scientific-burst workload comparison...");
        let pts = scirun::run_sci(scale);
        emit(&args, "sci", &scirun::sci_table(&pts));
    }

    if want("ablate-prefetch") {
        eprintln!("running prefetch ablation (Table A)...");
        let pts = ablation::run_ablate_prefetch(scale);
        emit(
            &args,
            "ablate_prefetch",
            &ablation::ablation_table("Table A: embedded-inode directory prefetch", &pts),
        );
    }

    if want("ablate-balance") {
        eprintln!("running balancing ablation (Table B)...");
        let pts = ablation::run_ablate_balance(scale);
        emit(
            &args,
            "ablate_balance",
            &ablation::ablation_table("Table B: load balancing vs total throughput", &pts),
        );
    }

    if want("ablate-dirhash") {
        eprintln!("running huge-directory hashing ablation (Table C)...");
        let pts = ablation::run_ablate_dir_hash(scale);
        emit(
            &args,
            "ablate_dirhash",
            &ablation::ablation_table(
                "Table C: entry-wise hashing of one huge hot directory",
                &pts,
            ),
        );
    }

    if want("ablate-leases") {
        eprintln!("running client-lease ablation (Table E)...");
        let pts = ablation::run_ablate_leases(scale);
        emit(&args, "ablate_leases", &ablation::lease_table(&pts));
    }

    if want("ablate-probation") {
        eprintln!("running prefetch-insertion ablation (Table G)...");
        let pts = ablation::run_ablate_probation(scale);
        emit(
            &args,
            "ablate_probation",
            &ablation::ablation_table(
                "Table G: near-tail vs MRU insertion of prefetched metadata",
                &pts,
            ),
        );
    }

    if want("ablate-shared-writes") {
        eprintln!("running shared-writes ablation (Table F)...");
        let pts = ablation::run_ablate_shared_writes(scale);
        emit(
            &args,
            "ablate_shared_writes",
            &ablation::ablation_table(
                "Table F: GPFS-style shared writes under an N-to-1 write crowd",
                &pts,
            ),
        );
    }

    if want("ablate-warming") {
        eprintln!("running journal cache-warming ablation (Table D)...");
        let pts = ablation::run_ablate_journal_warming(scale);
        emit(
            &args,
            "ablate_warming",
            &ablation::ablation_table(
                "Table D: journal cache warming on failover (post-failure window)",
                &pts,
            ),
        );
    }
}

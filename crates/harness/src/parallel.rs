//! Order-preserving parallel execution over a persistent worker pool.
//!
//! [`parallel_map`] used to spawn fresh OS threads per call, which is
//! fine for a handful of experiment stages but not for a per-window shard
//! loop that fans out thousands of times per run. All entry points now
//! share one lazily-grown, process-wide pool of parked workers; a call
//! hands them a *scoped* job (borrowing the caller's stack) and
//! participates inline itself, so:
//!
//! * idle steady state is flat — repeated calls reuse the same threads
//!   and spawn nothing new ([`tests::idle_steady_state_spawns_no_new_threads`]);
//! * nesting cannot deadlock — a worker running an outer job that issues
//!   an inner call simply drains the inner items inline; helper tickets
//!   that no worker ever picks up are cancelled, not waited for;
//! * worker panics are caught (workers are recycled, never poisoned) and
//!   re-raised on the calling thread.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One result slot. Each index is written by exactly one worker (the one
/// that claimed it from the shared counter) and read only after the job
/// completed, so the unsynchronized interior access is safe — workers
/// never contend on a shared lock the way a whole-results mutex would
/// force them to.
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

unsafe impl<R: Send> Sync for Slot<R> {}

/// Pure worker-count policy, separated from process state so tests never
/// have to mutate environment variables (mutating the env from test
/// threads races with concurrent reads and is UB-adjacent on some
/// platforms). Precedence: explicit caller override, then the
/// `DYNMDS_THREADS` value, then detected parallelism; invalid or
/// non-positive overrides fall through, and the result never exceeds the
/// item count.
fn resolve_workers(
    n_items: usize,
    explicit: Option<usize>,
    env: Option<&str>,
    detected: usize,
) -> usize {
    let from_env = || env.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&t| t > 0);
    let chosen = explicit.filter(|&t| t > 0).or_else(from_env).unwrap_or(detected.max(1));
    chosen.min(n_items)
}

/// Process-wide thread override installed by `--threads` entry points
/// (zero means "unset"). The `DYNMDS_THREADS` environment variable is
/// deliberately read once and cached (mutating the env at runtime races
/// with concurrent reads), which used to mean a CLI that ran several
/// sub-runs in one process could not retarget the worker count between
/// them. CLIs now publish their parsed `--threads` here instead of
/// touching the environment; a per-call explicit count still wins.
static PROCESS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or with `None` clears) the process-wide worker-count
/// override. Call from CLI entry points after parsing `--threads`; every
/// later pool call without a per-call explicit count uses this value in
/// preference to the cached `DYNMDS_THREADS` / detected parallelism.
pub fn set_thread_override(threads: Option<usize>) {
    PROCESS_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Worker count for a run. Precedence: per-call explicit override, then
/// the process-wide [`set_thread_override`] value, then the
/// `DYNMDS_THREADS` environment variable (a positive integer — lets
/// oversubscribed CI machines and reviewers pin reproducible timings),
/// otherwise the detected parallelism. Both process-level inputs are
/// read once and cached: `available_parallelism` re-reads cgroup files
/// on Linux (tens of µs), which the per-window shard fan-out calls far
/// too often to absorb.
pub(crate) fn worker_count(n_items: usize, explicit: Option<usize>) -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    static ENV: OnceLock<Option<String>> = OnceLock::new();
    let detected = *DETECTED
        .get_or_init(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4));
    let env = ENV.get_or_init(|| std::env::var("DYNMDS_THREADS").ok());
    let explicit =
        explicit.filter(|&t| t > 0).or_else(|| match PROCESS_OVERRIDE.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        });
    resolve_workers(n_items, explicit, env.as_deref(), detected)
}

/// Mutable state of one scoped job, guarded by [`Job::gate`].
struct JobState {
    /// Set by the issuing thread when it has finished its own share and
    /// no longer guarantees the borrowed closure is alive; workers that
    /// dequeue a ticket afterwards must not touch the closure.
    cancelled: bool,
    /// Workers currently executing the closure.
    running: usize,
    /// First panic payload caught in a worker, re-raised by the caller.
    panic: Option<Box<dyn Any + Send>>,
}

/// A scoped job: a borrowed `Fn() + Sync` body that the caller and any
/// number of pool workers execute concurrently. The lifetime of the body
/// is erased to place it in the process-wide queue; safety rests on the
/// cancel-then-drain handshake in [`scoped`]: the body pointer is only
/// dereferenced by a worker that registered in `running` while the job
/// was not yet cancelled, and the caller does not return (or unwind)
/// before `cancelled` is set and `running` has drained to zero.
struct Job {
    body: *const (dyn Fn() + Sync),
    gate: Mutex<JobState>,
    done: Condvar,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Executes the job body once on a pool worker, unless the job was
    /// already cancelled. Panics are captured, not propagated — the
    /// worker thread must survive to serve later jobs.
    fn serve(&self) {
        {
            let mut st = self.gate.lock().unwrap();
            if st.cancelled {
                return;
            }
            st.running += 1;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*self.body)() }));
        let mut st = self.gate.lock().unwrap();
        st.running -= 1;
        if let Err(payload) = outcome {
            st.panic.get_or_insert(payload);
        }
        if st.running == 0 {
            self.done.notify_all();
        }
    }
}

/// The process-wide pool: a ticket queue plus parked worker threads.
/// Workers are spawned on demand up to the largest helper count any call
/// has asked for, then parked on the condvar between jobs — never
/// respawned, never exited.
struct WorkerPool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    wake: Condvar,
    spawned: AtomicUsize,
}

fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

impl WorkerPool {
    /// Grows the pool to at least `want` parked workers.
    fn ensure_workers(&'static self, want: usize) {
        while self.spawned.load(Ordering::Relaxed) < want {
            self.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("dynmds-pool".into())
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        let mut queue = self.queue.lock().unwrap();
        loop {
            match queue.pop_front() {
                Some(job) => {
                    drop(queue);
                    job.serve();
                    queue = self.queue.lock().unwrap();
                }
                None => queue = self.wake.wait(queue).unwrap(),
            }
        }
    }

    /// Number of workers ever spawned (diagnostic for the idle test).
    #[cfg_attr(not(test), allow(dead_code))]
    fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }
}

/// Runs `body` on the calling thread plus up to `helpers` pool workers,
/// returning once every execution of `body` has finished. `body` is
/// typically a claim-loop over a shared atomic counter, so however many
/// workers actually show up, each item runs exactly once. Helper tickets
/// still queued when the caller finishes are cancelled rather than
/// waited for — that is what makes nested calls deadlock-free even when
/// every worker is busy.
fn scoped(helpers: usize, body: &(dyn Fn() + Sync)) {
    let pool = pool();
    pool.ensure_workers(helpers);
    // Erase the borrow lifetime; see `Job` for the safety argument.
    let body_static: *const (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let job = Arc::new(Job {
        body: body_static,
        gate: Mutex::new(JobState { cancelled: false, running: 0, panic: None }),
        done: Condvar::new(),
    });
    {
        let mut queue = pool.queue.lock().unwrap();
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&job));
        }
    }
    pool.wake.notify_all();

    /// Drop guard: even if the inline share of the body unwinds, the job
    /// is cancelled and in-flight workers are drained before the stack
    /// frame holding the borrowed closure disappears.
    struct Finish<'a>(&'a Job);
    impl Drop for Finish<'_> {
        fn drop(&mut self) {
            let mut st = self.0.gate.lock().unwrap();
            st.cancelled = true;
            while st.running > 0 {
                st = self.0.done.wait(st).unwrap();
            }
        }
    }

    let finish = Finish(&job);
    let inline = catch_unwind(AssertUnwindSafe(body));
    drop(finish);
    let worker_panic = job.gate.lock().unwrap().panic.take();
    if let Err(payload) = inline {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Applies `f` to every item on the shared worker pool, returning the
/// results in input order. Each item runs exactly once; panics in workers
/// propagate. Worker count comes from `DYNMDS_THREADS` or detected
/// parallelism; use [`parallel_map_threads`] to pin it explicitly.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(items, None, f)
}

/// [`parallel_map`] with an explicit worker-count override (`None` defers
/// to `DYNMDS_THREADS` / detected parallelism). Results are in input
/// order regardless of the thread count, so output is byte-stable across
/// any choice of `threads`.
pub fn parallel_map_threads<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n, threads);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> =
        (0..n).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();
    // Tracks how many slots were actually filled so a worker panic (which
    // propagates after the job drains) can't leak into reads of
    // uninitialized memory: we only assume all slots on full completion.
    let filled = AtomicUsize::new(0);

    scoped(workers - 1, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = f(&items[i]);
        // Safety: index i was claimed exclusively via fetch_add.
        unsafe { (*slots[i].0.get()).write(r) };
        filled.fetch_add(1, Ordering::Release);
    });

    assert_eq!(filled.load(Ordering::Acquire), n, "every slot filled");
    slots
        .into_iter()
        // Safety: all n slots initialized (asserted above), read once each.
        .map(|s| unsafe { s.0.into_inner().assume_init() })
        .collect()
}

/// Covariant-free shared wrapper for a raw element pointer so the claim
/// loop below can hand disjoint `&mut` elements to workers.
struct SharedMut<T>(*mut T);
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Element pointer; going through `&self` (rather than the raw field)
    /// keeps closures capturing the `Sync` wrapper, not the bare pointer.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Applies `f(i, &mut items[i])` to every element in place on the shared
/// worker pool — the fan-out primitive for the sharded simulation loop,
/// where each shard is stepped exclusively by whichever worker claims
/// it. Claim order is racy but irrelevant: each index is mutated by
/// exactly one worker, and the caller regains exclusive access to the
/// whole slice when the call returns. `threads` follows the same policy
/// as [`parallel_map_threads`]; with one worker everything runs inline
/// on the caller with zero synchronization.
pub fn parallel_for_mut<T, F>(items: &mut [T], threads: Option<usize>, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = worker_count(n, threads);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let base = SharedMut(items.as_mut_ptr());
    scoped(workers - 1, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // Safety: index i was claimed exclusively via fetch_add, so this
        // is the only live reference to element i; the borrow of `items`
        // outlives `scoped`, which drains all workers before returning.
        let item = unsafe { &mut *base.at(i) };
        f(i, item);
    });
}

/// Runs `body(i)` for every index in `0..n` on the shared worker pool.
/// The allocation-free sibling of [`parallel_for_mut`] for callers whose
/// items live behind their own indexed storage — the sharded engine
/// calls this once per 100µs simulation window, so even one `Vec` per
/// call would show up in throughput.
pub fn parallel_for_indices(n: usize, threads: Option<usize>, body: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let workers = worker_count(n, threads);
    if workers <= 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    scoped(workers - 1, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        body(i);
    });
}

/// Routes the sharded engine's per-window fan-out through this worker
/// pool, so sweep slots and shard stepping share one set of threads.
/// Call once at binary startup; later calls are no-ops.
pub fn install_shard_driver() {
    dynmds_core::shard::install_parallel_driver(parallel_for_indices);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn results_are_not_copy_types() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, |&x| format!("v{x}"));
        assert_eq!(out[49], "v49");
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn worker_resolution_is_pure_and_env_free() {
        // Env override wins over detection and clamps to the item count.
        assert_eq!(resolve_workers(8, None, Some("2"), 16), 2);
        assert_eq!(resolve_workers(1, None, Some("2"), 16), 1, "never more workers than items");
        // Invalid or non-positive env values fall back to detection.
        assert_eq!(resolve_workers(8, None, Some("0"), 4), 4);
        assert_eq!(resolve_workers(8, None, Some("not-a-number"), 4), 4);
        assert_eq!(resolve_workers(8, None, Some(" 3 "), 4), 3, "whitespace tolerated");
        // No env: detected parallelism, still clamped.
        assert_eq!(resolve_workers(8, None, None, 4), 4);
        assert_eq!(resolve_workers(2, None, None, 4), 2);
        assert_eq!(resolve_workers(8, None, None, 0), 1, "detection floor is one worker");
        // Explicit override beats both env and detection; zero is ignored.
        assert_eq!(resolve_workers(8, Some(3), Some("2"), 16), 3);
        assert_eq!(resolve_workers(8, Some(0), Some("2"), 16), 2);
    }

    #[test]
    fn explicit_thread_override_runs_and_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [Some(1), Some(2), Some(64), None] {
            let out = parallel_map_threads(&items, threads, |&x| x * 3);
            assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>(), "{threads:?}");
        }
    }

    #[test]
    fn idle_steady_state_spawns_no_new_threads() {
        let items: Vec<u64> = (0..32).collect();
        // Warm the pool to (at least) three helpers.
        let _ = parallel_map_threads(&items, Some(4), |&x| x);
        let after_warmup = pool().threads_spawned();
        assert!(after_warmup >= 3, "warm-up grew the pool to {after_warmup}");
        // A shard-loop-shaped usage pattern: many small fan-outs. The
        // pool must recycle its parked workers, not spawn per call.
        for round in 0..200 {
            let out = parallel_map_threads(&items, Some(4), |&x| x + round);
            assert_eq!(out[0], round);
            let mut shards: Vec<u64> = (0..4).collect();
            parallel_for_mut(&mut shards, Some(4), |_, s| *s += 1);
        }
        assert_eq!(
            pool().threads_spawned(),
            after_warmup,
            "steady-state calls must not spawn threads"
        );
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        // Outer items each fan out again; with every pool worker busy on
        // outer bodies, inner calls must complete inline.
        let outer: Vec<u64> = (0..8).collect();
        let out = parallel_map_threads(&outer, Some(4), |&x| {
            let inner: Vec<u64> = (0..16).collect();
            parallel_map_threads(&inner, Some(4), |&y| x * 100 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|x| (0..16).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_for_mut_mutates_every_element_in_place() {
        for threads in [Some(1), Some(3), None] {
            let mut items: Vec<u64> = (0..41).collect();
            parallel_for_mut(&mut items, threads, |i, x| {
                assert_eq!(*x, i as u64);
                *x = *x * 10 + 1;
            });
            assert_eq!(items, (0..41).map(|x| x * 10 + 1).collect::<Vec<_>>(), "{threads:?}");
        }
    }

    #[test]
    fn process_override_beats_env_and_yields_to_per_call() {
        // Regression: `--threads` used to be honored only at the call
        // sites that happened to thread it through; a multi-sub-run CLI
        // retargeting the count mid-process (where re-setting
        // DYNMDS_THREADS is both racy and ignored by the OnceLock cache)
        // silently kept the old value. The process override closes that
        // gap. Run the whole scenario in one test so the global override
        // can be restored before any assertion-free exit path.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_thread_override(None);
            }
        }
        let _restore = Restore;

        set_thread_override(Some(1));
        // With one worker every entry point runs inline on the caller.
        let caller = std::thread::current().id();
        let items: Vec<u64> = (0..32).collect();
        let seen: Vec<std::thread::ThreadId> =
            parallel_map(&items, |_| std::thread::current().id());
        assert!(
            seen.iter().all(|&t| t == caller),
            "override Some(1) must run the default-threaded path inline"
        );
        assert_eq!(worker_count(32, None), 1, "override reaches worker_count");
        // A per-call explicit count still beats the process override.
        assert_eq!(worker_count(32, Some(3)), 3, "per-call explicit wins");
        // Retargeting mid-process takes effect immediately.
        set_thread_override(Some(2));
        assert_eq!(worker_count(32, None), 2, "override is re-readable, not cached");
        // Clearing restores the env/detected path (≥1 whatever it is).
        set_thread_override(None);
        assert!(worker_count(32, None) >= 1);
    }

    #[test]
    fn worker_panics_propagate_and_pool_survives() {
        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map_threads(&items, Some(4), |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "the item panic must propagate to the caller");
        // The pool is still serviceable afterwards.
        let out = parallel_map_threads(&items, Some(4), |&x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(out[63], 64);
    }
}

//! Order-preserving parallel map over independent simulation runs.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One result slot. Each index is written by exactly one worker (the one
/// that claimed it from the shared counter) and read only after all
/// workers have joined, so the unsynchronized interior access is safe —
/// workers never contend on a shared lock the way a whole-results mutex
/// would force them to.
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

unsafe impl<R: Send> Sync for Slot<R> {}

/// Pure worker-count policy, separated from process state so tests never
/// have to mutate environment variables (mutating the env from test
/// threads races with concurrent reads and is UB-adjacent on some
/// platforms). Precedence: explicit caller override, then the
/// `DYNMDS_THREADS` value, then detected parallelism; invalid or
/// non-positive overrides fall through, and the result never exceeds the
/// item count.
fn resolve_workers(
    n_items: usize,
    explicit: Option<usize>,
    env: Option<&str>,
    detected: usize,
) -> usize {
    let from_env = || env.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&t| t > 0);
    let chosen = explicit.filter(|&t| t > 0).or_else(from_env).unwrap_or(detected.max(1));
    chosen.min(n_items)
}

/// Worker count for a run: an explicit override wins, otherwise the
/// `DYNMDS_THREADS` environment variable (a positive integer — lets
/// oversubscribed CI machines and reviewers pin reproducible timings),
/// otherwise the detected parallelism.
fn worker_count(n_items: usize, explicit: Option<usize>) -> usize {
    let detected = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let env = std::env::var("DYNMDS_THREADS").ok();
    resolve_workers(n_items, explicit, env.as_deref(), detected)
}

/// Applies `f` to every item on a pool of worker threads, returning the
/// results in input order. Each item runs exactly once; panics in workers
/// propagate. Worker count comes from `DYNMDS_THREADS` or detected
/// parallelism; use [`parallel_map_threads`] to pin it explicitly.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(items, None, f)
}

/// [`parallel_map`] with an explicit worker-count override (`None` defers
/// to `DYNMDS_THREADS` / detected parallelism). Results are in input
/// order regardless of the thread count, so output is byte-stable across
/// any choice of `threads`.
pub fn parallel_map_threads<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n, threads);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> =
        (0..n).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();
    // Tracks how many slots were actually filled so a worker panic (which
    // aborts the scope by propagating) can't leak into reads of
    // uninitialized memory: we only assume all slots on full completion.
    let filled = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // Safety: index i was claimed exclusively via fetch_add.
                unsafe { (*slots[i].0.get()).write(r) };
                filled.fetch_add(1, Ordering::Release);
            });
        }
    });

    assert_eq!(filled.load(Ordering::Acquire), n, "every slot filled");
    slots
        .into_iter()
        // Safety: all n slots initialized (asserted above), read once each.
        .map(|s| unsafe { s.0.into_inner().assume_init() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn results_are_not_copy_types() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, |&x| format!("v{x}"));
        assert_eq!(out[49], "v49");
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn worker_resolution_is_pure_and_env_free() {
        // Env override wins over detection and clamps to the item count.
        assert_eq!(resolve_workers(8, None, Some("2"), 16), 2);
        assert_eq!(resolve_workers(1, None, Some("2"), 16), 1, "never more workers than items");
        // Invalid or non-positive env values fall back to detection.
        assert_eq!(resolve_workers(8, None, Some("0"), 4), 4);
        assert_eq!(resolve_workers(8, None, Some("not-a-number"), 4), 4);
        assert_eq!(resolve_workers(8, None, Some(" 3 "), 4), 3, "whitespace tolerated");
        // No env: detected parallelism, still clamped.
        assert_eq!(resolve_workers(8, None, None, 4), 4);
        assert_eq!(resolve_workers(2, None, None, 4), 2);
        assert_eq!(resolve_workers(8, None, None, 0), 1, "detection floor is one worker");
        // Explicit override beats both env and detection; zero is ignored.
        assert_eq!(resolve_workers(8, Some(3), Some("2"), 16), 3);
        assert_eq!(resolve_workers(8, Some(0), Some("2"), 16), 2);
    }

    #[test]
    fn explicit_thread_override_runs_and_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [Some(1), Some(2), Some(64), None] {
            let out = parallel_map_threads(&items, threads, |&x| x * 3);
            assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>(), "{threads:?}");
        }
    }
}

//! Order-preserving parallel map over independent simulation runs.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One result slot. Each index is written by exactly one worker (the one
/// that claimed it from the shared counter) and read only after all
/// workers have joined, so the unsynchronized interior access is safe —
/// workers never contend on a shared lock the way a whole-results mutex
/// would force them to.
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

unsafe impl<R: Send> Sync for Slot<R> {}

/// Worker-count override: `DYNMDS_THREADS` (a positive integer) wins over
/// the detected parallelism, so oversubscribed CI machines and reviewers
/// can pin reproducible timings.
fn worker_count(n_items: usize) -> usize {
    let detected = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let chosen = std::env::var("DYNMDS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(detected);
    chosen.min(n_items)
}

/// Applies `f` to every item on a pool of worker threads, returning the
/// results in input order. Each item runs exactly once; panics in workers
/// propagate.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> =
        (0..n).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();
    // Tracks how many slots were actually filled so a worker panic (which
    // aborts the scope by propagating) can't leak into reads of
    // uninitialized memory: we only assume all slots on full completion.
    let filled = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // Safety: index i was claimed exclusively via fetch_add.
                unsafe { (*slots[i].0.get()).write(r) };
                filled.fetch_add(1, Ordering::Release);
            });
        }
    });

    assert_eq!(filled.load(Ordering::Acquire), n, "every slot filled");
    slots
        .into_iter()
        // Safety: all n slots initialized (asserted above), read once each.
        .map(|s| unsafe { s.0.into_inner().assume_init() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn results_are_not_copy_types() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, |&x| format!("v{x}"));
        assert_eq!(out[49], "v49");
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn thread_env_override_is_honoured() {
        // Worker-count selection is pure given the env value; exercise the
        // parse + clamp logic directly.
        std::env::set_var("DYNMDS_THREADS", "2");
        assert_eq!(worker_count(8), 2);
        assert_eq!(worker_count(1), 1, "never more workers than items");
        std::env::set_var("DYNMDS_THREADS", "0");
        assert!(worker_count(8) >= 1, "invalid override falls back");
        std::env::set_var("DYNMDS_THREADS", "not-a-number");
        assert!(worker_count(8) >= 1);
        std::env::remove_var("DYNMDS_THREADS");
    }
}

//! Order-preserving parallel map over independent simulation runs.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item on a pool of worker threads, returning the
/// results in input order. Each item runs exactly once; panics in workers
/// propagate.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }
}

//! The scale tier (ROADMAP item 1): ≥10⁶ simulated clients against a
//! 10⁸-inode-class namespace.
//!
//! The trick that makes this fit in memory is the streaming snapshot
//! generator: the namespace is *logically* sized to the target (every
//! subtree's content is fixed by the deterministic seed), but only the
//! user subtrees the workload actually touches are materialized. A
//! million clients then hammer the materialized sample through
//! [`ScaleWorkload`], whose per-shard copies share their file tables
//! behind `Arc`s.
//!
//! Reported metrics split by determinism:
//!
//! * the CSV ([`scale_table`]) carries only virtual-time-derived values —
//!   ops, latency quantiles, namespace footprint — and is byte-identical
//!   across reruns, shard counts, and thread counts at a fixed seed;
//! * wall-clock throughput and peak RSS are machine-dependent and go to
//!   stdout / `BENCH_sim.json` only, never into the CSV.

use std::sync::Arc;
use std::time::Instant;

use dynmds_core::{ShardReport, ShardedSimulation, SimConfig};
use dynmds_event::SimDuration;
use dynmds_metrics::Table;
use dynmds_namespace::{NamespaceSpec, StreamingGenerator};
use dynmds_partition::StrategyKind;
use dynmds_storage::DiskParams;
use dynmds_workload::ScaleWorkload;

/// Sizing and engine knobs for one scale run.
#[derive(Clone, Debug)]
pub struct ScaleParams {
    /// Simulated clients.
    pub clients: u32,
    /// Logical users in the namespace spec (most stay unmaterialized).
    pub users: usize,
    /// Logical namespace size target (inodes).
    pub target_items: u64,
    /// User subtrees to materialize (the workload's footprint).
    pub materialize_users: usize,
    /// Files per client ring.
    pub ring: u32,
    /// Cluster size.
    pub n_mds: u16,
    /// Per-MDS cache capacity (inodes).
    pub cache_capacity: usize,
    /// Mean think time between a client's operations.
    pub think_mean: SimDuration,
    /// Unmeasured lease-population span.
    pub warmup: SimDuration,
    /// Measured span.
    pub measure: SimDuration,
    /// Event-queue shards.
    pub shards: usize,
    /// Worker threads (`None` = process override / `DYNMDS_THREADS` /
    /// detected).
    pub threads: Option<usize>,
    /// Strategies to run, in order.
    pub strategies: Vec<StrategyKind>,
    /// Base seed.
    pub seed: u64,
}

impl ScaleParams {
    /// CI smoke sizing: ~10⁶ logical inodes, 50k clients — seconds.
    pub fn smoke() -> Self {
        ScaleParams {
            clients: 50_000,
            users: 10_000,
            target_items: 1_000_000,
            materialize_users: 512,
            ring: 2,
            n_mds: 8,
            cache_capacity: 16_384,
            think_mean: SimDuration::from_millis(500),
            warmup: SimDuration::from_secs(4),
            measure: SimDuration::from_secs(2),
            shards: 4,
            threads: None,
            strategies: vec![StrategyKind::DynamicSubtree, StrategyKind::FileHash],
            seed: 42,
        }
    }

    /// Full tier sizing: ≥10⁶ clients, ≥10⁸ logical inodes — minutes.
    /// Excluded from CI; `scripts/test_full.sh` / `experiments scale`
    /// territory.
    pub fn full() -> Self {
        ScaleParams {
            clients: 1_000_000,
            users: 1_000_000,
            target_items: 100_000_000,
            materialize_users: 4_096,
            ring: 2,
            n_mds: 16,
            cache_capacity: 65_536,
            think_mean: SimDuration::from_millis(500),
            warmup: SimDuration::from_secs(8),
            measure: SimDuration::from_secs(2),
            shards: 8,
            threads: None,
            strategies: vec![
                StrategyKind::StaticSubtree,
                StrategyKind::DynamicSubtree,
                StrategyKind::DirHash,
                StrategyKind::FileHash,
                StrategyKind::LazyHybrid,
            ],
            seed: 42,
        }
    }

    /// The namespace spec all strategies share.
    pub fn spec(&self) -> NamespaceSpec {
        NamespaceSpec::with_target_items(self.users, self.target_items, self.seed ^ 0xF5)
    }
}

/// One strategy's outcome.
pub struct ScalePoint {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Simulated clients the run drove.
    pub clients: u32,
    /// Logical namespace size (what an eager generator would build).
    pub logical_inodes: u64,
    /// Actually-materialized live items.
    pub materialized_inodes: u64,
    /// Namespace heap footprint after `shrink_to_fit`, in bytes.
    pub namespace_heap_bytes: u64,
    /// The engine's (shard-count-invariant) report.
    pub report: ShardReport,
    /// Wall-clock seconds for the measured span (nondeterministic —
    /// stdout/JSON only, never the CSV).
    pub wall_s: f64,
}

impl ScalePoint {
    /// Heap bytes per materialized inode — the SoA compactness metric the
    /// CI gate budgets (≤ 64).
    pub fn bytes_per_inode(&self) -> f64 {
        self.namespace_heap_bytes as f64 / self.materialized_inodes.max(1) as f64
    }

    /// Completed ops per wall-clock second (nondeterministic).
    pub fn wall_ops_per_sec(&self) -> f64 {
        self.report.ops as f64 / self.wall_s.max(1e-9)
    }
}

fn scale_config(p: &ScaleParams, strategy: StrategyKind) -> SimConfig {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = p.n_mds;
    cfg.n_clients = p.clients;
    cfg.cache_capacity = p.cache_capacity;
    cfg.journal_capacity = p.cache_capacity * 4;
    cfg.n_osds = (p.n_mds as usize * 2).max(16);
    // Lease-heavy steady state: leases outlive the run so the measured
    // window is dominated by client-local completions, the regime a
    // million-client deployment must sit in to be viable at all.
    cfg.client_leases = true;
    cfg.lease_ttl = SimDuration::from_secs(600);
    cfg.costs.think_mean = p.think_mean;
    // Modern-hardware cost model (like the flash OSDs below): the 2004
    // default of 150µs CPU per op caps 16 MDS at ~10⁵ ops/s, so merely
    // populating clients×ring leases would take most of a virtual
    // minute. 30µs keeps warmup ∝ clients at a tolerable constant.
    cfg.costs.cpu_per_op = SimDuration::from_micros(30);
    cfg.costs.cpu_forward = SimDuration::from_micros(5);
    // Flash OSD pool; the 2004 commodity-disk default would stretch
    // lease population past any reasonable warmup at this client count.
    cfg.costs.osd_disk = DiskParams { latency: SimDuration::from_micros(200), iops: 20_000.0 };
    cfg.balancing = strategy == StrategyKind::DynamicSubtree;
    cfg.traffic_control = strategy == StrategyKind::DynamicSubtree;
    cfg.seed = p.seed;
    cfg
}

/// Runs every strategy in `p` and returns the per-strategy points.
/// Strategies run sequentially — one sharded engine already fans out
/// across the worker pool, and peak RSS (a reported metric) must not be
/// inflated by concurrent namespaces.
pub fn run_scale(p: &ScaleParams) -> Vec<ScalePoint> {
    assert!(!p.strategies.is_empty(), "need at least one strategy");
    assert!(p.materialize_users >= 1 && p.materialize_users <= p.users);
    crate::parallel::install_shard_driver();
    // Logical size depends only on the spec, not the strategy: count it
    // once (it replays every subtree's draw sequence, which at 10⁶ users
    // is seconds of work worth not repeating).
    let mut logical_inodes = None;
    p.strategies
        .iter()
        .map(|&strategy| {
            eprintln!("scale: {} — materializing namespace sample...", strategy.label());
            let mut generator = StreamingGenerator::new(p.spec());
            for u in 0..p.materialize_users {
                generator.materialize_user(u);
            }
            let logical = *logical_inodes.get_or_insert_with(|| generator.logical_items());
            let mut snap = generator.into_snapshot();
            // Release the Vec-doubling overshoot before measuring the
            // footprint; the budget is on what the run actually holds.
            snap.ns.shrink_to_fit();
            let heap = snap.ns.heap_bytes() as u64;
            let materialized = snap.ns.total_items();
            let (files, ranges) = ScaleWorkload::collect(&snap.ns, &snap.user_homes);

            let cfg = scale_config(p, strategy);
            let n_clients = p.clients as usize;
            let ring = p.ring;
            eprintln!(
                "scale: {} — {n_clients} clients, {materialized} of {logical} inodes \
                 materialized ({:.1} B/inode)...",
                strategy.label(),
                heap as f64 / materialized.max(1) as f64
            );
            let mut sim = ShardedSimulation::new(cfg, p.shards, p.threads, snap, &move |_| {
                Box::new(ScaleWorkload::new(
                    Arc::clone(&files),
                    Arc::clone(&ranges),
                    n_clients,
                    ring,
                ))
            });
            sim.run_until(dynmds_event::SimTime::ZERO + p.warmup);
            sim.reset_measurement();
            let t = Instant::now();
            sim.run_until(dynmds_event::SimTime::ZERO + p.warmup + p.measure);
            let wall_s = t.elapsed().as_secs_f64();
            let report = sim.finish();
            ScalePoint {
                strategy,
                clients: p.clients,
                logical_inodes: logical,
                materialized_inodes: materialized,
                namespace_heap_bytes: heap,
                report,
                wall_s,
            }
        })
        .collect()
}

/// The deterministic results table (and CSV): virtual-time metrics and
/// namespace footprint only — byte-identical across reruns at a fixed
/// seed, any shard count, any thread count.
pub fn scale_table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "scale",
        &[
            "strategy",
            "mds",
            "clients",
            "logical_inodes",
            "materialized_inodes",
            "namespace_bytes",
            "bytes_per_inode",
            "ops",
            "lease_hit_pct",
            "failed",
            "lat_mean_us",
            "lat_p50_us",
            "lat_p99_us",
            "mds_ops_per_sec",
        ],
    );
    for pt in points {
        let r = &pt.report;
        t.row(&[
            pt.strategy.label().to_string(),
            r.n_mds.to_string(),
            pt.clients.to_string(),
            pt.logical_inodes.to_string(),
            pt.materialized_inodes.to_string(),
            pt.namespace_heap_bytes.to_string(),
            format!("{:.1}", pt.bytes_per_inode()),
            r.ops.to_string(),
            format!("{:.1}", 100.0 * r.lease_hits as f64 / r.ops.max(1) as f64),
            r.failed.to_string(),
            format!("{:.1}", r.latency.mean_us()),
            r.latency.quantile_us(0.50).to_string(),
            r.latency.quantile_us(0.99).to_string(),
            format!("{:.1}", r.avg_mds_throughput()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleParams {
        ScaleParams {
            clients: 200,
            users: 400,
            target_items: 20_000,
            materialize_users: 16,
            ring: 4,
            n_mds: 4,
            cache_capacity: 4_096,
            think_mean: SimDuration::from_millis(50),
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(400),
            shards: 2,
            threads: Some(1),
            strategies: vec![StrategyKind::DynamicSubtree],
            seed: 7,
        }
    }

    #[test]
    fn tiny_scale_run_completes_and_stays_compact() {
        let pts = run_scale(&tiny());
        assert_eq!(pts.len(), 1);
        let pt = &pts[0];
        assert!(pt.report.ops > 0, "no ops completed");
        assert!(pt.logical_inodes > pt.materialized_inodes, "streaming saved nothing");
        // The ≤64 budget is gated at smoke scale (≈5×10⁴ inodes) where
        // fixed interner/hash-map overheads amortize; a ~500-inode toy
        // run just has to stay in the same ballpark.
        assert!(pt.bytes_per_inode() < 80.0, "footprint {:.1} B/inode", pt.bytes_per_inode());
    }

    #[test]
    fn scale_csv_is_deterministic_across_shard_counts() {
        let mut a = tiny();
        let mut b = tiny();
        a.shards = 1;
        b.shards = 2;
        let ca = scale_table(&run_scale(&a)).to_csv();
        let cb = scale_table(&run_scale(&b)).to_csv();
        assert_eq!(ca, cb, "CSV must be shard-count-invariant");
    }
}

//! Figures 5 and 6: dynamic vs static subtree partitioning under a
//! workload that shifts mid-run.
//!
//! "After a short time, about half of the clients change their local
//! region of activity and create new files in portions of the hierarchy
//! served by a single MDS" (§5.3.2). Figure 5 plots the range and average
//! of per-MDS throughput over time; Figure 6 plots the fraction of
//! requests forwarded (§5.3.3), whose spike marks the shift and whose
//! elevated tail under dynamic partitioning is the price of metadata
//! migration.

use dynmds_core::{SimReport, Simulation};
use dynmds_event::{SimDuration, SimTime};
use dynmds_metrics::Table;
use dynmds_namespace::{ClientId, InodeId};
use dynmds_partition::{StrategyKind, SubtreePartition};
use dynmds_workload::{GeneralWorkload, ShiftingWorkload, WorkloadConfig};

use crate::parallel::parallel_map;
use crate::params::{scaling_config, ExperimentScale};

/// Cluster size for the shift experiment.
pub const SHIFT_CLUSTER: u16 = 8;

/// Results for both strategies.
pub struct ShiftResult {
    /// DynamicSubtree run.
    pub dynamic: SimReport,
    /// StaticSubtree run.
    pub static_: SimReport,
    /// When the shift happened.
    pub shift_at: SimTime,
    /// Run length.
    pub duration: SimTime,
}

/// Timing knobs per scale.
pub fn shift_times(scale: ExperimentScale) -> (SimTime, SimTime) {
    match scale {
        ExperimentScale::Quick => (SimTime::from_secs(8), SimTime::from_secs(25)),
        ExperimentScale::Full => (SimTime::from_secs(25), SimTime::from_secs(90)),
    }
}

fn run_one(strategy: StrategyKind, scale: ExperimentScale) -> SimReport {
    let (shift_at, duration) = shift_times(scale);
    let mut cfg = scaling_config(strategy, SHIFT_CLUSTER, scale);
    // Both runs share seeds so the workloads are identical.
    cfg.seed = 4242;
    // The contrast under study is MDS load distribution; keep the shared
    // OSD pool out of the bottleneck.
    cfg.n_osds = SHIFT_CLUSTER as usize * 6;
    // Generate extra "dormant" home trees nobody touches before the shift:
    // the migration targets previously unexplored territory, so clients
    // must rediscover routes (the Figure 6 spike) and the serving MDS sees
    // genuinely new load.
    let active_users = cfg.n_clients as usize;
    let reserve_users = (active_users / 2).max(SHIFT_CLUSTER as usize * 2);
    let snap = dynmds_namespace::NamespaceSpec::with_target_items(
        active_users + reserve_users,
        scale.items_per_mds() * cfg.n_mds as u64,
        cfg.seed ^ 0xF5,
    )
    .generate();
    let active_homes = &snap.user_homes[..active_users];
    let reserve_homes = &snap.user_homes[active_users..];

    // Destination: the dormant homes served by whichever single MDS serves
    // the most of them under the shared initial partition.
    let preview = SubtreePartition::initial_near_root(&snap.ns, cfg.n_mds, 2);
    let mut per_mds: Vec<Vec<InodeId>> = vec![Vec::new(); cfg.n_mds as usize];
    for &h in reserve_homes {
        per_mds[preview.authority(&snap.ns, h).index()].push(h);
    }
    let destinations = per_mds.into_iter().max_by_key(|v| v.len()).expect("non-empty cluster");
    assert!(!destinations.is_empty(), "reserve homes must exist");

    let base = GeneralWorkload::new(
        WorkloadConfig { seed: cfg.seed ^ 0x17, ..Default::default() },
        cfg.n_clients as usize,
        active_homes,
        &snap.shared_roots,
        &snap.ns,
    );
    let movers: Vec<ClientId> = (0..cfg.n_clients).filter(|c| c % 2 == 0).map(ClientId).collect();
    let wl = Box::new(ShiftingWorkload::new(base, shift_at, movers, destinations));

    let mut sim = Simulation::new(cfg, snap, wl);
    sim.run_until(duration);
    sim.finish()
}

/// Runs dynamic and static side by side (in parallel).
pub fn run_shift(scale: ExperimentScale) -> ShiftResult {
    let (shift_at, duration) = shift_times(scale);
    let strategies = [StrategyKind::DynamicSubtree, StrategyKind::StaticSubtree];
    let mut reports = parallel_map(&strategies, |&s| run_one(s, scale));
    let static_ = reports.pop().expect("two runs");
    let dynamic = reports.pop().expect("two runs");
    ShiftResult { dynamic, static_, shift_at, duration }
}

/// Figure 5 table: per-bin min/avg/max per-MDS throughput for both
/// strategies.
pub fn fig5_table(r: &ShiftResult, bin: SimDuration) -> Table {
    let mut t = Table::new(
        "Figure 5: MDS throughput (ops/sec) range over time under a workload shift",
        &["t", "dyn_min", "dyn_avg", "dyn_max", "sta_min", "sta_avg", "sta_max"],
    );
    let d = r.dynamic.throughput_range_series(bin);
    let s = r.static_.throughput_range_series(bin);
    for (dp, sp) in d.iter().zip(s.iter()) {
        t.row(&[
            format!("{:.0}", dp.0.as_secs_f64()),
            format!("{:.0}", dp.1),
            format!("{:.0}", dp.2),
            format!("{:.0}", dp.3),
            format!("{:.0}", sp.1),
            format!("{:.0}", sp.2),
            format!("{:.0}", sp.3),
        ]);
    }
    t
}

/// Figure 6 table: per-bin forwarded fraction for both strategies.
pub fn fig6_table(r: &ShiftResult, bin: SimDuration) -> Table {
    let mut t = Table::new(
        "Figure 6: portion of requests forwarded under a dynamic workload",
        &["t", "dynamic", "static"],
    );
    let d = r.dynamic.forward_fraction_series(bin);
    let s = r.static_.forward_fraction_series(bin);
    for (dp, sp) in d.iter().zip(s.iter()) {
        t.row(&[
            format!("{:.0}", dp.0.as_secs_f64()),
            format!("{:.4}", dp.1),
            format!("{:.4}", sp.1),
        ]);
    }
    t
}

/// Headline numbers for EXPERIMENTS.md: average cluster throughput after
/// the shift, both strategies, plus migration count.
pub struct ShiftSummary {
    /// Mean per-MDS throughput after the shift, dynamic.
    pub dyn_after: f64,
    /// Mean per-MDS throughput after the shift, static.
    pub sta_after: f64,
    /// Peak per-node throughput spread (max-min) after shift, static.
    pub sta_spread: f64,
    /// Peak per-node throughput spread (max-min) after shift, dynamic.
    pub dyn_spread: f64,
}

/// Computes the post-shift summary.
pub fn shift_summary(r: &ShiftResult) -> ShiftSummary {
    let bin = SimDuration::from_secs(1);
    let settle = SimDuration::from_secs(5);
    let after = |rep: &SimReport| {
        let pts: Vec<(SimTime, f64, f64, f64)> = rep
            .throughput_range_series(bin)
            .into_iter()
            .filter(|&(t, _, _, _)| t >= r.shift_at + settle)
            .collect();
        let n = pts.len().max(1) as f64;
        let avg = pts.iter().map(|p| p.2).sum::<f64>() / n;
        let spread = pts.iter().map(|p| p.3 - p.1).sum::<f64>() / n;
        (avg, spread)
    };
    let (dyn_after, dyn_spread) = after(&r.dynamic);
    let (sta_after, sta_spread) = after(&r.static_);
    ShiftSummary { dyn_after, sta_after, sta_spread, dyn_spread }
}

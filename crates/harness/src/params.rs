//! Shared experiment parameterization.
//!
//! The paper scales its simulations down from the petabyte target: "we
//! have run our simulations on much smaller file systems with less MDS
//! memory, somewhat fewer clients and appropriately throttled I/O rates"
//! (§5.1). These builders encode that scaled-down regime; `Quick` shrinks
//! it further for CI and Criterion.

use dynmds_core::{SimConfig, Simulation};
use dynmds_event::SimDuration;
use dynmds_namespace::{NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::{GeneralWorkload, WorkloadConfig};

/// Experiment sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// CI / Criterion sizing: seconds per figure.
    Quick,
    /// Paper-shaped sizing: minutes for the whole suite.
    Full,
}

impl ExperimentScale {
    /// Clients per metadata server.
    pub fn clients_per_mds(self) -> u32 {
        match self {
            ExperimentScale::Quick => 6,
            ExperimentScale::Full => 10,
        }
    }

    /// Metadata items per server in the generated snapshot.
    pub fn items_per_mds(self) -> u64 {
        match self {
            ExperimentScale::Quick => 1_500,
            ExperimentScale::Full => 4_000,
        }
    }

    /// Fixed per-MDS cache capacity for the scaling experiments ("fixing
    /// MDS memory and scaling the entire system").
    pub fn cache_capacity(self) -> usize {
        match self {
            ExperimentScale::Quick => 500,
            ExperimentScale::Full => 1_200,
        }
    }

    /// Warm-up before measurement.
    pub fn warmup(self) -> SimDuration {
        match self {
            ExperimentScale::Quick => SimDuration::from_secs(3),
            ExperimentScale::Full => SimDuration::from_secs(8),
        }
    }

    /// Measured span.
    pub fn measure(self) -> SimDuration {
        match self {
            ExperimentScale::Quick => SimDuration::from_secs(6),
            ExperimentScale::Full => SimDuration::from_secs(20),
        }
    }

    /// Cluster sizes for the Figure 2/3 sweep.
    pub fn cluster_sizes(self) -> Vec<u16> {
        match self {
            ExperimentScale::Quick => vec![4, 8, 12],
            ExperimentScale::Full => vec![5, 10, 15, 20, 25, 30, 40, 50],
        }
    }

    /// Relative cache sizes for the Figure 4 sweep.
    pub fn cache_fractions(self) -> Vec<f64> {
        match self {
            ExperimentScale::Quick => vec![0.05, 0.2, 0.5],
            ExperimentScale::Full => vec![0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.45, 0.6],
        }
    }
}

/// Builds the scaled-system config for a Figure 2/3 point: file system,
/// client count and OSD pool all grow with the cluster; per-MDS memory is
/// fixed.
pub fn scaling_config(strategy: StrategyKind, n_mds: u16, scale: ExperimentScale) -> SimConfig {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = n_mds;
    cfg.n_clients = scale.clients_per_mds() * n_mds as u32;
    cfg.cache_capacity = scale.cache_capacity();
    cfg.journal_capacity = scale.cache_capacity() * 4;
    cfg.n_osds = (n_mds as usize * 2).max(8);
    // Identical to the old `== DynamicSubtree` check for the five paper
    // strategies; additionally keeps the balancer on for the elastic
    // strategy, whose scale-outs rely on it to migrate load onto newly
    // activated nodes.
    cfg.traffic_control = strategy.rebalances();
    cfg.balancing = strategy.rebalances();
    cfg.seed = 1000 + n_mds as u64;
    cfg
}

/// Generates the snapshot matching a config: one home per client plus
/// shared trees, sized to `items_per_mds × n_mds`.
pub fn scaling_snapshot(cfg: &SimConfig, scale: ExperimentScale) -> Snapshot {
    NamespaceSpec::with_target_items(
        cfg.n_clients as usize,
        scale.items_per_mds() * cfg.n_mds as u64,
        cfg.seed ^ 0xF5,
    )
    .generate()
}

/// The standard general-purpose workload over a snapshot.
pub fn general_workload(cfg: &SimConfig, snap: &Snapshot) -> Box<GeneralWorkload> {
    Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: cfg.seed ^ 0x17, ..Default::default() },
        cfg.n_clients as usize,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ))
}

/// Builds and runs one steady-state simulation, returning its report.
pub fn run_steady(cfg: SimConfig, scale: ExperimentScale) -> dynmds_core::SimReport {
    let snap = scaling_snapshot(&cfg, scale);
    let wl = general_workload(&cfg, &snap);
    let sim = Simulation::new(cfg, snap, wl);
    sim.run_measured(scale.warmup(), scale.measure())
}

/// Builds and runs one steady-state run on the sharded engine with the
/// standard workload, returning its (shard-count-invariant) report.
/// `threads` follows the worker policy; the shard fan-out runs on the
/// shared pool.
pub fn run_steady_sharded(
    cfg: SimConfig,
    scale: ExperimentScale,
    shards: usize,
    threads: Option<usize>,
) -> dynmds_core::ShardReport {
    crate::parallel::install_shard_driver();
    let snap = scaling_snapshot(&cfg, scale);
    let n_clients = cfg.n_clients as usize;
    let homes = snap.user_homes.clone();
    let shared = snap.shared_roots.clone();
    let wl_seed = cfg.seed ^ 0x17;
    let (warmup, measure) = (scale.warmup(), scale.measure());
    let sim = dynmds_core::ShardedSimulation::new(cfg, shards, threads, snap, &move |ns| {
        Box::new(GeneralWorkload::new(
            WorkloadConfig { seed: wl_seed, ..Default::default() },
            n_clients,
            &homes,
            &shared,
            ns,
        ))
    });
    sim.run_measured(warmup, measure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_config_scales_with_cluster() {
        let a = scaling_config(StrategyKind::DynamicSubtree, 5, ExperimentScale::Quick);
        let b = scaling_config(StrategyKind::DynamicSubtree, 10, ExperimentScale::Quick);
        assert_eq!(b.n_clients, 2 * a.n_clients);
        assert_eq!(a.cache_capacity, b.cache_capacity, "per-MDS memory fixed");
        assert!(b.n_osds > a.n_osds);
    }

    #[test]
    fn snapshot_size_tracks_cluster() {
        let cfg = scaling_config(StrategyKind::StaticSubtree, 4, ExperimentScale::Quick);
        let snap = scaling_snapshot(&cfg, ExperimentScale::Quick);
        let total = snap.ns.total_items();
        assert!((3_000..12_000).contains(&total), "4 × 1500 target, got {total}");
    }

    #[test]
    fn quick_scale_is_smaller_everywhere() {
        let q = ExperimentScale::Quick;
        let f = ExperimentScale::Full;
        assert!(q.clients_per_mds() < f.clients_per_mds());
        assert!(q.items_per_mds() < f.items_per_mds());
        assert!(q.measure() < f.measure());
        assert!(q.cluster_sizes().len() < f.cluster_sizes().len());
    }
}

//! Elastic provisioning on a diurnal load shape (ROADMAP item 3).
//!
//! λFS (ASPLOS'24) argues that a metadata service whose node count tracks
//! demand beats any statically provisioned cluster on cost at comparable
//! latency; CFS supplies the day/night traffic shapes where the gap is
//! widest. This experiment puts the sixth strategy
//! (`ElasticSubtree`) head to head with the five static ones: every
//! strategy drives the same diurnal workload over the same namespace on
//! an [`ELASTIC_CLUSTER`]-node pool, but the elastic run keeps only a
//! load-determined subset of the pool active (never fewer than
//! [`ELASTIC_MIN_NODES`]) and pays cold-start/handoff costs at each
//! transition.
//!
//! The figure of merit is **provisioned node-seconds** — capacity paid
//! for over the measurement window — against the p99 completion latency:
//! the elastic row should sit well below `n_mds × span` node-seconds
//! while keeping p99 in the same latency bucket as the best static row.
//!
//! Runs use the sharded engine, so the CSV is byte-identical across
//! reruns, shard counts and thread counts at a fixed seed.

use dynmds_core::{ShardReport, ShardedSimulation, SimConfig};
use dynmds_event::SimDuration;
use dynmds_metrics::Table;
use dynmds_partition::StrategyKind;
use dynmds_workload::{DiurnalWorkload, GeneralWorkload, WorkloadConfig};

use crate::params::{scaling_config, scaling_snapshot, ExperimentScale};

/// Provisioned pool size: static strategies keep all of it busy; the
/// elastic strategy draws on it as the diurnal cycle demands.
pub const ELASTIC_CLUSTER: u16 = 8;

/// Floor for the elastic run's live population.
pub const ELASTIC_MIN_NODES: u16 = 2;

/// Day/night parameters of the diurnal envelope for one scale.
fn diurnal_shape(scale: ExperimentScale) -> (SimDuration, f64) {
    match scale {
        // Two full cycles inside the 6 s measurement window.
        ExperimentScale::Quick => (SimDuration::from_secs(4), 150.0),
        // Three cycles inside the 20 s window.
        ExperimentScale::Full => (SimDuration::from_secs(8), 150.0),
    }
}

/// Config for one elasticity run. All strategies share sizing and the
/// tightened heartbeat (the controller and the balancer both react at
/// heartbeat granularity, and a compressed day needs a compressed
/// control loop); only the elastic row enables the controller.
pub fn elasticity_config(strategy: StrategyKind, scale: ExperimentScale) -> SimConfig {
    let mut cfg = scaling_config(strategy, ELASTIC_CLUSTER, scale);
    cfg.heartbeat = SimDuration::from_millis(500);
    if cfg.elastic.enabled {
        cfg.elastic.min_nodes = ELASTIC_MIN_NODES;
        // Watermarks sit between the two observed plateaus of the diurnal
        // cycle on this sizing: daytime load per live node is
        // server-saturated (hundreds to thousands of weighted ops/s),
        // the ×150 night trough is think-limited far below it.
        cfg.elastic.high_load_per_s = 500.0;
        cfg.elastic.low_load_per_s = 250.0;
        // React after one hot heartbeat and allow back-to-back
        // transitions: the compressed day leaves no room for a long
        // sustain window, and the morning ramp needs the pool to grow
        // faster than one node per two heartbeats or the p99 pays for it.
        cfg.elastic.sustain = 1;
        cfg.elastic.cooldown_heartbeats = 0;
    }
    cfg
}

/// One strategy's outcome on the diurnal workload.
#[derive(Clone, Debug)]
pub struct ElasticityPoint {
    /// Strategy label.
    pub label: String,
    /// The engine's (shard-count-invariant) report.
    pub report: ShardReport,
}

impl ElasticityPoint {
    /// Provisioned capacity consumed over the measurement window.
    pub fn node_secs(&self) -> f64 {
        self.report.provisioned_node_secs()
    }

    /// Completed operations per provisioned node-second — the cost
    /// efficiency the elastic controller is supposed to win on.
    pub fn ops_per_node_sec(&self) -> f64 {
        self.report.ops as f64 / self.node_secs().max(1e-9)
    }
}

/// Runs the five static strategies plus the elastic one on the shared
/// diurnal workload. Strategies run sequentially: each sharded engine
/// already fans out across the worker pool.
pub fn run_elasticity(
    scale: ExperimentScale,
    shards: usize,
    threads: Option<usize>,
) -> Vec<ElasticityPoint> {
    crate::parallel::install_shard_driver();
    let (period, night_mult) = diurnal_shape(scale);
    let mut strategies: Vec<StrategyKind> = StrategyKind::ALL.to_vec();
    strategies.push(StrategyKind::ElasticSubtree);
    strategies
        .into_iter()
        .map(|strategy| {
            eprintln!("elasticity: {} on the diurnal workload...", strategy.label());
            let cfg = elasticity_config(strategy, scale);
            let snap = scaling_snapshot(&cfg, scale);
            let n_clients = cfg.n_clients as usize;
            let homes = snap.user_homes.clone();
            let shared = snap.shared_roots.clone();
            let wl_seed = cfg.seed ^ 0x17;
            let sim = ShardedSimulation::new(cfg, shards, threads, snap, &move |ns| {
                Box::new(DiurnalWorkload::new(
                    GeneralWorkload::new(
                        WorkloadConfig { seed: wl_seed, ..Default::default() },
                        n_clients,
                        &homes,
                        &shared,
                        ns,
                    ),
                    period,
                    night_mult,
                ))
            });
            let report = sim.run_measured(scale.warmup(), scale.measure());
            ElasticityPoint { label: strategy.to_string(), report }
        })
        .collect()
}

/// Renders the elasticity table (and CSV): cost against latency per
/// strategy, plus the controller's activity for the elastic row.
pub fn elasticity_table(points: &[ElasticityPoint]) -> Table {
    let mut t = Table::new(
        "Elastic vs static provisioning on a diurnal workload",
        &[
            "strategy",
            "node_secs",
            "ops",
            "ops_per_node_sec",
            "lat_mean_us",
            "lat_p50_us",
            "lat_p99_us",
            "failed",
            "migrations",
            "scale_outs",
            "scale_ins",
        ],
    );
    for p in points {
        let r = &p.report;
        t.row(&[
            p.label.clone(),
            format!("{:.1}", p.node_secs()),
            r.ops.to_string(),
            format!("{:.1}", p.ops_per_node_sec()),
            format!("{:.1}", r.latency.mean_us()),
            r.latency.quantile_us(0.50).to_string(),
            r.latency.quantile_us(0.99).to_string(),
            r.failed.to_string(),
            r.migrations.to_string(),
            r.scale_outs.to_string(),
            r.scale_ins.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_beats_static_on_node_seconds_at_comparable_p99() {
        let points = run_elasticity(ExperimentScale::Quick, 2, Some(1));
        assert_eq!(points.len(), StrategyKind::ALL.len() + 1);
        let elastic = points.last().unwrap();
        assert_eq!(elastic.label, StrategyKind::ElasticSubtree.to_string());
        assert!(
            elastic.report.scale_outs >= 1 && elastic.report.scale_ins >= 1,
            "controller never acted: {} outs, {} ins",
            elastic.report.scale_outs,
            elastic.report.scale_ins
        );
        let statics = &points[..points.len() - 1];
        let cheapest_static = statics.iter().map(|p| p.node_secs()).fold(f64::INFINITY, f64::min);
        assert!(
            elastic.node_secs() < cheapest_static,
            "elastic used {:.1} node-secs, static floor {:.1}",
            elastic.node_secs(),
            cheapest_static
        );
        // "Comparable" at bucket resolution: p99 within one power-of-two
        // bucket of the best static subtree strategy.
        let best_static_p99 =
            statics.iter().map(|p| p.report.latency.quantile_us(0.99)).min().unwrap();
        let elastic_p99 = elastic.report.latency.quantile_us(0.99);
        assert!(
            elastic_p99 <= best_static_p99.max(1) * 4,
            "elastic p99 {elastic_p99}µs too far above best static {best_static_p99}µs"
        );
    }

    #[test]
    fn elasticity_csv_is_invariant_across_shard_counts() {
        let a = elasticity_table(&run_elasticity(ExperimentScale::Quick, 1, Some(1))).to_csv();
        let b = elasticity_table(&run_elasticity(ExperimentScale::Quick, 4, Some(2))).to_csv();
        assert_eq!(a, b, "CSV must be shard-count- and thread-count-invariant");
    }
}

//! Availability under node churn.
//!
//! The paper's §4.6 storage design exists to make failover cheap; this
//! experiment measures what clients actually experience when servers die
//! and return mid-run. Each strategy runs the standard steady-state
//! workload on an [`AVAIL_CLUSTER`]-node cluster while a fault schedule
//! crashes and recovers nodes, and we report throughput under churn,
//! failover timeouts, retry traffic, abandoned operations, unavailability
//! windows (sampling bins whose cluster throughput collapsed) and the
//! mean time for throughput to recover after each crash.
//!
//! Everything is deterministic: the schedule is data, the retry jitter
//! comes from a dedicated seeded stream, and two runs with the same seed
//! and schedule produce byte-identical CSVs.

use dynmds_core::{FaultEvent, FaultSchedule, Simulation};
use dynmds_event::SimTime;
use dynmds_metrics::Table;
use dynmds_namespace::MdsId;
use dynmds_partition::StrategyKind;

use crate::parallel::parallel_map;
use crate::params::{general_workload, scaling_config, scaling_snapshot, ExperimentScale};

/// Cluster size for the availability runs.
pub const AVAIL_CLUSTER: u16 = 8;

/// The default scripted churn: two (Quick) or three (Full) staggered
/// single-node outages inside the measurement window, sized so the
/// cluster is degraded for roughly a quarter of it.
pub fn default_schedule(scale: ExperimentScale) -> FaultSchedule {
    let crash = |at_ms: u64, mds: u16| FaultEvent::Crash {
        at: SimTime::from_millis(at_ms),
        mds: MdsId(mds),
    };
    let recover = |at_ms: u64, mds: u16| FaultEvent::Recover {
        at: SimTime::from_millis(at_ms),
        mds: MdsId(mds),
    };
    let events = match scale {
        // Warmup 3s + measure 6s: outages at 4s and 6.5s, 1.5s each.
        ExperimentScale::Quick => {
            vec![crash(4_000, 1), recover(5_500, 1), crash(6_500, 2), recover(8_000, 2)]
        }
        // Warmup 8s + measure 20s: outages at 10s, 16s and 22s, 3s each.
        ExperimentScale::Full => vec![
            crash(10_000, 1),
            recover(13_000, 1),
            crash(16_000, 2),
            recover(19_000, 2),
            crash(22_000, 3),
            recover(25_000, 3),
        ],
    };
    FaultSchedule { events, churn: None }
}

/// One strategy's behaviour under the churn schedule.
#[derive(Clone, Debug)]
pub struct AvailabilityPoint {
    /// Strategy label.
    pub label: String,
    /// Cluster-wide completed throughput over the window, ops/s.
    pub ops_s: f64,
    /// Requests that timed out against a dead node.
    pub failover_timeouts: u64,
    /// Client retries driven (timeouts + lost messages).
    pub retries: u64,
    /// Operations abandoned after the retry budget.
    pub gave_up: u64,
    /// Node failures injected over the whole run.
    pub failures: u64,
    /// Node recoveries over the whole run.
    pub recoveries: u64,
    /// Sampling bins whose cluster throughput fell below half the median
    /// bin (unavailability windows).
    pub unavail_bins: usize,
    /// Mean time from each in-window crash until cluster throughput was
    /// back at ≥90% of the median bin, seconds.
    pub ttr_s: f64,
}

/// Runs every strategy under `schedule` and measures availability.
pub fn run_availability(
    scale: ExperimentScale,
    schedule: &FaultSchedule,
) -> Vec<AvailabilityPoint> {
    let settings: Vec<StrategyKind> = StrategyKind::ALL.to_vec();
    parallel_map(&settings, |&strategy| {
        let mut cfg = scaling_config(strategy, AVAIL_CLUSTER, scale);
        cfg.faults = schedule.clone();
        let bin = cfg.sample_every;
        let crash_times: Vec<SimTime> = cfg
            .faults
            .expanded(cfg.n_mds as usize)
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        let snap = scaling_snapshot(&cfg, scale);
        let wl = general_workload(&cfg, &snap);
        let mut sim = Simulation::new(cfg, snap, wl);
        let start = SimTime::ZERO + scale.warmup();
        sim.run_until(start);
        sim.cluster_mut().reset_measurement(start);
        sim.run_until(start + scale.measure());
        let c = sim.cluster();
        let (timeouts, retries, gave_up, failures, recoveries) =
            (c.failover_timeouts, c.retries_total, c.gave_up, c.failures, c.recoveries);
        let report = sim.finish();

        // Per-bin cluster throughput over the measurement window.
        let bins: Vec<(SimTime, f64)> =
            report.reply_forward_rates(bin).into_iter().map(|(t, served, _)| (t, served)).collect();
        let mut sorted: Vec<f64> = bins.iter().map(|&(_, v)| v).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let unavail_bins = bins.iter().filter(|&&(_, v)| v < 0.5 * median).count();

        // Time-to-recover per in-window crash: first bin at or after the
        // crash whose throughput is back at ≥90% of the median.
        let window_end = report.measure_end;
        let mut ttr_sum = 0.0;
        let mut ttr_n = 0u32;
        for &crash in &crash_times {
            if crash < report.measure_start || crash >= window_end {
                continue;
            }
            let back = bins
                .iter()
                .find(|&&(t, v)| t + bin > crash && v >= 0.9 * median)
                .map(|&(t, _)| (t + bin).max(crash))
                .unwrap_or(window_end);
            ttr_sum += back.saturating_since(crash).as_secs_f64();
            ttr_n += 1;
        }
        let ttr_s = if ttr_n > 0 { ttr_sum / ttr_n as f64 } else { 0.0 };

        AvailabilityPoint {
            label: strategy.to_string(),
            ops_s: report.total_served() as f64 / report.span_secs().max(1e-9),
            failover_timeouts: timeouts,
            retries,
            gave_up,
            failures,
            recoveries,
            unavail_bins,
            ttr_s,
        }
    })
}

/// Renders the availability table.
pub fn availability_table(points: &[AvailabilityPoint]) -> Table {
    let mut t = Table::new(
        "Availability under node churn",
        &[
            "strategy",
            "ops/s",
            "timeouts",
            "retries",
            "gave_up",
            "failures",
            "recoveries",
            "unavail_bins",
            "ttr_s",
        ],
    );
    for p in points {
        t.row(&[
            p.label.clone(),
            format!("{:.0}", p.ops_s),
            p.failover_timeouts.to_string(),
            p.retries.to_string(),
            p.gave_up.to_string(),
            p.failures.to_string(),
            p.recoveries.to_string(),
            p.unavail_bins.to_string(),
            format!("{:.2}", p.ttr_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_fits_the_window() {
        for scale in [ExperimentScale::Quick, ExperimentScale::Full] {
            let s = default_schedule(scale);
            assert!(!s.is_empty());
            let end = SimTime::ZERO + scale.warmup() + scale.measure();
            for e in &s.events {
                match *e {
                    FaultEvent::Crash { at, mds } | FaultEvent::Recover { at, mds } => {
                        assert!(at > SimTime::ZERO + scale.warmup(), "fault during warmup");
                        assert!(at <= end, "fault past the end of the run");
                        assert!(mds.0 > 0 && mds.0 < AVAIL_CLUSTER, "node in range");
                    }
                    ref other => panic!("default schedule only crashes/recovers: {other:?}"),
                }
            }
        }
    }
}

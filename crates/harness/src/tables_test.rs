//! Unit tests for the figure table builders (synthetic points — no
//! simulations).

#![cfg(test)]

use dynmds_partition::StrategyKind;

use crate::ablation::{ablation_table, lease_table, AblationPoint, LeasePoint};
use crate::hitrate::{fig4_table, HitratePoint};
use crate::scaling::{context_table, fig2_table, fig3_table, ScalePoint};
use crate::scirun::{sci_table, SciPoint};

fn scale_point(strategy: StrategyKind, n_mds: u16, throughput: f64) -> ScalePoint {
    ScalePoint {
        strategy,
        n_mds,
        throughput,
        prefix_pct: 12.5,
        hit_rate: 0.95,
        forward_frac: 0.01,
        latency_ms: 4.2,
        fetches_per_op: 0.2,
    }
}

#[test]
fn fig2_table_is_size_by_strategy() {
    let mut points = Vec::new();
    for &n in &[5u16, 10] {
        for s in StrategyKind::ALL {
            points.push(scale_point(s, n, 1000.0 + n as f64));
        }
    }
    let t = fig2_table(&points);
    assert_eq!(t.len(), 2, "one row per cluster size");
    let csv = t.to_csv();
    assert!(csv.starts_with("mds,StaticSubtree,DynamicSubtree,DirHash,FileHash,LazyHybrid"));
    assert!(csv.contains("\n5,1005,1005,1005,1005,1005"));
}

#[test]
fn fig2_table_marks_missing_cells() {
    let points = vec![scale_point(StrategyKind::DirHash, 5, 900.0)];
    let t = fig2_table(&points);
    let csv = t.to_csv();
    assert!(csv.contains("5,-,-,900,-,-"), "absent strategies render as '-': {csv}");
}

#[test]
fn fig3_table_omits_lazy_hybrid() {
    let points: Vec<ScalePoint> =
        StrategyKind::ALL.iter().map(|&s| scale_point(s, 5, 1000.0)).collect();
    let t = fig3_table(&points);
    let csv = t.to_csv();
    assert!(!csv.contains("LazyHybrid"), "the paper's Figure 3 has four lines");
    assert!(csv.contains("DynamicSubtree"));
}

#[test]
fn fig4_table_sorts_fractions() {
    let mk = |f: f64| HitratePoint {
        strategy: StrategyKind::StaticSubtree,
        cache_frac: f,
        hit_rate: f,
        throughput: 1.0,
    };
    let t = fig4_table(&[mk(0.6), mk(0.025), mk(0.2)]);
    let csv = t.to_csv();
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 3);
    assert!(rows[0].starts_with("0.025"));
    assert!(rows[2].starts_with("0.600"));
}

#[test]
fn context_and_sci_tables_render_every_point() {
    let pts: Vec<ScalePoint> =
        StrategyKind::ALL.iter().map(|&s| scale_point(s, 5, 1000.0)).collect();
    assert_eq!(context_table(&pts).len(), 5);

    let sci: Vec<SciPoint> = StrategyKind::ALL
        .iter()
        .map(|&s| SciPoint {
            strategy: s,
            throughput: 5000.0,
            latency_ms: 3.0,
            latency_p99_ms: 30.0,
            peak_node_share: 0.13,
        })
        .collect();
    assert_eq!(sci_table(&sci).len(), 5);
}

#[test]
fn ablation_tables_render() {
    let pts = vec![AblationPoint {
        label: "on".into(),
        throughput: 100.0,
        hit_rate: 0.9,
        disk_fetches: 42,
        served_min: 1,
        served_max: 2,
    }];
    let t = ablation_table("x", &pts);
    assert!(t.to_csv().contains("on,100,90.0,42,1,2"));

    let lp = vec![LeasePoint {
        label: "on".into(),
        mds_ops: 700.0,
        client_ops: 9000.0,
        lease_frac: 0.4,
        latency_ms: 3.5,
    }];
    let lt = lease_table(&lp);
    assert!(lt.to_csv().contains("on,700,9000,40.0,3.50"));
}

//! Scientific-computing workload comparison (§5.2).
//!
//! The LLNL analysis the paper builds on found "bursts of activity for
//! which all the nodes access the same file or a set of files in the same
//! directory" — "a more difficult challenge to metadata management than
//! general purpose workloads". This experiment runs that workload
//! (alternating same-file open bursts and same-directory create bursts,
//! with independent read phases between) across all five strategies and
//! reports throughput, burst-phase latency, and how concentrated the
//! serving load was.

use dynmds_core::{SimConfig, SimReport, Simulation};
use dynmds_event::SimDuration;
use dynmds_metrics::Table;
use dynmds_namespace::{InodeId, NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::ScientificWorkload;

use crate::parallel::parallel_map;
use crate::params::ExperimentScale;

/// Cluster size for the scientific-workload experiment.
pub const SCI_CLUSTER: u16 = 8;

/// One strategy's results under the scientific workload.
#[derive(Clone, Debug)]
pub struct SciPoint {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Average per-MDS throughput, ops/s.
    pub throughput: f64,
    /// Mean client latency, ms.
    pub latency_ms: f64,
    /// 99th-percentile client latency, ms (burst tail).
    pub latency_p99_ms: f64,
    /// Share of all replies served by the busiest node.
    pub peak_node_share: f64,
}

fn sci_snapshot(scale: ExperimentScale, seed: u64) -> (Snapshot, Vec<InodeId>) {
    let users = match scale {
        ExperimentScale::Quick => 24usize,
        ExperimentScale::Full => 80,
    };
    let snap = NamespaceSpec { users, shared_trees: 6, seed, ..Default::default() }.generate();
    // Burst targets: directories inside the shared project trees.
    let mut shared_dirs = Vec::new();
    for &root in &snap.shared_roots {
        shared_dirs.extend(snap.ns.walk(root).filter(|&i| snap.ns.is_dir(i)).take(4));
    }
    (snap, shared_dirs)
}

fn run_one(strategy: StrategyKind, scale: ExperimentScale) -> SciPoint {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = SCI_CLUSTER;
    cfg.n_clients = match scale {
        ExperimentScale::Quick => 48,
        ExperimentScale::Full => 160,
    };
    cfg.cache_capacity = 2_000;
    cfg.journal_capacity = 4_000;
    cfg.n_osds = SCI_CLUSTER as usize * 2;
    cfg.traffic_control = strategy == StrategyKind::DynamicSubtree;
    cfg.balancing = strategy == StrategyKind::DynamicSubtree;
    cfg.replication_threshold = 48.0;
    cfg.seed = 9_000;

    let (snap, shared_dirs) = sci_snapshot(scale, cfg.seed ^ 0x5C1);
    let regions: Vec<InodeId> = snap.user_homes.clone();
    let wl = Box::new(ScientificWorkload::new(
        cfg.seed ^ 0x17,
        cfg.n_clients as usize,
        &regions,
        &shared_dirs,
        SimDuration::from_secs(8),
        SimDuration::from_secs(2),
    ));
    let sim = Simulation::new(cfg, snap, wl);
    let report = sim.run_measured(scale.warmup(), scale.measure().saturating_mul(2));
    summarize(strategy, &report)
}

fn summarize(strategy: StrategyKind, report: &SimReport) -> SciPoint {
    let total = report.total_served().max(1);
    let peak = report.nodes.iter().map(|n| n.served).max().unwrap_or(0);
    SciPoint {
        strategy,
        throughput: report.avg_mds_throughput(),
        latency_ms: report.latency.mean().unwrap_or(0.0) * 1e3,
        latency_p99_ms: report.latency.quantile(0.99).unwrap_or(0.0) * 1e3,
        peak_node_share: peak as f64 / total as f64,
    }
}

/// Runs all strategies under the scientific workload.
pub fn run_sci(scale: ExperimentScale) -> Vec<SciPoint> {
    parallel_map(&StrategyKind::ALL, |&s| run_one(s, scale))
}

/// Renders the comparison table.
pub fn sci_table(points: &[SciPoint]) -> Table {
    let mut t = Table::new(
        "Scientific workload (LLNL-style synchronized bursts)",
        &["strategy", "ops/s/MDS", "lat_ms", "p99_ms", "peak_node_share"],
    );
    for p in points {
        t.row(&[
            p.strategy.label().to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.2}", p.latency_ms),
            format!("{:.2}", p.latency_p99_ms),
            format!("{:.2}", p.peak_node_share),
        ]);
    }
    t
}

//! Figures 2 and 3: performance and prefix-cache overhead as the whole
//! system scales.
//!
//! "Initially, we evaluate the relative performance and scalability of the
//! different metadata management strategies by fixing MDS memory and
//! scaling the entire system: file system size, number of MDS servers, and
//! client base" (§5.3). Both figures are projections of the same sweep:
//! Figure 2 plots average per-MDS throughput, Figure 3 the share of cache
//! memory devoted to prefix (ancestor-directory) inodes.

use dynmds_metrics::Table;
use dynmds_partition::StrategyKind;

use crate::parallel::parallel_map;
use crate::params::{run_steady, scaling_config, ExperimentScale};

/// One (strategy, cluster size) measurement.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Cluster size.
    pub n_mds: u16,
    /// Figure 2: average per-MDS throughput, ops/s.
    pub throughput: f64,
    /// Figure 3: mean % of cache holding prefix-only entries.
    pub prefix_pct: f64,
    /// Cache hit rate (context).
    pub hit_rate: f64,
    /// Forwarded fraction of received requests (context).
    pub forward_frac: f64,
    /// Mean client-observed latency, ms (context).
    pub latency_ms: f64,
    /// Disk fetches per served op (context).
    pub fetches_per_op: f64,
}

/// Runs the full sweep: every strategy × every cluster size, in parallel.
pub fn run_scaling(scale: ExperimentScale) -> Vec<ScalePoint> {
    let sizes = scale.cluster_sizes();
    let configs: Vec<(StrategyKind, u16)> =
        StrategyKind::ALL.iter().flat_map(|&s| sizes.iter().map(move |&n| (s, n))).collect();
    parallel_map(&configs, |&(strategy, n_mds)| {
        let report = run_steady(scaling_config(strategy, n_mds, scale), scale);
        let received = report.total_received();
        ScalePoint {
            strategy,
            n_mds,
            throughput: report.avg_mds_throughput(),
            prefix_pct: report.mean_prefix_pct(),
            hit_rate: report.overall_hit_rate(),
            forward_frac: if received > 0 {
                report.total_forwarded() as f64 / received as f64
            } else {
                0.0
            },
            latency_ms: report.latency.mean().unwrap_or(0.0) * 1e3,
            fetches_per_op: {
                let fetches: u64 = report.nodes.iter().map(|n| n.disk_fetches).sum();
                fetches as f64 / report.total_served().max(1) as f64
            },
        }
    })
}

/// Figure 2 table: rows = cluster size, columns = strategy throughput.
pub fn fig2_table(points: &[ScalePoint]) -> Table {
    let mut sizes: Vec<u16> = points.iter().map(|p| p.n_mds).collect();
    sizes.sort();
    sizes.dedup();
    let mut headers: Vec<String> = vec!["mds".to_string()];
    headers.extend(StrategyKind::ALL.iter().map(|s| s.label().to_string()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Figure 2: average MDS throughput (ops/sec) vs cluster size", &hrefs);
    for n in sizes {
        let mut row = vec![n.to_string()];
        for s in StrategyKind::ALL {
            let v = points
                .iter()
                .find(|p| p.strategy == s && p.n_mds == n)
                .map(|p| format!("{:.0}", p.throughput))
                .unwrap_or_else(|| "-".into());
            row.push(v);
        }
        t.row(&row);
    }
    t
}

/// Figure 3 table: rows = cluster size, columns = prefix %, for the four
/// strategies the paper plots (Lazy Hybrid does no path traversal, so the
/// paper omits it).
pub fn fig3_table(points: &[ScalePoint]) -> Table {
    const FIG3: [StrategyKind; 4] = [
        StrategyKind::DynamicSubtree,
        StrategyKind::StaticSubtree,
        StrategyKind::DirHash,
        StrategyKind::FileHash,
    ];
    let mut sizes: Vec<u16> = points.iter().map(|p| p.n_mds).collect();
    sizes.sort();
    sizes.dedup();
    let mut headers: Vec<String> = vec!["mds".to_string()];
    headers.extend(FIG3.iter().map(|s| s.label().to_string()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t =
        Table::new("Figure 3: % of cache consumed by prefix inodes vs cluster size", &hrefs);
    for n in sizes {
        let mut row = vec![n.to_string()];
        for s in FIG3 {
            let v = points
                .iter()
                .find(|p| p.strategy == s && p.n_mds == n)
                .map(|p| format!("{:.1}", p.prefix_pct))
                .unwrap_or_else(|| "-".into());
            row.push(v);
        }
        t.row(&row);
    }
    t
}

/// Context table: hit rates, forwards and latency per point.
pub fn context_table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "Scaling sweep detail",
        &["strategy", "mds", "ops/s", "hit%", "fwd%", "lat_ms", "prefix%", "fetch/op"],
    );
    for p in points {
        t.row(&[
            p.strategy.label().to_string(),
            p.n_mds.to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.1}", p.hit_rate * 100.0),
            format!("{:.1}", p.forward_frac * 100.0),
            format!("{:.2}", p.latency_ms),
            format!("{:.1}", p.prefix_pct),
            format!("{:.3}", p.fetches_per_op),
        ]);
    }
    t
}

//! Figure 7: flash-crowd behaviour with and without traffic control.
//!
//! "Figure 7 shows the number of requests processed over time by
//! individual nodes in the MDS cluster when 10,000 clients simultaneously
//! request the same file … Without traffic control (top), MDS nodes simply
//! forward requests to the authoritative node who is quickly saturated …
//! When traffic control is enabled (bottom), the authority quickly
//! recognizes the file's sudden popularity and replicates the metadata on
//! other nodes" (§5.4).

use dynmds_core::{SimConfig, SimReport, Simulation};
use dynmds_event::{SimDuration, SimTime};
use dynmds_metrics::Table;
use dynmds_namespace::{InodeId, NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::FlashCrowd;

use crate::parallel::parallel_map;
use crate::params::ExperimentScale;

/// Results of both runs.
pub struct FlashResult {
    /// Traffic control enabled.
    pub with_tc: SimReport,
    /// Traffic control disabled.
    pub without_tc: SimReport,
    /// When the crowd fires.
    pub crowd_at: SimTime,
    /// Run length.
    pub duration: SimTime,
}

/// Crowd size per scale.
pub fn crowd_size(scale: ExperimentScale) -> u32 {
    match scale {
        ExperimentScale::Quick => 400,
        ExperimentScale::Full => 3_000,
    }
}

fn flash_config(scale: ExperimentScale, traffic_control: bool) -> SimConfig {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 8;
    cfg.n_clients = crowd_size(scale);
    cfg.cache_capacity = 4_000;
    cfg.journal_capacity = 4_000;
    cfg.n_osds = 16;
    cfg.traffic_control = traffic_control;
    cfg.replication_threshold = 64.0;
    // Isolate traffic control: no balancer interference.
    cfg.balancing = false;
    cfg.heartbeat = SimDuration::from_secs(1);
    cfg.sample_every = SimDuration::from_millis(25);
    // Clients poll the hot file continuously after opening it.
    cfg.costs.think_mean = SimDuration::from_millis(50);
    cfg.seed = 777;
    cfg
}

fn flash_snapshot(seed: u64) -> (Snapshot, InodeId) {
    let snap = NamespaceSpec { users: 32, shared_trees: 4, seed, ..Default::default() }.generate();
    let shared = snap.shared_roots[0];
    let target =
        snap.ns.walk(shared).find(|&id| !snap.ns.is_dir(id)).expect("shared tree contains files");
    (snap, target)
}

fn run_one(
    scale: ExperimentScale,
    traffic_control: bool,
    crowd_at: SimTime,
    duration: SimTime,
) -> SimReport {
    let cfg = flash_config(scale, traffic_control);
    let (snap, target) = flash_snapshot(cfg.seed ^ 0xF7);
    let wl = Box::new(FlashCrowd::new(target, cfg.n_clients as usize));
    // The crowd's opens land within a short burst window ("suddenly and
    // without warning", but not literally one instant — the paper's
    // Figure 7 spans a 0.2 s activity window).
    let mut sim = Simulation::with_start(cfg, snap, wl, crowd_at, SimDuration::from_millis(150));
    sim.run_until(duration);
    sim.finish()
}

/// Runs the crowd with TC on and off (in parallel).
pub fn run_flash(scale: ExperimentScale) -> FlashResult {
    let crowd_at = SimTime::from_millis(100);
    let duration = match scale {
        ExperimentScale::Quick => SimTime::from_millis(1_500),
        ExperimentScale::Full => SimTime::from_secs(3),
    };
    let settings = [true, false];
    let mut reports = parallel_map(&settings, |&tc| run_one(scale, tc, crowd_at, duration));
    let without_tc = reports.pop().expect("two runs");
    let with_tc = reports.pop().expect("two runs");
    FlashResult { with_tc, without_tc, crowd_at, duration }
}

/// Figure 7 table: cluster-wide replies/s and forwards/s per bin, for both
/// settings (the paper's top = no TC, bottom = TC).
pub fn fig7_table(r: &FlashResult, bin: SimDuration) -> Table {
    let mut t = Table::new(
        "Figure 7: flash crowd — replies and forwards per second, with/without traffic control",
        &["t_ms", "tc_replies/s", "tc_forwards/s", "notc_replies/s", "notc_forwards/s"],
    );
    let a = r.with_tc.reply_forward_rates(bin);
    let b = r.without_tc.reply_forward_rates(bin);
    for (pa, pb) in a.iter().zip(b.iter()) {
        t.row(&[
            format!("{:.0}", pa.0.as_secs_f64() * 1e3),
            format!("{:.0}", pa.1),
            format!("{:.0}", pa.2),
            format!("{:.0}", pb.1),
            format!("{:.0}", pb.2),
        ]);
    }
    t
}

/// Headline numbers: time for 95% of the crowd's opens to complete, and
/// total forwards, per setting.
pub struct FlashSummary {
    /// Seconds from crowd start until 95% of clients got a reply, TC on.
    pub tc_t95: f64,
    /// Same, TC off.
    pub notc_t95: f64,
    /// Total forwards, TC on.
    pub tc_forwards: u64,
    /// Total forwards, TC off.
    pub notc_forwards: u64,
}

/// Computes the flash-crowd summary.
pub fn flash_summary(r: &FlashResult, scale: ExperimentScale) -> FlashSummary {
    let crowd = crowd_size(scale) as f64;
    let t95 = |rep: &SimReport| {
        let mut served = 0.0;
        for (t, v) in serve_points(rep) {
            served += v;
            if served >= 0.95 * crowd {
                return t.saturating_since(r.crowd_at).as_secs_f64();
            }
        }
        r.duration.saturating_since(r.crowd_at).as_secs_f64()
    };
    FlashSummary {
        tc_t95: t95(&r.with_tc),
        notc_t95: t95(&r.without_tc),
        tc_forwards: r.with_tc.total_forwarded(),
        notc_forwards: r.without_tc.total_forwarded(),
    }
}

/// Merged, time-ordered served samples across nodes.
fn serve_points(rep: &SimReport) -> Vec<(SimTime, f64)> {
    let mut pts: Vec<(SimTime, f64)> =
        rep.served_series.iter().flat_map(|s| s.points().iter().copied()).collect();
    pts.sort_by_key(|&(t, _)| t);
    pts
}

//! Experiment harness: regenerates every figure of the SC'04 evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`scaling`] | Figure 2 (per-MDS throughput vs cluster size) and Figure 3 (prefix cache share vs cluster size) — same runs, two projections |
//! | [`hitrate`] | Figure 4 (cache hit rate vs relative cache size) |
//! | [`shiftrun`] | Figure 5 (throughput range under a workload shift) and Figure 6 (forwarded-request fraction) |
//! | [`flashrun`] | Figure 7 (flash crowd with/without traffic control) |
//! | [`hotspotrun`] | Hotspot absorption: proxy tier vs replication+redirect on adversarial storms |
//! | [`ablation`] | §4.5 / §5.3.2 design-choice ablations (embedded-inode prefetch; load balancing) |
//! | [`scirun`] | §5.2 scientific workload (LLNL-style synchronized bursts) across all strategies |
//!
//! Every experiment has a `quick` variant sized for CI/benches and a full
//! variant sized to show the paper's shapes clearly. All runs are
//! deterministic; independent configurations run in parallel worker
//! threads ([`parallel`]).

pub mod ablation;
pub mod availability;
pub mod elasticrun;
pub mod flashrun;
pub mod hitrate;
pub mod hotspotrun;
pub mod parallel;
pub mod params;
pub mod scalerun;
pub mod scaling;
pub mod scirun;
pub mod shiftrun;
#[cfg(test)]
mod tables_test;

pub use params::ExperimentScale;
pub use scalerun::{run_scale, scale_table, ScaleParams, ScalePoint};

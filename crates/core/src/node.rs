//! Per-MDS state: cache, journal, popularity, CPU.

use dynmds_cache::{MetaCache, Popularity};
use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::MdsId;
use dynmds_storage::{BoundedLog, DiskModel, DiskParams};

/// Counters reset every metrics sample window.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowCounters {
    /// Operations fully served (replies sent).
    pub served: u64,
    /// Requests forwarded to another node.
    pub forwarded: u64,
    /// Requests that arrived (served + forwarded).
    pub received: u64,
    /// Cache misses that went to disk.
    pub misses: u64,
}

/// Lifetime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifeCounters {
    /// Operations fully served.
    pub served: u64,
    /// Requests forwarded away.
    pub forwarded: u64,
    /// Requests received.
    pub received: u64,
    /// Disk fetches issued.
    pub disk_fetches: u64,
    /// Reads served from a non-authoritative replica.
    pub replica_serves: u64,
    /// Replica invalidations processed.
    pub invalidations: u64,
    /// Subtrees imported by load balancing.
    pub subtrees_in: u64,
    /// Subtrees exported by load balancing.
    pub subtrees_out: u64,
}

/// One metadata server.
pub struct MdsNode {
    /// This node's id.
    pub id: MdsId,
    /// Metadata cache (LRU + prefix pinning).
    pub cache: MetaCache,
    /// Decaying access counters for traffic control.
    pub popularity: Popularity,
    /// Decaying *update* counters: write-hot items must not be replicated
    /// (every replica write needs the authority anyway, and replication
    /// would misdirect client updates at random nodes).
    pub update_popularity: Popularity,
    /// Bounded update log (tier 1).
    pub journal: BoundedLog,
    /// Locally absorbed shared-write deltas (§4.2 GPFS-style): per inode,
    /// accumulated size growth and max mtime, pushed to the authority on
    /// the heartbeat.
    pub write_deltas: dynmds_namespace::FxHashMap<dynmds_namespace::InodeId, (u64, u64)>,
    /// Dedicated journal device (sequential appends).
    pub journal_disk: DiskModel,
    busy_until: SimTime,
    /// Window counters, taken by the sampler.
    pub win: WindowCounters,
    /// Lifetime counters.
    pub life: LifeCounters,
}

impl MdsNode {
    /// Creates a node with the given cache/journal sizes.
    pub fn new(
        id: MdsId,
        cache_capacity: usize,
        journal_capacity: usize,
        journal_disk: DiskParams,
        popularity_half_life: SimDuration,
    ) -> Self {
        MdsNode {
            id,
            cache: MetaCache::new(cache_capacity),
            popularity: Popularity::new(popularity_half_life),
            update_popularity: Popularity::new(popularity_half_life),
            journal: BoundedLog::new(journal_capacity),
            write_deltas: dynmds_namespace::FxHashMap::default(),
            journal_disk: DiskModel::new(journal_disk),
            busy_until: SimTime::ZERO,
            win: WindowCounters::default(),
            life: LifeCounters::default(),
        }
    }

    /// Occupies this node's CPU for `work`, no earlier than `now`; returns
    /// when the work completes. Requests queue behind each other — the
    /// serial-server model that makes a flooded authority slow (§5.4).
    pub fn occupy(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        self.busy_until = start + work;
        self.busy_until
    }

    /// When the CPU frees up.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Takes and resets the window counters.
    pub fn take_window(&mut self) -> WindowCounters {
        std::mem::take(&mut self.win)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> MdsNode {
        MdsNode::new(
            MdsId(0),
            100,
            100,
            DiskParams { latency: SimDuration::from_micros(500), iops: 5000.0 },
            SimDuration::from_secs(10),
        )
    }

    #[test]
    fn cpu_serializes_work() {
        let mut n = node();
        let t0 = SimTime::from_micros(1000);
        let c1 = n.occupy(t0, SimDuration::from_micros(100));
        let c2 = n.occupy(t0, SimDuration::from_micros(100));
        assert_eq!(c1, SimTime::from_micros(1100));
        assert_eq!(c2, SimTime::from_micros(1200), "second op queues");
        assert_eq!(n.busy_until(), c2);
    }

    #[test]
    fn cpu_idles_between_sparse_work() {
        let mut n = node();
        n.occupy(SimTime::ZERO, SimDuration::from_micros(50));
        let done = n.occupy(SimTime::from_millis(10), SimDuration::from_micros(50));
        assert_eq!(done, SimTime::from_micros(10_050));
    }

    #[test]
    fn window_counters_reset_on_take() {
        let mut n = node();
        n.win.served = 5;
        n.win.forwarded = 2;
        let w = n.take_window();
        assert_eq!(w.served, 5);
        assert_eq!(w.forwarded, 2);
        assert_eq!(n.win.served, 0);
    }
}

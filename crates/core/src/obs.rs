//! Cluster-side observability wiring (see `dynmds-obs` for the
//! instruments themselves).
//!
//! [`ClusterObs`] owns the registry, the span recorder and the snapshot
//! series for one simulation, and exposes one `#[inline]` hook per
//! instrumentation point in the op pipeline. Every hook begins with the
//! same single branch — `let Some(inner) = &mut self.inner else { return }`
//! — so a simulation with observability disabled pays one predictable
//! untaken branch per hook and nothing else: no allocation, no hashing,
//! no formatting. All hot-path formatting is deferred to export time.
//!
//! Determinism: hooks are called from the (deterministic) event loop and
//! record integers stamped with the sim clock, so metrics, snapshots and
//! trace exports are byte-identical across runs with the same seed.

use dynmds_event::SimTime;
use dynmds_namespace::MdsId;
use dynmds_obs::registry::{HOPS_BOUNDS, LATENCY_BOUNDS_US};
use dynmds_obs::span::NO_MDS;
use dynmds_obs::{CounterId, HistogramId, ObsConfig, Registry, SnapshotSeries, SpanRecorder};

pub use dynmds_obs::SpanStage;

/// Field order of the periodic per-MDS snapshot rows.
pub const SNAPSHOT_FIELDS: &[&str] =
    &["load", "cache_len", "cache_prefix", "cache_target", "journal_depth", "delegations", "alive"];

/// Stable lowercase tag for an op kind (span `kind` field).
pub fn op_kind_tag(kind: dynmds_workload::OpKind) -> &'static str {
    use dynmds_workload::OpKind::*;
    match kind {
        Stat => "stat",
        Lookup => "lookup",
        Open => "open",
        Close => "close",
        Readdir => "readdir",
        Create => "create",
        Mkdir => "mkdir",
        Unlink => "unlink",
        Rename => "rename",
        Chmod => "chmod",
        SetAttr => "setattr",
        Link => "link",
    }
}

/// Everything the observability layer produced, rendered at end of run.
#[derive(Clone, Debug)]
pub struct ObsExport {
    /// One JSONL line per registered metric.
    pub metrics_jsonl: String,
    /// One JSONL line per snapshot row.
    pub snapshots_jsonl: String,
    /// One JSONL line per retained op span (`--obs-trace` only).
    pub trace_jsonl: Option<String>,
    /// Human-readable digest of the run.
    pub summary: String,
}

struct Handles {
    // per-MDS counters
    received: CounterId,
    served: CounterId,
    forwarded: CounterId,
    replica_serves: CounterId,
    prefix_misses: CounterId,
    target_misses: CounterId,
    remote_prefix_fetches: CounterId,
    disk_fetches: CounterId,
    journal_commits: CounterId,
    journal_writebacks: CounterId,
    shared_absorbed: CounterId,
    warmed_items: CounterId,
    // cluster scalars
    estale: CounterId,
    lease_local: CounterId,
    dead_timeouts: CounterId,
    replications: CounterId,
    dereplications: CounterId,
    shared_flushes: CounterId,
    migrations: CounterId,
    delegation_splits: CounterId,
    delegation_merges: CounterId,
    failures: CounterId,
    recoveries: CounterId,
    scale_outs: CounterId,
    scale_ins: CounterId,
    retries: CounterId,
    gave_up: CounterId,
    net_lost: CounterId,
    net_dup: CounterId,
    // distributions
    latency_us: HistogramId,
    hops: HistogramId,
    // proxy tier (registered only when the tier is enabled, so proxy-off
    // exports keep the exact pre-proxy metric set and order)
    proxy: Option<ProxyHandles>,
}

struct ProxyHandles {
    neg_hits: CounterId,
    read_absorbs: CounterId,
    coalesced: CounterId,
    flushed: CounterId,
    forwarded: CounterId,
    n_proxies: usize,
}

struct Inner {
    reg: Registry,
    h: Handles,
    spans: Option<SpanRecorder>,
    snaps: SnapshotSeries,
    n_mds: usize,
}

/// The per-cluster observability layer. Disabled, it is a `None` and
/// every hook is a single branch.
pub struct ClusterObs {
    inner: Option<Box<Inner>>,
}

impl ClusterObs {
    /// Builds the layer for `n_mds` servers and `n_clients` clients,
    /// without proxy instruments.
    pub fn new(cfg: ObsConfig, n_mds: usize, n_clients: usize) -> Self {
        Self::with_proxies(cfg, n_mds, n_clients, 0)
    }

    /// Builds the layer; `n_proxies > 0` additionally registers the proxy
    /// tier's counters (after every pre-existing metric, so proxy-off
    /// exports are byte-identical to [`ClusterObs::new`]).
    pub fn with_proxies(cfg: ObsConfig, n_mds: usize, n_clients: usize, n_proxies: usize) -> Self {
        if !cfg.enabled() {
            return ClusterObs { inner: None };
        }
        let mut reg = Registry::new();
        let n = n_mds;
        let h = Handles {
            received: reg.counter("received", n),
            served: reg.counter("served", n),
            forwarded: reg.counter("forwarded", n),
            replica_serves: reg.counter("replica_serves", n),
            prefix_misses: reg.counter("prefix_misses", n),
            target_misses: reg.counter("target_misses", n),
            remote_prefix_fetches: reg.counter("remote_prefix_fetches", n),
            disk_fetches: reg.counter("disk_fetches", n),
            journal_commits: reg.counter("journal_commits", n),
            journal_writebacks: reg.counter("journal_writebacks", n),
            shared_absorbed: reg.counter("shared_write_absorbed", n),
            warmed_items: reg.counter("journal_warmed_items", n),
            estale: reg.counter("estale_replies", 1),
            lease_local: reg.counter("lease_local_reads", 1),
            dead_timeouts: reg.counter("failover_timeouts", 1),
            replications: reg.counter("replications", 1),
            dereplications: reg.counter("dereplications", 1),
            shared_flushes: reg.counter("shared_write_flushes", 1),
            migrations: reg.counter("subtree_migrations", 1),
            delegation_splits: reg.counter("delegation_splits", 1),
            delegation_merges: reg.counter("delegation_merges", 1),
            failures: reg.counter("node_failures", 1),
            recoveries: reg.counter("node_recoveries", 1),
            scale_outs: reg.counter("elastic_scale_outs", 1),
            scale_ins: reg.counter("elastic_scale_ins", 1),
            retries: reg.counter("client_retries", 1),
            gave_up: reg.counter("ops_gave_up", 1),
            net_lost: reg.counter("net_messages_lost", 1),
            net_dup: reg.counter("net_messages_duplicated", 1),
            latency_us: reg.histogram("latency_us", LATENCY_BOUNDS_US),
            hops: reg.histogram("hops", HOPS_BOUNDS),
            proxy: (n_proxies > 0).then(|| ProxyHandles {
                neg_hits: reg.counter("proxy_neg_hits", n_proxies),
                read_absorbs: reg.counter("proxy_read_absorbs", n_proxies),
                coalesced: reg.counter("proxy_writes_coalesced", n_proxies),
                flushed: reg.counter("proxy_flushed_items", n_proxies),
                forwarded: reg.counter("proxy_forwarded", n_proxies),
                n_proxies,
            }),
        };
        let spans = cfg.trace.then(|| SpanRecorder::new(n_clients, cfg.ring_capacity()));
        let snaps = SnapshotSeries::new(SNAPSHOT_FIELDS, n_mds);
        ClusterObs { inner: Some(Box::new(Inner { reg, h, spans, snaps, n_mds })) }
    }

    /// Whether any instrument is live (callers use this to skip gathering
    /// snapshot data entirely when observability is off).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether span tracing is live.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.spans.is_some())
    }

    // ---- op lifecycle hooks -------------------------------------------

    /// Client dispatched an op: open its span.
    #[inline]
    pub fn on_issue(&mut self, now: SimTime, client: u32, kind: &'static str) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(spans) = &mut inner.spans {
            spans.start(client, kind, now.as_micros());
        }
    }

    /// Attribute read served from the client's own lease.
    #[inline]
    pub fn on_lease_local(&mut self, now: SimTime, reply_at: SimTime, client: u32) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.lease_local, 0);
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::LeaseLocal, now.as_micros(), NO_MDS);
            spans.finish(client, SpanStage::Reply, reply_at.as_micros(), NO_MDS);
        }
    }

    /// Request arrived at a live MDS.
    #[inline]
    pub fn on_arrive(&mut self, now: SimTime, client: u32, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.received, mds.index());
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Arrive, now.as_micros(), mds.0);
        }
    }

    /// Request addressed a dead node and is being re-driven.
    #[inline]
    pub fn on_dead_timeout(&mut self, now: SimTime, client: u32, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.dead_timeouts, 0);
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::DeadTimeout, now.as_micros(), mds.0);
        }
    }

    /// Target raced with an unlink.
    #[inline]
    pub fn on_estale(&mut self, now: SimTime, client: u32, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.estale, 0);
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Estale, now.as_micros(), mds.0);
        }
    }

    /// Non-authoritative receiver forwarded the request.
    #[inline]
    pub fn on_forward(&mut self, now: SimTime, client: u32, from: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.forwarded, from.index());
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Forward, now.as_micros(), from.0);
        }
    }

    /// Read served by a non-authoritative replica holder.
    #[inline]
    pub fn on_replica_serve(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.replica_serves, mds.index());
    }

    /// Prefix traversal completed (`done` = its IO completion time).
    #[inline]
    pub fn on_traverse(&mut self, done: SimTime, client: u32, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Traverse, done.as_micros(), mds.0);
        }
    }

    /// A prefix directory missed the serving node's cache.
    #[inline]
    pub fn on_prefix_miss(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.prefix_misses, mds.index());
    }

    /// A missing prefix was replicated from a peer authority.
    #[inline]
    pub fn on_remote_prefix(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.remote_prefix_fetches, mds.index());
    }

    /// The target cache probe resolved (`hit`), at time `now`.
    #[inline]
    pub fn on_target_probe(&mut self, now: SimTime, client: u32, mds: MdsId, hit: bool) {
        let Some(inner) = &mut self.inner else { return };
        if !hit {
            inner.reg.inc(inner.h.target_misses, mds.index());
        }
        if let Some(spans) = &mut inner.spans {
            let stage = if hit { SpanStage::CacheHit } else { SpanStage::CacheMiss };
            spans.event(client, stage, now.as_micros(), mds.0);
        }
    }

    /// A tier-2 fetch was issued by `mds`.
    #[inline]
    pub fn on_disk_fetch(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.disk_fetches, mds.index());
    }

    /// A mutation committed to `mds`'s journal; `writebacks` entries were
    /// retired to tier 2.
    #[inline]
    pub fn on_journal_commit(&mut self, done: SimTime, client: u32, mds: MdsId, writebacks: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.journal_commits, mds.index());
        inner.reg.add(inner.h.journal_writebacks, mds.index(), writebacks);
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Journal, done.as_micros(), mds.0);
        }
    }

    /// `mds` fully served an op.
    #[inline]
    pub fn on_served(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.served, mds.index());
    }

    /// The reply reached its client: close the span, record latency/hops.
    #[inline]
    pub fn on_reply(
        &mut self,
        reply_at: SimTime,
        client: u32,
        mds: MdsId,
        issued_at: SimTime,
        hops: u8,
    ) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.observe(inner.h.latency_us, reply_at.saturating_since(issued_at).as_micros());
        inner.reg.observe(inner.h.hops, hops as u64);
        if let Some(spans) = &mut inner.spans {
            spans.finish(client, SpanStage::Reply, reply_at.as_micros(), mds.0);
        }
    }

    // ---- subsystem hooks ----------------------------------------------

    /// A shared-write delta was absorbed at replica `mds`.
    #[inline]
    pub fn on_shared_absorb(&mut self, mds: MdsId) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.shared_absorbed, mds.index());
    }

    /// `contributors` replica deltas were merged at an authority.
    #[inline]
    pub fn on_shared_flush(&mut self, contributors: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.add(inner.h.shared_flushes, 0, contributors);
    }

    /// An item was replicated cluster-wide (traffic control).
    #[inline]
    pub fn on_replicate(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.replications, 0);
    }

    /// `n` items cooled down and were de-replicated.
    #[inline]
    pub fn on_dereplicate(&mut self, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.add(inner.h.dereplications, 0, n);
    }

    /// A subtree migrated between servers.
    #[inline]
    pub fn on_migration(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.migrations, 0);
    }

    /// The balancer split a delegation into `n` new delegation points.
    #[inline]
    pub fn on_delegation_split(&mut self, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.add(inner.h.delegation_splits, 0, n);
    }

    /// Consolidation merged away `n` redundant delegation points.
    #[inline]
    pub fn on_delegation_merge(&mut self, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.add(inner.h.delegation_merges, 0, n);
    }

    /// A client re-drove a request after a dead-node timeout or a lost
    /// message.
    #[inline]
    pub fn on_retry(&mut self, now: SimTime, client: u32) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.retries, 0);
        if let Some(spans) = &mut inner.spans {
            spans.event(client, SpanStage::Retry, now.as_micros(), NO_MDS);
        }
    }

    /// A client exhausted its retry budget and abandoned the op: close
    /// the span with the terminal gave-up stage.
    #[inline]
    pub fn on_gave_up(&mut self, now: SimTime, client: u32) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.gave_up, 0);
        if let Some(spans) = &mut inner.spans {
            spans.finish(client, SpanStage::GaveUp, now.as_micros(), NO_MDS);
        }
    }

    /// The network fault window dropped a message.
    #[inline]
    pub fn on_net_loss(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.net_lost, 0);
    }

    /// The network fault window duplicated a message.
    #[inline]
    pub fn on_net_dup(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.net_dup, 0);
    }

    /// A node died.
    #[inline]
    pub fn on_failure(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.failures, 0);
    }

    /// A node came back.
    #[inline]
    pub fn on_recovery(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.recoveries, 0);
    }

    /// The elastic controller activated a standby node.
    #[inline]
    pub fn on_scale_out(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.scale_outs, 0);
    }

    /// The elastic controller parked a live node after handoff.
    #[inline]
    pub fn on_scale_in(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.inc(inner.h.scale_ins, 0);
    }

    /// `n` working-set items were preloaded into `mds`'s cache from a
    /// shared-storage journal.
    #[inline]
    pub fn on_journal_warm(&mut self, mds: MdsId, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.add(inner.h.warmed_items, mds.index(), n);
    }

    // ---- proxy-tier hooks (no-ops unless built `with_proxies`) ---------

    /// Proxy `p` answered an op from its own caches: the op never entered
    /// the cluster. Records latency and a zero hop count, closes the span.
    #[inline]
    pub fn on_proxy_serve(&mut self, reply_at: SimTime, client: u32, issued_at: SimTime) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.observe(inner.h.latency_us, reply_at.saturating_since(issued_at).as_micros());
        inner.reg.observe(inner.h.hops, 0);
        if let Some(spans) = &mut inner.spans {
            spans.finish(client, SpanStage::Reply, reply_at.as_micros(), NO_MDS);
        }
    }

    /// Proxy `p` served a negative lookup from its cache.
    #[inline]
    pub fn on_proxy_neg_hit(&mut self, p: usize) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(ph) = &inner.h.proxy {
            inner.reg.inc(ph.neg_hits, p);
        }
    }

    /// Proxy `p` absorbed a read of a hot cached item.
    #[inline]
    pub fn on_proxy_read_absorb(&mut self, p: usize) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(ph) = &inner.h.proxy {
            inner.reg.inc(ph.read_absorbs, p);
        }
    }

    /// Proxy `p` coalesced a monotone write.
    #[inline]
    pub fn on_proxy_coalesce(&mut self, p: usize) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(ph) = &inner.h.proxy {
            inner.reg.inc(ph.coalesced, p);
        }
    }

    /// Proxy `p` pushed `n` coalesced item deltas to authorities.
    #[inline]
    pub fn on_proxy_flush(&mut self, p: usize, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(ph) = &inner.h.proxy {
            inner.reg.add(ph.flushed, p, n);
        }
    }

    /// Proxy `p` relayed a hot request into the cluster.
    #[inline]
    pub fn on_proxy_forward(&mut self, p: usize) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(ph) = &inner.h.proxy {
            inner.reg.inc(ph.forwarded, p);
        }
    }

    // ---- snapshots, reset, export -------------------------------------

    /// Appends one snapshot row (field-major over [`SNAPSHOT_FIELDS`]).
    pub fn snapshot(&mut self, now: SimTime, row: Vec<u64>) {
        let Some(inner) = &mut self.inner else { return };
        inner.snaps.push_row(now.as_micros(), row);
    }

    /// Clears all recorded data (measurement restart after warm-up).
    pub fn reset(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        inner.reg.reset();
        inner.snaps.reset();
        if let Some(spans) = &mut inner.spans {
            spans.reset();
        }
    }

    /// Renders every export. `None` when observability is disabled.
    pub fn export(&self) -> Option<ObsExport> {
        let inner = self.inner.as_ref()?;
        Some(ObsExport {
            metrics_jsonl: inner.reg.to_jsonl(),
            snapshots_jsonl: inner.snaps.to_jsonl(),
            trace_jsonl: inner.spans.as_ref().map(|s| s.to_jsonl()),
            summary: Self::render_summary(inner),
        })
    }

    fn render_summary(inner: &Inner) -> String {
        let reg = &inner.reg;
        let h = &inner.h;
        let mut t = dynmds_metrics::Table::new(
            "observability summary (per MDS)",
            &[
                "node", "recv", "served", "fwd", "replica", "pfx miss", "tgt miss", "disk",
                "journal",
            ],
        );
        for i in 0..inner.n_mds {
            t.row(&[
                format!("mds{i}"),
                reg.counter_value(h.received, i).to_string(),
                reg.counter_value(h.served, i).to_string(),
                reg.counter_value(h.forwarded, i).to_string(),
                reg.counter_value(h.replica_serves, i).to_string(),
                reg.counter_value(h.prefix_misses, i).to_string(),
                reg.counter_value(h.target_misses, i).to_string(),
                reg.counter_value(h.disk_fetches, i).to_string(),
                reg.counter_value(h.journal_commits, i).to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nlatency: mean {:.2} ms, ~p50 {:.2} ms, ~p99 {:.2} ms over {} ops\n",
            reg.histogram_mean(h.latency_us) / 1e3,
            reg.histogram_quantile(h.latency_us, 0.5) as f64 / 1e3,
            reg.histogram_quantile(h.latency_us, 0.99) as f64 / 1e3,
            reg.histogram_count(h.latency_us),
        ));
        out.push_str(&format!(
            "cluster: lease-local {}, estale {}, failover timeouts {}, replications {} (-{}), \
             migrations {}, splits {}, merges {}, failures {}, recoveries {}, \
             scale-outs {}, scale-ins {}\n",
            reg.counter_total(h.lease_local),
            reg.counter_total(h.estale),
            reg.counter_total(h.dead_timeouts),
            reg.counter_total(h.replications),
            reg.counter_total(h.dereplications),
            reg.counter_total(h.migrations),
            reg.counter_total(h.delegation_splits),
            reg.counter_total(h.delegation_merges),
            reg.counter_total(h.failures),
            reg.counter_total(h.recoveries),
            reg.counter_total(h.scale_outs),
            reg.counter_total(h.scale_ins),
        ));
        out.push_str(&format!(
            "faults: retries {}, gave up {}, net lost {}, net dup {}\n",
            reg.counter_total(h.retries),
            reg.counter_total(h.gave_up),
            reg.counter_total(h.net_lost),
            reg.counter_total(h.net_dup),
        ));
        if let Some(ph) = &h.proxy {
            out.push_str(&format!(
                "proxy ({}): neg hits {}, read absorbs {}, coalesced {}, flushed {}, forwarded {}\n",
                ph.n_proxies,
                reg.counter_total(ph.neg_hits),
                reg.counter_total(ph.read_absorbs),
                reg.counter_total(ph.coalesced),
                reg.counter_total(ph.flushed),
                reg.counter_total(ph.forwarded),
            ));
        }
        out.push_str(&format!(
            "snapshots: {} rows × {} fields",
            inner.snaps.len(),
            inner.snaps.fields().len()
        ));
        if let Some(spans) = &inner.spans {
            out.push_str(&format!(
                "; spans: {} retained, {} dropped, {} started",
                spans.len(),
                spans.dropped(),
                spans.started()
            ));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_layer_is_inert_and_exports_nothing() {
        let mut obs = ClusterObs::new(ObsConfig::default(), 4, 8);
        assert!(!obs.enabled());
        assert!(!obs.tracing());
        obs.on_served(MdsId(0));
        obs.on_reply(SimTime::from_millis(2), 0, MdsId(0), SimTime::from_millis(1), 0);
        assert!(obs.export().is_none());
    }

    #[test]
    fn metrics_only_layer_counts_without_spans() {
        let mut obs = ClusterObs::new(ObsConfig::metrics_only(), 2, 4);
        assert!(obs.enabled());
        assert!(!obs.tracing());
        obs.on_arrive(SimTime::from_millis(1), 0, MdsId(1));
        obs.on_served(MdsId(1));
        obs.on_reply(SimTime::from_millis(3), 0, MdsId(1), SimTime::from_millis(1), 1);
        let e = obs.export().unwrap();
        assert!(e.metrics_jsonl.contains("\"name\":\"served\",\"per_mds\":[0,1]"));
        assert!(e.trace_jsonl.is_none());
        assert!(e.summary.contains("mds1"));
    }

    #[test]
    fn traced_op_produces_one_span_line() {
        let mut obs = ClusterObs::new(ObsConfig::full(), 2, 4);
        assert!(obs.tracing());
        obs.on_issue(SimTime::from_micros(10), 3, "stat");
        obs.on_arrive(SimTime::from_micros(110), 3, MdsId(0));
        obs.on_target_probe(SimTime::from_micros(110), 3, MdsId(0), true);
        obs.on_served(MdsId(0));
        obs.on_reply(SimTime::from_micros(400), 3, MdsId(0), SimTime::from_micros(10), 0);
        let e = obs.export().unwrap();
        let trace = e.trace_jsonl.unwrap();
        assert_eq!(trace.lines().count(), 1);
        assert!(trace.contains("\"kind\":\"stat\""));
        assert!(trace.contains("cache_hit"));
    }

    #[test]
    fn reset_clears_counters_and_spans() {
        let mut obs = ClusterObs::new(ObsConfig::full(), 1, 2);
        obs.on_issue(SimTime::ZERO, 0, "open");
        obs.on_served(MdsId(0));
        obs.snapshot(SimTime::from_secs(1), vec![0; SNAPSHOT_FIELDS.len()]);
        obs.reset();
        let e = obs.export().unwrap();
        assert!(e.metrics_jsonl.contains("\"name\":\"served\",\"value\":0"));
        assert_eq!(e.snapshots_jsonl, "");
        assert_eq!(e.trace_jsonl.unwrap(), "");
    }

    #[test]
    fn op_kind_tags_are_stable() {
        assert_eq!(op_kind_tag(dynmds_workload::OpKind::Stat), "stat");
        assert_eq!(op_kind_tag(dynmds_workload::OpKind::SetAttr), "setattr");
    }
}

//! The MDS cluster: event handling and the request-service pipeline.
//!
//! One [`Cluster`] is the [`Handler`] driven by the event engine. The
//! service pipeline for a request follows §4:
//!
//! 1. **Routing** — the client picked a server (deepest known prefix, or
//!    the hash function); if that server is not authoritative and cannot
//!    serve a replica read, it forwards to the authority (one hop).
//! 2. **Path traversal** — the serving node walks the target's prefix
//!    directories in its cache, fetching (locally or from peer
//!    authorities) whatever is missing; the cached subset stays a tree.
//!    Lazy Hybrid skips traversal and instead pays for any pending lazy
//!    updates.
//! 3. **Target access** — cache hit, or a tier-2 fetch that, under the
//!    embedded-directories layout, prefetches the whole directory.
//! 4. **Mutation** — namespace update + journal append (tier-1 commit);
//!    retired journal entries stream to tier 2 asynchronously.
//! 5. **Popularity / traffic control** — decayed counters; hot items are
//!    replicated cluster-wide and replies advertise the replica set.
//! 6. **Reply** — carries location information that educates the client.

use dynmds_cache::InsertKind;
use dynmds_event::{EventQueue, Handler, SimDuration, SimRng, SimTime};
use dynmds_metrics::{Summary, TimeSeries};
use dynmds_namespace::{
    ClientId, FxHashMap, FxHashSet, InodeId, MdsId, Namespace, Permissions, Snapshot,
};
use dynmds_partition::{dentry_hash, Partition, StrategyKind};
use dynmds_storage::{AnchorTable, DiskFault, MetadataStore, OsdPool, StoreLayout};
use dynmds_workload::{Op, Workload};

use crate::client::{ClientPool, KnownLocation};
use crate::config::SimConfig;
use crate::fault::{DiskScope, NetFaultSpec};
use crate::node::MdsNode;
use crate::obs::ClusterObs;
use crate::report::{NodeSnapshot, SimReport};
use crate::request::{Request, SimEvent};

/// One entry of the optional migration audit trail
/// ([`Cluster::migration_log`]): where a subtree moved and whether both
/// endpoints were alive when the balancer moved it.
#[derive(Clone, Copy, Debug)]
pub struct MigrationRecord {
    /// When the migration happened.
    pub at: SimTime,
    /// Subtree root that moved.
    pub root: InodeId,
    /// Exporting node.
    pub from: MdsId,
    /// Importing node.
    pub to: MdsId,
    /// Exporter liveness at migration time.
    pub from_alive: bool,
    /// Importer liveness at migration time.
    pub to_alive: bool,
}

/// The whole simulated system. See module docs.
pub struct Cluster {
    /// Configuration of this run.
    pub cfg: SimConfig,
    /// Shared ground-truth namespace.
    pub ns: Namespace,
    /// Placement function.
    pub partition: Partition,
    /// Tier-2 store over the OSD pool.
    pub store: MetadataStore,
    /// Anchor table for multiply-linked inodes.
    pub anchors: AnchorTable,
    /// The metadata servers.
    pub nodes: Vec<MdsNode>,
    /// The client population.
    pub clients: ClientPool,
    /// Operation source.
    pub workload: Box<dyn Workload>,
    pub(crate) rng: SimRng,

    // --- traffic control state (§4.4) ---------------------------------
    /// Items currently replicated cluster-wide.
    pub(crate) replicated: FxHashSet<InodeId>,

    // --- dynamic directory hashing (§4.3) ------------------------------
    /// Directories currently spread entry-wise across the cluster.
    pub(crate) hashed_dirs: FxHashSet<InodeId>,

    // --- balancer bookkeeping (§4.3) -----------------------------------
    /// Per node: subtree roots imported through balancing (re-delegated
    /// first when shedding load).
    pub(crate) imported: Vec<Vec<InodeId>>,
    /// Ops per delegation root since the last heartbeat.
    pub(crate) subtree_ops: FxHashMap<InodeId, u64>,
    /// Last migration time per subtree root (anti-thrash cooldown).
    pub(crate) last_migrated: FxHashMap<InodeId, SimTime>,
    /// When each delegation point was created by a split (consolidation
    /// protection until it has had a chance to migrate).
    pub(crate) split_at: FxHashMap<InodeId, SimTime>,
    /// Served ops per node since the last heartbeat.
    pub(crate) hb_served: Vec<u64>,
    /// Cache misses per node since the last heartbeat.
    pub(crate) hb_misses: Vec<u64>,
    /// Exponentially smoothed load per node (heartbeat granularity).
    pub(crate) hb_ewma: Vec<f64>,
    /// Consecutive heartbeats each node has been over the imbalance
    /// threshold; migration needs persistence, not a noisy spike.
    pub(crate) busy_streak: Vec<u32>,
    /// Total subtree migrations performed.
    pub migrations: u64,
    /// Optional migration audit trail for tests: records the liveness of
    /// both endpoints at migration time. `None` (the default) costs one
    /// untaken branch per migration.
    pub migration_log: Option<Vec<MigrationRecord>>,

    // --- elastic autoscaling (ROADMAP item 3) ---------------------------
    /// Controller state; inert unless [`SimConfig::elastic`] is enabled.
    pub elastic: crate::elastic::ElasticState,

    // --- failover state (§2.1.2) ---------------------------------------
    /// Liveness per node.
    pub(crate) alive: Vec<bool>,
    /// Node failures injected.
    pub failures: u64,
    /// Node recoveries performed.
    pub recoveries: u64,
    /// Requests that timed out against a dead node and were re-driven.
    pub failover_timeouts: u64,
    /// Scheduled failures skipped because they would have killed the last
    /// live node (churn-generated crashes only).
    pub failures_skipped: u64,

    // --- fault injection & retry (this crate's `fault` module) ----------
    /// Dedicated stream for fault draws (retry jitter, message loss and
    /// duplication). Fault-free runs never draw from it, keeping them
    /// byte-identical to builds without fault injection.
    pub(crate) fault_rng: SimRng,
    /// Active network fault window, if any.
    pub(crate) net_fault: Option<NetFaultSpec>,
    /// Client retries driven (dead-node timeouts + lost messages).
    pub retries_total: u64,
    /// Operations abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Messages dropped by the network fault window.
    pub net_lost: u64,
    /// Messages duplicated by the network fault window.
    pub net_dup: u64,
    /// Operations issued by clients (including lease-served ones).
    pub ops_issued: u64,
    /// Operations that reached a terminal outcome (reply, ESTALE reply,
    /// or gave-up).
    pub ops_completed: u64,

    // --- accounting -----------------------------------------------------
    /// Served operations by kind (MDS-visible; lease-served reads are not
    /// included).
    pub op_counts: FxHashMap<dynmds_workload::OpKind, u64>,

    // --- shared writes (§4.2, GPFS-style) ------------------------------
    /// Items with outstanding replica-absorbed write deltas.
    pub(crate) dirty_shared: FxHashSet<InodeId>,

    /// Reusable root-first ancestor-chain buffer for [`traverse`]
    /// (steady-state request service allocates nothing per op).
    ///
    /// [`traverse`]: Cluster::traverse
    pub(crate) traverse_scratch: Vec<InodeId>,
    /// Writes absorbed at non-authoritative replicas.
    pub shared_write_absorbed: u64,
    /// Delta pushes merged at authorities (heartbeat + read callbacks).
    pub shared_write_flushes: u64,

    // --- hotspot proxy tier (ROADMAP item 4) ----------------------------
    /// The proxies fronting the cluster (empty = tier disabled; every
    /// proxy code path is gated on non-emptiness so proxy-off runs are
    /// byte-identical to pre-proxy builds).
    pub(crate) proxies: Vec<dynmds_proxy::ProxyCore>,
    /// Items with coalesced proxy write deltas not yet at the authority.
    pub(crate) proxy_dirty: FxHashSet<InodeId>,
    /// Ops fully absorbed at a proxy (negative lookups, hot reads,
    /// coalesced writes) — they never entered the cluster.
    pub proxy_absorbed: u64,
    /// Hot ops a proxy relayed into the cluster.
    pub proxy_forwarded: u64,
    /// Coalesced item deltas merged at authorities (heartbeat + read
    /// callbacks).
    pub proxy_flushes: u64,

    // --- observability ---------------------------------------------------
    /// Metrics registry + op-trace spans + snapshots; inert (one branch
    /// per hook) unless enabled through [`SimConfig::obs`].
    pub obs: ClusterObs,
    /// DST probe (applied-op log + protocol invariants); absent unless a
    /// simulation-testing harness calls [`enable_dst_probe`]. Costs one
    /// untaken branch per hook when off, like `obs`.
    ///
    /// [`enable_dst_probe`]: Cluster::enable_dst_probe
    pub probe: Option<Box<crate::check::DstProbe>>,

    // --- metrics --------------------------------------------------------
    pub(crate) measure_start: SimTime,
    pub(crate) served_series: Vec<TimeSeries>,
    pub(crate) forwarded_series: Vec<TimeSeries>,
    pub(crate) received_series: Vec<TimeSeries>,
    pub(crate) latency: Summary,
}

impl Cluster {
    /// Builds the cluster over a generated snapshot and workload.
    pub fn new(cfg: SimConfig, snapshot: Snapshot, workload: Box<dyn Workload>) -> Self {
        let ns = snapshot.ns;
        let partition = Partition::initial(cfg.strategy, &ns, cfg.n_mds);
        let layout = if cfg.strategy.embeds_inodes() && !cfg.force_inode_table {
            StoreLayout::EmbeddedDirectories
        } else {
            StoreLayout::InodeTable
        };
        let store = MetadataStore::new(layout, OsdPool::new(cfg.n_osds, cfg.costs.osd_disk));
        let mut nodes: Vec<MdsNode> = (0..cfg.n_mds)
            .map(|i| {
                MdsNode::new(
                    MdsId(i),
                    cfg.cache_capacity,
                    cfg.journal_capacity,
                    cfg.costs.journal_disk,
                    cfg.popularity_half_life,
                )
            })
            .collect();
        if cfg.disable_prefetch_probation {
            for n in &mut nodes {
                n.cache = dynmds_cache::MetaCache::with_probation(cfg.cache_capacity, false);
            }
        }
        // The root is known to (and cached by) every node from the start.
        for n in &mut nodes {
            n.cache.insert(ns.root(), None, InsertKind::Prefix);
        }
        let mut clients = ClientPool::new(cfg.n_clients, cfg.n_mds, cfg.seed);
        for c in 0..cfg.n_clients {
            let uid = workload.uid_of(ClientId(c));
            clients.set_uid(ClientId(c), uid);
        }
        let n = cfg.n_mds as usize;
        let mut cluster = Cluster {
            rng: SimRng::seed_from_u64(cfg.seed ^ 0x5EED),
            ns,
            partition,
            store,
            anchors: AnchorTable::new(),
            nodes,
            clients,
            workload,
            replicated: FxHashSet::default(),
            hashed_dirs: FxHashSet::default(),
            imported: vec![Vec::new(); n],
            subtree_ops: FxHashMap::default(),
            last_migrated: FxHashMap::default(),
            split_at: FxHashMap::default(),
            hb_served: vec![0; n],
            hb_misses: vec![0; n],
            hb_ewma: vec![0.0; n],
            busy_streak: vec![0; n],
            migrations: 0,
            migration_log: None,
            elastic: crate::elastic::ElasticState::new(n),
            alive: vec![true; n],
            failures: 0,
            recoveries: 0,
            failover_timeouts: 0,
            failures_skipped: 0,
            fault_rng: SimRng::seed_from_u64(cfg.seed ^ 0xFA17),
            net_fault: None,
            retries_total: 0,
            gave_up: 0,
            net_lost: 0,
            net_dup: 0,
            ops_issued: 0,
            ops_completed: 0,
            op_counts: FxHashMap::default(),
            dirty_shared: FxHashSet::default(),
            traverse_scratch: Vec::new(),
            shared_write_absorbed: 0,
            shared_write_flushes: 0,
            proxies: (0..cfg.proxy.count)
                .map(|_| dynmds_proxy::ProxyCore::new(&cfg.proxy))
                .collect(),
            proxy_dirty: FxHashSet::default(),
            proxy_absorbed: 0,
            proxy_forwarded: 0,
            proxy_flushes: 0,
            obs: ClusterObs::with_proxies(
                cfg.obs,
                n,
                cfg.n_clients as usize,
                cfg.proxy.count as usize,
            ),
            probe: None,
            measure_start: SimTime::ZERO,
            served_series: vec![TimeSeries::new(); n],
            forwarded_series: vec![TimeSeries::new(); n],
            received_series: vec![TimeSeries::new(); n],
            latency: Summary::new(),
            cfg,
        };
        if cluster.cfg.elastic.enabled {
            cluster.park_initial_standby();
        }
        cluster
    }

    /// Attaches a fresh [`DstProbe`](crate::check::DstProbe) so a DST
    /// harness can drain the applied-op log and protocol-invariant
    /// violations. Purely observational: enabling it never changes the
    /// simulation's behaviour or its RNG draws.
    pub fn enable_dst_probe(&mut self) {
        self.probe = Some(Box::new(crate::check::DstProbe::new(self.cfg.n_clients as usize)));
    }

    /// The authoritative MDS for `id`, honouring dynamic directory
    /// hashing: entries of a hashed directory are owned entry-wise.
    pub fn authority_of(&self, id: InodeId) -> MdsId {
        if !self.hashed_dirs.is_empty() {
            if let Ok(Some(p)) = self.ns.parent(id) {
                if self.hashed_dirs.contains(&p) {
                    if let Ok(name) = self.ns.name(id) {
                        return dentry_hash(p, name, self.cfg.n_mds);
                    }
                }
            }
        }
        self.partition.authority(&self.ns, id)
    }

    /// The authoritative MDS for an *operation*: like [`authority_of`] on
    /// the target, except that namespace operations naming an entry of a
    /// hashed directory are owned by the entry's hash — "the authority for
    /// a given directory entry is defined by a hash of the file name and
    /// the directory inode number", letting creates into one huge
    /// directory spread across the whole cluster (§4.3).
    ///
    /// [`authority_of`]: Cluster::authority_of
    pub fn authority_for_op(&self, op: &Op) -> MdsId {
        if !self.hashed_dirs.is_empty() {
            let entry = match op {
                Op::Create { dir, name }
                | Op::Mkdir { dir, name }
                | Op::Unlink { dir, name }
                | Op::Rename { dir, name, .. }
                | Op::Link { dir, name, .. } => Some((*dir, name.as_str())),
                _ => None,
            };
            if let Some((dir, name)) = entry {
                if self.hashed_dirs.contains(&dir) {
                    return dentry_hash(dir, name, self.cfg.n_mds);
                }
            }
        }
        self.authority_of(op.target())
    }

    /// The served-ops time series of one node (inspection hook).
    pub fn report_served_series(&self, node: usize) -> Option<&TimeSeries> {
        self.served_series.get(node)
    }

    /// Ids replicated cluster-wide by traffic control (§4.4), sorted.
    /// Inspection hook.
    pub fn replicated_ids(&self) -> Vec<InodeId> {
        let mut v: Vec<InodeId> = self.replicated.iter().copied().collect();
        v.sort();
        v
    }

    /// Restarts measurement: clears series, latency, cache statistics and
    /// lifetime counters. Called after warm-up.
    pub fn reset_measurement(&mut self, now: SimTime) {
        self.measure_start = now;
        for s in self
            .served_series
            .iter_mut()
            .chain(self.forwarded_series.iter_mut())
            .chain(self.received_series.iter_mut())
        {
            *s = TimeSeries::new();
        }
        self.latency = Summary::new();
        for n in &mut self.nodes {
            n.cache.reset_stats();
            n.life = Default::default();
            n.win = Default::default();
        }
        // Provisioned-capacity accounting restarts with the measured
        // window (scale events during warmup are still counted as events,
        // but their node-time is not billed to the measurement).
        self.elastic.provisioned_node_us = 0;
        self.elastic.last_account = now;
        self.obs.reset();
    }

    /// Builds the final report.
    pub fn into_report(self, end: SimTime) -> SimReport {
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeSnapshot {
                hit_rate: n.cache.stats().hit_rate(),
                prefix_fraction: n.cache.prefix_fraction(),
                cache_len: n.cache.len(),
                served: n.life.served,
                forwarded: n.life.forwarded,
                received: n.life.received,
                disk_fetches: n.life.disk_fetches,
                replica_serves: n.life.replica_serves,
            })
            .collect();
        SimReport {
            strategy: self.cfg.strategy,
            n_mds: self.cfg.n_mds,
            measure_start: self.measure_start,
            measure_end: end,
            served_series: self.served_series,
            forwarded_series: self.forwarded_series,
            received_series: self.received_series,
            latency: self.latency,
            nodes,
            obs: self.obs.export(),
        }
    }

    // ================= event handlers ==================================

    fn on_issue(&mut self, now: SimTime, client: ClientId, queue: &mut EventQueue<SimEvent>) {
        let op = self.workload.next_op(&self.ns, client, now);
        let target = op.target();
        self.ops_issued += 1;
        self.obs.on_issue(now, client.0, crate::obs::op_kind_tag(op.kind()));
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_issue(client);
        }
        // §4.2 client leases: attribute reads under a live lease never
        // leave the client.
        if self.cfg.client_leases
            && matches!(op, Op::Stat(_) | Op::Readdir(_))
            && self.ns.is_alive(target)
            && self.clients.lease_valid(client, target, now)
        {
            let local = SimDuration::from_micros(20);
            self.latency.record(local.as_secs_f64());
            self.obs.on_lease_local(now, now + local, client.0);
            queue.schedule(now + local, SimEvent::Reply { client });
            return;
        }
        // Hotspot proxy tier (ROADMAP item 4): the client's proxy observes
        // every op; hot traffic is absorbed or relayed at the proxy, cold
        // traffic falls through to the pre-proxy path untouched.
        let op = if self.proxies.is_empty() {
            op
        } else {
            match self.proxy_route(now, client, op, queue) {
                Some(op) => op,
                None => return,
            }
        };
        // Subtree strategies: deepest-known-prefix routing (clients are
        // initially ignorant). Hashed strategies: the client computes the
        // placement itself and goes straight to the mapped server.
        let dest = if self.cfg.strategy.is_subtree() {
            // Possibly stale or dead — corrected by forwarding/timeout.
            self.clients.route(&self.ns, client, target)
        } else {
            // Hashed clients know the placement function, but *not* the
            // cluster's liveness map: they address the mapped server and
            // discover failures the same way subtree clients do — by
            // timing out and re-driving at a survivor.
            self.authority_for_op(&op)
        };
        let req = Request {
            client,
            uid: self.clients.uid(client),
            op,
            issued_at: now,
            hops: 0,
            retries: 0,
            via_proxy: false,
        };
        self.send_to_mds(now, dest, req, queue);
    }

    /// Routes one op through the client's proxy. Returns `Some(op)` when
    /// the target is cold (bypass: the caller continues on the pre-proxy
    /// path, which draws and emits exactly what it would without the
    /// tier), `None` when the proxy handled it — either absorbed outright
    /// (negative lookup / hot cached read / coalesced monotone write) or
    /// relayed to the authority with `via_proxy` set so the reply teaches
    /// the proxy's caches.
    fn proxy_route(
        &mut self,
        now: SimTime,
        client: ClientId,
        op: Op,
        queue: &mut EventQueue<SimEvent>,
    ) -> Option<Op> {
        let p = client.0 as usize % self.proxies.len();
        let target = op.target();
        let hot = self.proxies[p].observe(target, now.as_micros());
        let cpu = SimDuration::from_micros(self.cfg.proxy.proxy_cpu_us);
        // Absorbed answers cost client→proxy→client plus the proxy's CPU.
        let reply_at = now + self.cfg.costs.net_hop.saturating_mul(2) + cpu;

        // 1. Negative-lookup cache: a name known to be absent is answered
        //    at the proxy regardless of heat (the entry only exists
        //    because the item was hot enough to route here before).
        if let Op::Lookup { dir, name } = &op {
            if self.proxies[p].neg_lookup(*dir, name) {
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.on_proxy_neg_serve(now, client, *dir, name);
                }
                self.obs.on_proxy_neg_hit(p);
                self.finish_at_proxy(now, client, reply_at, queue);
                return None;
            }
        }

        if !hot {
            return Some(op);
        }

        // 2. Hot read the proxy has read through, with no unflushed
        //    deltas that could make the cached copy stale.
        if !op.is_update()
            && self.proxies[p].is_cached(target)
            && !self.proxies[p].has_pending(target)
            && self.ns.is_alive(target)
        {
            self.proxies[p].stats.read_absorbs += 1;
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.on_proxy_read_serve(now, client, target);
            }
            self.obs.on_proxy_read_absorb(p);
            self.finish_at_proxy(now, client, reply_at, queue);
            return None;
        }

        // 3. Coalesce monotone size/mtime bumps against a hot file: ack
        //    immediately, fold into one delta per item, push at the next
        //    heartbeat (or earlier, when a read forces a gather).
        if matches!(op, Op::Close(_) | Op::SetAttr(_))
            && self.ns.is_alive(target)
            && !self.ns.is_dir(target)
        {
            self.proxies[p].absorb_write(target);
            self.proxy_dirty.insert(target);
            self.obs.on_proxy_coalesce(p);
            self.finish_at_proxy(now, client, reply_at, queue);
            return None;
        }

        // 4. Hot but not absorbable: relay to the authority. One proxy
        //    hop replaces the client's own (possibly stale) routing.
        self.proxies[p].stats.forwarded += 1;
        self.proxy_forwarded += 1;
        self.obs.on_proxy_forward(p);
        let dest = self.live_authority(self.authority_for_op(&op));
        let req = Request {
            client,
            uid: self.clients.uid(client),
            op,
            issued_at: now,
            hops: 0,
            retries: 0,
            via_proxy: true,
        };
        self.send_to_mds(now + cpu, dest, req, queue);
        None
    }

    /// Completes an op absorbed at a proxy: latency sample, obs span,
    /// reply to the client. The cluster never saw the op.
    fn finish_at_proxy(
        &mut self,
        now: SimTime,
        client: ClientId,
        reply_at: SimTime,
        queue: &mut EventQueue<SimEvent>,
    ) {
        self.proxy_absorbed += 1;
        self.latency.record(reply_at.saturating_since(now).as_secs_f64());
        self.obs.on_proxy_serve(reply_at, client.0, now);
        queue.schedule(reply_at, SimEvent::Reply { client });
    }

    /// Puts a request on the wire towards `mds` at `at`, applying the
    /// active network fault window: a lost send is discovered by the
    /// client's timeout and re-driven through the retry policy; a
    /// duplicated send costs the receiver a discard.
    fn send_to_mds(
        &mut self,
        at: SimTime,
        mds: MdsId,
        req: Request,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if let Some(nf) = self.net_fault {
            if nf.loss_p > 0.0 && self.fault_rng.chance(nf.loss_p) {
                self.net_lost += 1;
                self.obs.on_net_loss();
                self.drive_retry(at + crate::failover::FAILOVER_TIMEOUT, req, queue);
                return;
            }
            if nf.dup_p > 0.0 && self.fault_rng.chance(nf.dup_p) {
                self.net_dup += 1;
                self.obs.on_net_dup();
                queue.schedule(at + self.cfg.costs.net_hop, SimEvent::NetDup { mds });
            }
        }
        queue.schedule(at + self.cfg.costs.net_hop, SimEvent::Arrive { mds, req });
    }

    /// Client-side recovery after a failed delivery (dead-node timeout or
    /// lost message), detected at `detect_at`: capped retries with
    /// exponential backoff and seeded jitter, then a terminal gave-up.
    fn drive_retry(
        &mut self,
        detect_at: SimTime,
        mut req: Request,
        queue: &mut EventQueue<SimEvent>,
    ) {
        req.retries = req.retries.saturating_add(1);
        if req.retries > self.cfg.retry.max_retries {
            // Terminal outcome: the op is abandoned. No latency sample is
            // recorded (the op never completed) and the client moves on.
            self.gave_up += 1;
            self.obs.on_gave_up(detect_at, req.client.0);
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_gave_up(detect_at, req.client, req.retries, self.cfg.retry.max_retries);
            }
            queue.schedule(detect_at, SimEvent::Reply { client: req.client });
            return;
        }
        self.retries_total += 1;
        self.obs.on_retry(detect_at, req.client.0);
        let delay = self.cfg.retry.delay(req.retries, &mut self.fault_rng);
        let heir = self.live_authority(self.authority_for_op(&req.op));
        self.send_to_mds(detect_at + delay, heir, req, queue);
    }

    fn on_arrive(
        &mut self,
        now: SimTime,
        mds: MdsId,
        req: Request,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_arrive(now, req.client, req.hops, req.retries);
        }
        // A dead host never answers: the request times out client-side
        // and is re-driven at the live authority through the retry
        // policy. Hops are preserved — a request that keeps landing on
        // dying nodes must not evade the forwarding bound.
        if !self.alive[mds.index()] {
            self.failover_timeouts += 1;
            self.obs.on_dead_timeout(now, req.client.0, mds);
            self.drive_retry(now + crate::failover::FAILOVER_TIMEOUT, req, queue);
            return;
        }

        let i = mds.index();
        self.nodes[i].win.received += 1;
        self.nodes[i].life.received += 1;
        self.obs.on_arrive(now, req.client.0, mds);

        let target = req.op.target();
        if !self.ns.is_alive(target) {
            // Raced with an unlink: cheap ESTALE reply.
            self.obs.on_estale(now, req.client.0, mds);
            let done = self.nodes[i].occupy(now, self.cfg.costs.cpu_forward);
            self.finish(now, mds, req, done, queue);
            return;
        }

        let auth = self.live_authority(self.authority_for_op(&req.op));
        let replica_read = !req.op.is_update()
            && self.replicated.contains(&target)
            && self.cfg.strategy.is_subtree();
        // §4.2 shared writes: size/mtime updates to a replicated file are
        // absorbed wherever they land and merged at the authority later.
        let shared_write = self.is_shared_write(&req.op);
        if mds != auth && !replica_read && !shared_write && req.hops < 3 {
            // Forward to the authority (§4.2: "it will ordinarily forward
            // the request to the authority").
            self.nodes[i].win.forwarded += 1;
            self.nodes[i].life.forwarded += 1;
            self.obs.on_forward(now, req.client.0, mds);
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_forward(now, req.client);
            }
            let done = self.nodes[i].occupy(now, self.cfg.costs.cpu_forward);
            let mut fwd = req;
            fwd.hops += 1;
            self.send_to_mds(done, auth, fwd, queue);
            return;
        }

        if mds != auth {
            // Serving without authority: a replica read or an absorbed
            // shared write.
            self.obs.on_replica_serve(mds);
        }
        let reply_at = self.serve(now, mds, &req);
        self.finish(now, mds, req, reply_at, queue);
    }

    /// Serves a request at `mds` (which is the authority, a replica
    /// holder, or a forwarding dead-end standing in); returns the time the
    /// reply leaves the node.
    fn serve(&mut self, now: SimTime, mds: MdsId, req: &Request) -> SimTime {
        let i = mds.index();
        let target = req.op.target();

        // CPU component: requests queue on the node's serial CPU.
        let cpu_done = self.nodes[i].occupy(now, self.cfg.costs.cpu_per_op);
        // IO component, overlapped with other requests' CPU time.
        let mut io_done = now;

        // ---- prefix handling ------------------------------------------
        if self.cfg.strategy.needs_path_traversal() {
            let tdone = self.traverse(now, mds, target);
            self.obs.on_traverse(tdone, req.client.0, mds);
            io_done = io_done.max(tdone);
            // POSIX permission verification over the (now cached) prefix;
            // the outcome only shapes the reply, not the cost.
            let _ = self.ns.check_access(target, req.uid);
        } else if let Some(lh) = self.partition.as_lazy_mut() {
            // Lazy Hybrid: no traversal, but pay one network round trip
            // per pending lazy update on this item (§3.1.3).
            let pending = lh.apply_pending(&self.ns, target);
            let trips = pending.total();
            if trips > 0 {
                let rtt = self.cfg.costs.net_hop.saturating_mul(2);
                io_done = io_done.max(now + rtt.saturating_mul(trips));
            }
        }

        // ---- target access --------------------------------------------
        // A read of an item with outstanding shared-write deltas triggers
        // the §4.2 callback: gather the latest values first (one round
        // trip).
        if self.cfg.shared_writes && !req.op.is_update() && self.dirty_shared.contains(&target) {
            let contributors = self.gather_shared_writes(target);
            if contributors > 0 {
                io_done = io_done.max(now + self.cfg.costs.net_hop.saturating_mul(2));
            }
        }
        // Same callback for coalesced proxy deltas: a read through the
        // cluster must never observe a counter older than one a proxy
        // already acked.
        if !self.proxies.is_empty() && !req.op.is_update() && self.proxy_dirty.contains(&target) {
            let contributors = self.proxy_gather(now, target);
            if contributors > 0 {
                io_done = io_done.max(now + self.cfg.costs.net_hop.saturating_mul(2));
            }
        }
        let misses_before = self.nodes[i].win.misses;
        io_done = io_done.max(self.access_target(now, mds, &req.op));
        self.obs.on_target_probe(now, req.client.0, mds, self.nodes[i].win.misses == misses_before);

        // ---- mutation + journal commit ---------------------------------
        if req.op.is_update() {
            io_done = io_done.max(self.apply_update(now, mds, req));
        }

        // ---- popularity & traffic control -------------------------------
        let pop = self.nodes[i].popularity.record(now, target);
        let write_pop = if req.op.is_update() {
            self.nodes[i].update_popularity.record(now, target)
        } else {
            self.nodes[i].update_popularity.value(now, target)
        };
        if self.cfg.traffic_control
            && self.cfg.strategy.is_subtree()
            && pop > self.cfg.replication_threshold
            && !self.replicated.contains(&target)
            && !req.op.is_update()
            // Read-mostly only: replicating write-hot metadata would send
            // client updates to random nodes just to be forwarded back —
            // unless shared writes let replicas absorb them (files only).
            && (write_pop < 0.1 * pop
                || (self.cfg.shared_writes && !self.ns.is_dir(target)))
        {
            self.replicate_everywhere(now, target);
        }

        // ---- dynamic directory hashing ----------------------------------
        if self.cfg.dir_hash_threshold > 0 && self.cfg.strategy == StrategyKind::DynamicSubtree {
            self.update_dir_hashing(target);
        }

        // ---- balancer accounting ----------------------------------------
        self.hb_served[i] += 1;
        if let Some(sub) = self.partition.as_subtree() {
            let root = sub.subtree_root_of(&self.ns, target);
            *self.subtree_ops.entry(root).or_insert(0) += 1;
        }

        *self.op_counts.entry(req.op.kind()).or_insert(0) += 1;
        self.nodes[i].win.served += 1;
        self.nodes[i].life.served += 1;
        self.obs.on_served(mds);
        cpu_done.max(io_done)
    }

    /// Whether this op qualifies for replica-absorbed shared writing:
    /// monotone size/mtime updates to a replicated, non-directory item.
    fn is_shared_write(&self, op: &Op) -> bool {
        self.cfg.shared_writes
            && self.cfg.strategy.is_subtree()
            && matches!(op, Op::Close(_) | Op::SetAttr(_))
            && self.replicated.contains(&op.target())
            && !self.ns.is_dir(op.target())
    }

    /// Merges all outstanding replica deltas for `id` into the shared
    /// namespace (authority max-merge). Returns how many replicas
    /// contributed.
    pub(crate) fn gather_shared_writes(&mut self, id: InodeId) -> usize {
        if !self.dirty_shared.remove(&id) {
            return 0;
        }
        let mut adds = 0u64;
        let mut mtime = 0u64;
        let mut contributors = 0;
        for node in &mut self.nodes {
            if let Some((a, m)) = node.write_deltas.remove(&id) {
                adds += a;
                mtime = mtime.max(m);
                contributors += 1;
            }
        }
        let _ = self.ns.update_inode(id, |ino| {
            ino.size = ino.size.saturating_add(adds);
            ino.mtime_us = ino.mtime_us.max(mtime);
        });
        self.shared_write_flushes += contributors as u64;
        self.obs.on_shared_flush(contributors as u64);
        contributors
    }

    /// Merges all outstanding coalesced proxy deltas for `id` into the
    /// namespace (one monotone size/mtime bump per absorbed write).
    /// Returns how many proxies contributed.
    pub(crate) fn proxy_gather(&mut self, now: SimTime, id: InodeId) -> usize {
        if !self.proxy_dirty.remove(&id) {
            return 0;
        }
        let mut bumps = 0u64;
        let mut contributors = 0usize;
        for pi in 0..self.proxies.len() {
            if let Some(d) = self.proxies[pi].take_pending(id) {
                bumps += d;
                contributors += 1;
                self.obs.on_proxy_flush(pi, 1);
            }
        }
        if bumps > 0 {
            let _ = self.ns.update_inode(id, |ino| {
                ino.size = ino.size.saturating_add(4096 * bumps);
                ino.mtime_us = ino.mtime_us.max(now.as_micros());
            });
        }
        self.proxy_flushes += contributors as u64;
        contributors
    }

    /// Walks the prefix directories of `target` in `mds`'s cache, loading
    /// anything missing. Returns the IO completion time.
    fn traverse(&mut self, now: SimTime, mds: MdsId, target: InodeId) -> SimTime {
        // Reuse the cluster-owned chain buffer: after warmup this walk
        // runs for every served op and must not allocate.
        let mut chain = std::mem::take(&mut self.traverse_scratch);
        self.ns.ancestors_into(target, &mut chain);
        let i = mds.index();
        let mut io_done = now;
        for &dir in &chain {
            if self.nodes[i].cache.lookup(dir, false) {
                continue;
            }
            self.nodes[i].win.misses += 1;
            self.hb_misses[i] += 1;
            self.obs.on_prefix_miss(mds);
            let dir_auth = self.authority_of(dir);
            if dir_auth == mds {
                // Local miss: fetch from tier 2.
                self.nodes[i].life.disk_fetches += 1;
                self.obs.on_disk_fetch(mds);
                let res = self.store.fetch_inode(now, &self.ns, dir);
                io_done = io_done.max(res.complete_at);
                self.install_loaded(mds, &res.loaded, dir, InsertKind::Prefix);
            } else {
                // Remote prefix: replicate from the peer authority — one
                // round trip, plus the peer's disk if it misses too. This
                // is the overhead that bloats hashed strategies' caches
                // (§5.3.1).
                let rtt = self.cfg.costs.net_hop.saturating_mul(2);
                let mut remote_done = now + rtt;
                let j = dir_auth.index();
                self.obs.on_remote_prefix(mds);
                if !self.nodes[j].cache.peek(dir) {
                    self.nodes[j].life.disk_fetches += 1;
                    self.obs.on_disk_fetch(dir_auth);
                    let res = self.store.fetch_inode(now, &self.ns, dir);
                    remote_done = remote_done.max(res.complete_at + rtt);
                    self.install_loaded(dir_auth, &res.loaded, dir, InsertKind::Prefix);
                }
                io_done = io_done.max(remote_done);
                let parent = self.cached_parent(mds, dir);
                self.nodes[i].cache.insert(dir, parent, InsertKind::Prefix);
            }
        }
        self.traverse_scratch = chain;
        io_done
    }

    /// Ensures the op's target metadata is in `mds`'s cache; returns IO
    /// completion time.
    fn access_target(&mut self, now: SimTime, mds: MdsId, op: &Op) -> SimTime {
        let i = mds.index();
        let target = op.target();
        let mut io_done = now;

        match op {
            Op::Readdir(dir) => {
                // A readdir touches the directory *contents* object. Under
                // the embedded layout it also loads every child inode; the
                // inode-table layout returns names only.
                self.nodes[i].cache.lookup(target, true);
                // An entry-hashed directory's listing must be gathered
                // from every node ("individual MDS nodes can act
                // authoritatively … for all directory operations except
                // readdir", §4.3): one scatter/gather round trip plus a
                // small cost at each peer.
                if self.hashed_dirs.contains(dir) {
                    let rtt = self.cfg.costs.net_hop.saturating_mul(2);
                    io_done = io_done.max(now + rtt);
                    let msg = self.cfg.costs.cpu_forward;
                    for j in 0..self.nodes.len() {
                        if j != i && self.alive[j] {
                            self.nodes[j].occupy(now, msg);
                        }
                    }
                }
                let all_children_cached = self
                    .ns
                    .children(*dir)
                    .map(|mut it| it.all(|(_, c)| self.nodes[i].cache.peek(c)))
                    .unwrap_or(true);
                let embedded = self.store.layout() == StoreLayout::EmbeddedDirectories;
                if !all_children_cached && embedded {
                    self.nodes[i].win.misses += 1;
                    self.hb_misses[i] += 1;
                    self.nodes[i].life.disk_fetches += 1;
                    self.obs.on_disk_fetch(mds);
                    let res = self.store.fetch_dir(now, &self.ns, *dir);
                    io_done = io_done.max(res.complete_at);
                    self.install_loaded(mds, &res.loaded, InodeId(u64::MAX), InsertKind::Prefetch);
                } else if !embedded {
                    // Name-list read; per-inode stats pay their own way.
                    self.nodes[i].win.misses += 1;
                    self.hb_misses[i] += 1;
                    self.nodes[i].life.disk_fetches += 1;
                    self.obs.on_disk_fetch(mds);
                    let res = self.store.fetch_dir(now, &self.ns, *dir);
                    io_done = io_done.max(res.complete_at);
                }
            }
            _ => {
                if !self.nodes[i].cache.lookup(target, true) {
                    self.nodes[i].win.misses += 1;
                    self.hb_misses[i] += 1;
                    self.nodes[i].life.disk_fetches += 1;
                    self.obs.on_disk_fetch(mds);
                    // Entries of a hashed directory live in per-entry
                    // storage fragments; everything else follows the
                    // configured layout.
                    let fragmented = self
                        .ns
                        .parent(target)
                        .ok()
                        .flatten()
                        .map(|p| self.hashed_dirs.contains(&p))
                        .unwrap_or(false);
                    let res = if fragmented {
                        self.store.fetch_fragment(now, target)
                    } else {
                        self.store.fetch_inode(now, &self.ns, target)
                    };
                    io_done = io_done.max(res.complete_at);
                    self.install_loaded(mds, &res.loaded, target, InsertKind::Target);
                }
            }
        }
        io_done
    }

    /// Inserts fetched items into `mds`'s cache: `primary` with
    /// `primary_kind`, everything else riding along as prefetch (probation
    /// insertion, §4.5).
    fn install_loaded(
        &mut self,
        mds: MdsId,
        loaded: &[InodeId],
        primary: InodeId,
        primary_kind: InsertKind,
    ) {
        let i = mds.index();
        for &id in loaded {
            let parent = self.cached_parent(mds, id);
            let kind = if id == primary { primary_kind } else { InsertKind::Prefetch };
            self.nodes[i].cache.insert(id, parent, kind);
        }
    }

    /// The namespace parent of `id` if (and only if) it is cached at
    /// `mds` — cache tree-linking must never point at uncached parents.
    fn cached_parent(&self, mds: MdsId, id: InodeId) -> Option<InodeId> {
        self.ns.parent(id).ok().flatten().filter(|p| self.nodes[mds.index()].cache.peek(*p))
    }

    /// Applies a mutation to the namespace, journals it, and handles
    /// strategy-specific side effects. Returns the commit completion time.
    fn apply_update(&mut self, now: SimTime, mds: MdsId, req: &Request) -> SimTime {
        let i = mds.index();
        let mut touched: Vec<InodeId> = Vec::with_capacity(2);
        // DST bookkeeping (inert without a probe): the primary inode the
        // mutation touched, and whether it was replica-absorbed.
        let mut primary: Option<InodeId> = None;
        let mut shared_absorbed = false;

        match &req.op {
            Op::Close(f) | Op::SetAttr(f) => {
                if self.is_shared_write(&req.op) {
                    // Absorb at this replica; the authority merges later
                    // (§4.2: "replicas serving concurrent writers can
                    // periodically send their most recent value").
                    let e = self.nodes[i].write_deltas.entry(*f).or_insert((0, 0));
                    if matches!(req.op, Op::Close(_)) {
                        e.0 += 4096;
                    }
                    e.1 = e.1.max(now.as_micros());
                    self.dirty_shared.insert(*f);
                    self.shared_write_absorbed += 1;
                    self.obs.on_shared_absorb(mds);
                    touched.push(*f);
                    primary = Some(*f);
                    shared_absorbed = true;
                } else if self
                    .ns
                    .update_inode(*f, |ino| {
                        ino.mtime_us = now.as_micros();
                        if matches!(req.op, Op::Close(_)) {
                            ino.size = ino.size.saturating_add(4096);
                        }
                    })
                    .is_ok()
                {
                    touched.push(*f);
                    primary = Some(*f);
                }
            }
            Op::Create { dir, name } => {
                let perm = Permissions::shared(req.uid);
                if let Ok(id) = self.ns.create_file(*dir, name, perm) {
                    let parent = self.cached_parent(mds, id);
                    self.nodes[i].cache.insert(id, parent, InsertKind::Target);
                    touched.push(id);
                    touched.push(*dir);
                    primary = Some(id);
                }
            }
            Op::Mkdir { dir, name } => {
                let perm = Permissions::directory(req.uid);
                if let Ok(id) = self.ns.mkdir(*dir, name, perm) {
                    let parent = self.cached_parent(mds, id);
                    self.nodes[i].cache.insert(id, parent, InsertKind::Target);
                    touched.push(id);
                    touched.push(*dir);
                    primary = Some(id);
                }
            }
            Op::Unlink { dir, name } => {
                if let Ok(id) = self.ns.unlink(*dir, name) {
                    primary = Some(id);
                    if self.ns.is_alive(id) {
                        // A hard link was dropped; if only one link
                        // remains the inode no longer needs anchoring.
                        if self.ns.inode(id).map(|i| i.nlink).unwrap_or(0) <= 1
                            && self.anchors.contains(id)
                        {
                            self.anchors.unanchor(id);
                        } else if self.anchors.contains(id) {
                            // The removed dentry may have been the primary:
                            // the namespace promotes a surviving link, so
                            // the inode's parent can change and the anchor
                            // chain must be retargeted (no-op otherwise).
                            self.anchors.on_rename(&self.ns, id);
                        }
                    } else {
                        if self.anchors.contains(id) {
                            self.anchors.unanchor(id);
                        }
                        for n in &mut self.nodes {
                            let _ = n.cache.remove(id);
                            n.popularity.forget(id);
                        }
                        self.replicated.remove(&id);
                    }
                    touched.push(*dir);
                }
            }
            Op::Link { target, dir, name } if self.ns.link(*target, *dir, name).is_ok() => {
                // First extra link anchors the inode so it stays
                // locatable without a path (§4.5).
                if !self.anchors.contains(*target) {
                    self.anchors.anchor(&self.ns, *target);
                }
                touched.push(*target);
                touched.push(*dir);
                primary = Some(*target);
            }
            Op::Rename { dir, name, new_name } => {
                if let Ok(id) = self.ns.rename(*dir, name, *dir, new_name) {
                    if self.ns.is_dir(id) {
                        self.anchors.on_rename(&self.ns, id);
                        if let Some(lh) = self.partition.as_lazy_mut() {
                            lh.on_dir_move(id);
                        }
                        self.invalidate_replicas(id);
                    }
                    touched.push(*dir);
                    touched.push(id);
                    primary = Some(id);
                }
            }
            Op::Chmod { target, mode } if self.ns.chmod(*target, *mode).is_ok() => {
                if self.ns.is_dir(*target) {
                    if let Some(lh) = self.partition.as_lazy_mut() {
                        lh.on_dir_permission_change(*target);
                    }
                    self.invalidate_replicas(*target);
                }
                touched.push(*target);
                primary = Some(*target);
            }
            _ => {}
        }

        // Synchronous proxy invalidation: a committed mutation that can
        // change a name binding or an item's attributes retracts every
        // proxy's matching cache entries before the reply leaves, so a
        // proxy can never serve state older than an acked mutation.
        if !self.proxies.is_empty() && !touched.is_empty() {
            self.proxy_invalidate(&req.op, primary);
        }

        if let Some(p) = self.probe.as_deref_mut() {
            p.on_applied(
                now,
                mds,
                req.client,
                req.uid,
                &req.op,
                !touched.is_empty(),
                primary,
                shared_absorbed,
            );
        }
        if touched.is_empty() {
            return now; // failed op: error reply, nothing committed
        }

        // Tier-1 commit: journal append on this node's journal device; the
        // reply waits for it ("all metadata transactions must be quickly
        // written to stable storage", §4.6).
        let mut writebacks = Vec::new();
        for &id in &touched {
            writebacks.extend(self.nodes[i].journal.append(id));
        }
        let jdone = self.nodes[i].journal_disk.access(now, dynmds_storage::AccessKind::Write);
        self.obs.on_journal_commit(jdone, req.client.0, mds, writebacks.len() as u64);
        // Retired entries stream to tier 2 asynchronously (don't block the
        // reply, do consume pool throughput).
        for wb in writebacks {
            self.store.writeback(now, &self.ns, wb);
        }
        jdone
    }

    /// Retracts proxy cache entries made stale by a committed mutation.
    /// Runs on the authority's apply path (before the reply), mirroring
    /// the §4.2 replica callbacks: binding changes kill the directory's
    /// negative entries and cached readdir state, attribute changes kill
    /// the item's cached copy, and a dead inode is purged everywhere.
    fn proxy_invalidate(&mut self, op: &Op, primary: Option<InodeId>) {
        match op {
            Op::Create { dir, name } | Op::Mkdir { dir, name } | Op::Link { dir, name, .. } => {
                for p in &mut self.proxies {
                    p.invalidate_name(*dir, name);
                }
            }
            Op::Rename { dir, name, new_name } => {
                for p in &mut self.proxies {
                    p.invalidate_name(*dir, new_name);
                    p.invalidate_name(*dir, name);
                }
            }
            Op::Unlink { dir, .. } => {
                let dead = primary.filter(|&id| !self.ns.is_alive(id));
                for p in &mut self.proxies {
                    p.dir_mutated(*dir);
                    if let Some(id) = dead {
                        p.forget_item(id);
                    }
                }
            }
            Op::Close(f) | Op::SetAttr(f) => {
                for p in &mut self.proxies {
                    p.invalidate_item(*f);
                }
            }
            Op::Chmod { target, .. } => {
                for p in &mut self.proxies {
                    p.invalidate_item(*target);
                }
            }
            _ => {}
        }
    }

    /// Coherence callbacks for an updated item that other nodes replicate:
    /// the authority notifies every replica (§4.2). Counted; the replica
    /// entries stay cached (callback-updated, not discarded).
    fn invalidate_replicas(&mut self, id: InodeId) {
        for n in &mut self.nodes {
            if n.cache.peek(id) {
                n.life.invalidations += 1;
            }
        }
    }

    /// Grows/shrinks the set of entry-hashed directories (§4.3: "as
    /// directories grow or become popular it may become appropriate to
    /// hash them…").
    fn update_dir_hashing(&mut self, target: InodeId) {
        let dir = if self.ns.is_dir(target) {
            target
        } else {
            match self.ns.parent(target) {
                Ok(Some(p)) => p,
                _ => return,
            }
        };
        let count = self.ns.child_count(dir).unwrap_or(0);
        let threshold = self.cfg.dir_hash_threshold;
        if count > threshold {
            self.hashed_dirs.insert(dir);
        } else if count < threshold / 2 {
            self.hashed_dirs.remove(&dir);
        }
    }

    /// Completes a request: schedules the reply and teaches the client
    /// where this part of the hierarchy lives.
    fn finish(
        &mut self,
        _now: SimTime,
        mds: MdsId,
        req: Request,
        reply_at: SimTime,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let target = req.op.target();
        // A relayed request's reply teaches the proxy's caches: a lookup
        // that found nothing seeds the negative cache, any other read
        // seeds the read-through cache.
        if req.via_proxy && !self.proxies.is_empty() {
            let p = req.client.0 as usize % self.proxies.len();
            match &req.op {
                Op::Lookup { dir, name } if self.ns.lookup(*dir, name).is_err() => {
                    self.proxies[p].note_negative(*dir, name);
                }
                // A lookup hit teaches nothing: only the authority's
                // "no such entry" verdict is cacheable at the proxy.
                Op::Lookup { .. } => {}
                op if !op.is_update() && self.ns.is_alive(target) => {
                    self.proxies[p].note_cached(target);
                }
                _ => {}
            }
        }
        if self.cfg.strategy.is_subtree() {
            if self.replicated.contains(&target) {
                self.clients.learn(req.client, target, KnownLocation::Everywhere);
            } else if self.ns.is_alive(target) {
                if let Some(sub) = self.partition.as_subtree() {
                    let root = sub.subtree_root_of(&self.ns, target);
                    self.clients.learn(
                        req.client,
                        root,
                        KnownLocation::Single(self.authority_of(target)),
                    );
                }
            }
            let _ = mds;
        }
        let mut arrive = reply_at + self.cfg.costs.net_hop;
        if let Some(nf) = self.net_fault {
            if nf.loss_p > 0.0 && self.fault_rng.chance(nf.loss_p) {
                // Lost reply: the client's retransmission hits the
                // server's reply cache — modelled as a delayed delivery,
                // so the extra wait lands in the latency sample without
                // re-applying the operation.
                self.net_lost += 1;
                self.obs.on_net_loss();
                arrive += crate::failover::FAILOVER_TIMEOUT;
            }
            if nf.dup_p > 0.0 && self.fault_rng.chance(nf.dup_p) {
                // Duplicate reply: discarded by the client; counted only.
                self.net_dup += 1;
                self.obs.on_net_dup();
            }
        }
        // Attribute-read replies piggyback a lease (§4.2).
        if self.cfg.client_leases && !req.op.is_update() && self.ns.is_alive(target) {
            self.clients.grant_lease(req.client, target, arrive + self.cfg.lease_ttl);
        }
        self.latency.record(arrive.saturating_since(req.issued_at).as_secs_f64());
        self.obs.on_reply(arrive, req.client.0, mds, req.issued_at, req.hops);
        queue.schedule(arrive, SimEvent::Reply { client: req.client });
    }

    /// Applies (or clears) a disk degradation window on the given scope.
    /// Seeds derive from the run seed so replays are identical.
    fn set_disk_fault(&mut self, scope: DiskScope, fault: Option<DiskFault>) {
        let base = self.cfg.seed ^ 0xD15C;
        if matches!(scope, DiskScope::Osd | DiskScope::All) {
            self.store.set_pool_fault(fault, base);
        }
        if matches!(scope, DiskScope::Journal | DiskScope::All) {
            for (i, n) in self.nodes.iter_mut().enumerate() {
                n.journal_disk.set_fault(fault, base ^ ((i as u64 + 1) << 32));
            }
        }
    }

    fn on_sample(&mut self, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let track = self.obs.enabled();
        let mut loads: Vec<u64> = Vec::new();
        for (i, n) in self.nodes.iter_mut().enumerate() {
            let w = n.take_window();
            self.served_series[i].push(now, w.served as f64);
            self.forwarded_series[i].push(now, w.forwarded as f64);
            self.received_series[i].push(now, w.received as f64);
            if track {
                loads.push(w.served);
            }
        }
        if track {
            self.push_obs_snapshot(now, loads);
        }
        queue.schedule(now + self.cfg.sample_every, SimEvent::Sample);
    }

    /// Gathers one per-MDS snapshot row (field order:
    /// [`crate::obs::SNAPSHOT_FIELDS`]) — only called with obs enabled.
    fn push_obs_snapshot(&mut self, now: SimTime, loads: Vec<u64>) {
        let n_mds = self.nodes.len();
        let mut row = Vec::with_capacity(crate::obs::SNAPSHOT_FIELDS.len() * n_mds);
        row.extend_from_slice(&loads);
        for n in &self.nodes {
            row.push(n.cache.len() as u64);
        }
        for n in &self.nodes {
            row.push(n.cache.prefix_count() as u64);
        }
        for n in &self.nodes {
            row.push((n.cache.len() - n.cache.prefix_count()) as u64);
        }
        for n in &self.nodes {
            row.push(n.journal.len() as u64);
        }
        let deleg_base = row.len();
        row.resize(deleg_base + n_mds, 0);
        if let Some(sub) = self.partition.as_subtree() {
            for (_, m) in sub.delegations() {
                row[deleg_base + m.index()] += 1;
            }
        }
        for &alive in &self.alive {
            row.push(alive as u64);
        }
        self.obs.snapshot(now, row);
    }
}

impl Handler<SimEvent> for Cluster {
    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        match event {
            SimEvent::Issue(client) => self.on_issue(now, client, queue),
            SimEvent::Arrive { mds, req } => self.on_arrive(now, mds, req, queue),
            SimEvent::Reply { client } => {
                self.ops_completed += 1;
                // think_scale is exactly 1.0 for every stationary workload,
                // and `mean * 1.0 == mean` bit-for-bit, so only diurnal /
                // bursty generators perturb the draw.
                let mean =
                    self.cfg.costs.think_mean.as_micros() as f64 * self.workload.think_scale(now);
                let think_us = self.rng.exponential(mean) as u64;
                queue.schedule(now + SimDuration::from_micros(think_us), SimEvent::Issue(client));
            }
            SimEvent::Heartbeat => {
                self.heartbeat(now);
                queue.schedule(now + self.cfg.heartbeat, SimEvent::Heartbeat);
            }
            SimEvent::Sample => self.on_sample(now, queue),
            SimEvent::Fail(mds) => self.try_fail_node(now, mds),
            SimEvent::Recover(mds) => self.recover_node(now, mds),
            SimEvent::SetDiskFault { scope, fault } => self.set_disk_fault(scope, fault),
            SimEvent::SetNetFault(spec) => self.net_fault = spec,
            SimEvent::NetDup { mds } => {
                // A duplicated delivery: the server spends a discard's
                // worth of CPU recognizing the replayed request.
                if self.alive[mds.index()] {
                    self.nodes[mds.index()].occupy(now, self.cfg.costs.cpu_forward);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use dynmds_event::{EventQueue, Handler, SimTime};
    use dynmds_namespace::{ClientId, MdsId};
    use dynmds_partition::StrategyKind;
    use dynmds_workload::Op;

    use crate::request::{Request, SimEvent};
    use crate::testutil::tiny_cluster;

    fn request(op: Op) -> Request {
        Request {
            client: ClientId(0),
            uid: 1,
            op,
            issued_at: SimTime::from_millis(1),
            hops: 0,
            retries: 0,
            via_proxy: false,
        }
    }

    #[test]
    fn wrong_node_forwards_to_authority() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let auth = c.authority_of(file);
        let wrong = MdsId((auth.0 + 1) % 4);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive { mds: wrong, req: request(Op::Stat(file)) },
            &mut q,
        );
        assert_eq!(c.nodes[wrong.index()].life.forwarded, 1);
        assert_eq!(c.nodes[wrong.index()].life.served, 0);
        // The forwarded copy is queued for the authority.
        let ev = q.pop().expect("forwarded event");
        match ev.event {
            SimEvent::Arrive { mds, req } => {
                assert_eq!(mds, auth);
                assert_eq!(req.hops, 1);
            }
            other => panic!("expected Arrive, got {other:?}"),
        }
    }

    #[test]
    fn authority_serves_and_replies() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let auth = c.authority_of(file);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive { mds: auth, req: request(Op::Stat(file)) },
            &mut q,
        );
        assert_eq!(c.nodes[auth.index()].life.served, 1);
        assert!(c.nodes[auth.index()].cache.peek(file), "target cached after serve");
        // Prefix chain cached and pinned.
        for anc in c.ns.ancestors(file) {
            assert!(c.nodes[auth.index()].cache.peek(anc), "prefix {anc} cached");
        }
        // Reply scheduled; the client learned a route for the subtree.
        let ev = q.pop().expect("reply event");
        assert!(matches!(ev.event, SimEvent::Reply { client } if client == ClientId(0)));
        let sub = c.partition.as_subtree().unwrap();
        let root = sub.subtree_root_of(&c.ns, file);
        assert!(c.clients.knows(ClientId(0), root), "route learned from the reply");
    }

    #[test]
    fn stale_target_gets_cheap_reply() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let parent = c.ns.parent(file).unwrap().unwrap();
        let name = c.ns.name(file).unwrap().to_string();
        c.ns.unlink(parent, &name).unwrap();
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive { mds: MdsId(0), req: request(Op::Stat(file)) },
            &mut q,
        );
        assert_eq!(c.nodes[0].life.served, 0, "ESTALE is not a served op");
        assert_eq!(c.nodes[0].life.forwarded, 0);
        assert_eq!(c.nodes[0].life.received, 1);
        assert!(matches!(q.pop().unwrap().event, SimEvent::Reply { .. }));
    }

    #[test]
    fn create_lands_in_namespace_and_journal() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let dir = c.ns.resolve("/home/user0000").unwrap();
        let auth = c.authority_of(dir);
        let before = c.ns.total_items();
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive {
                mds: auth,
                req: request(Op::Create { dir, name: "newfile".into() }),
            },
            &mut q,
        );
        assert_eq!(c.ns.total_items(), before + 1);
        let id = c.ns.lookup(dir, "newfile").unwrap();
        assert!(c.nodes[auth.index()].cache.peek(id), "new inode cached at creator");
        assert!(c.nodes[auth.index()].journal.contains(id), "journaled");
    }

    #[test]
    fn lazy_hybrid_serve_applies_pending_updates() {
        let mut c = tiny_cluster(StrategyKind::LazyHybrid);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let parent = c.ns.parent(file).unwrap().unwrap();
        c.partition.as_lazy_mut().unwrap().on_dir_permission_change(parent);
        let auth = c.authority_of(file);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive { mds: auth, req: request(Op::Stat(file)) },
            &mut q,
        );
        let lh = c.partition.as_lazy().unwrap();
        assert_eq!(lh.lifetime_stats().permission_updates, 1, "pending ACL applied on access");
        assert_eq!(lh.pending_for(&c.ns, file).total(), 0);
    }

    #[test]
    fn dead_node_retry_preserves_forwarding_hops() {
        // Regression: the re-driven request used to restart with hops = 0,
        // letting a request bounce through dead nodes forever without
        // tripping the forwarding bound.
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let dead = MdsId((c.authority_of(file).0 + 1) % 4);
        c.fail_node(SimTime::from_millis(1), dead);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        let mut req = request(Op::Stat(file));
        req.hops = 2;
        c.handle(SimTime::from_millis(1), SimEvent::Arrive { mds: dead, req }, &mut q);
        assert_eq!(c.failover_timeouts, 1);
        assert_eq!(c.retries_total, 1);
        let ev = q.pop().expect("re-driven request queued");
        match ev.event {
            SimEvent::Arrive { mds, req } => {
                assert!(c.is_alive_node(mds), "retry targets a live node");
                assert_eq!(req.hops, 2, "forwarding hops must survive the retry");
                assert_eq!(req.retries, 1, "retry count advances instead");
            }
            other => panic!("expected Arrive, got {other:?}"),
        }
    }

    #[test]
    fn retry_budget_exhaustion_gives_up_with_a_bare_reply() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.cfg.retry.max_retries = 0;
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let dead = MdsId((c.authority_of(file).0 + 1) % 4);
        c.fail_node(SimTime::from_millis(1), dead);
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        c.handle(
            SimTime::from_millis(1),
            SimEvent::Arrive { mds: dead, req: request(Op::Stat(file)) },
            &mut q,
        );
        assert_eq!(c.gave_up, 1);
        assert_eq!(c.retries_total, 0, "an abandoned op is not a retry");
        let ev = q.pop().expect("terminal reply queued");
        assert!(
            matches!(ev.event, SimEvent::Reply { client } if client == ClientId(0)),
            "exhausted budget must release the client, got {:?}",
            ev.event
        );
        assert!(q.pop().is_none(), "nothing else scheduled for the abandoned op");
    }
}

//! Heartbeat load balancing (§4.3, §5.1).
//!
//! "Periodically the MDS nodes exchange heartbeat messages that include a
//! description of their current load level. At that point busy nodes can
//! identify portions of the hierarchy that are appropriately popular and
//! initiate a double-commit transaction to transfer authority to non-busy
//! nodes."
//!
//! The load metric is deliberately the paper's *primitive* one — "a
//! weighted combination of node throughput and cache misses" — because
//! §5.3.2's observation (balancing is not always a win for total
//! throughput) is part of what the experiments reproduce. A busy node
//! sheds subtrees to the least-loaded node, re-delegating whole imported
//! trees before carving up its own workload, and transfers the cached
//! state with them so the importer avoids re-reading from disk.

use dynmds_cache::InsertKind;
use dynmds_event::SimTime;
use dynmds_namespace::{InodeId, MdsId};

use crate::cluster::Cluster;

impl Cluster {
    /// One heartbeat round: refresh traffic-control state, update the
    /// smoothed load estimates, then, for the dynamic strategy, rebalance.
    /// Window counters reset afterwards.
    pub(crate) fn heartbeat(&mut self, now: SimTime) {
        self.flush_shared_writes(now);
        if !self.proxies.is_empty() {
            self.flush_proxy_writes(now);
        }
        self.traffic_sweep(now);
        // Exponentially smoothed per-node load; raw windows are too noisy
        // to migrate on.
        let n = self.nodes.len();
        for i in 0..n {
            let raw = self.hb_served[i] as f64 + self.cfg.miss_weight * self.hb_misses[i] as f64;
            self.hb_ewma[i] = 0.5 * self.hb_ewma[i] + 0.5 * raw;
        }
        // Dead nodes serve nothing; folding their stale EWMA into the mean
        // would skew the gate every live node's busy_streak depends on.
        let mean = self.live_load_mean();
        for i in 0..n {
            if mean >= 1.0 && self.alive[i] && self.hb_ewma[i] > self.cfg.imbalance_ratio * mean {
                self.busy_streak[i] += 1;
            } else {
                self.busy_streak[i] = 0;
            }
        }
        if self.cfg.elastic.enabled {
            self.elastic_tick(now);
        }
        if self.cfg.balancing && self.cfg.strategy.rebalances() {
            self.rebalance(now);
            self.consolidate_partition(now);
        }
        for v in self.hb_served.iter_mut().chain(self.hb_misses.iter_mut()) {
            *v = 0;
        }
        self.subtree_ops.clear();
    }

    /// Mean smoothed load over *live* nodes only (the balancing gate).
    /// With every node alive this sums the same elements in the same
    /// order as a plain mean, so fault-free runs are bit-identical.
    pub(crate) fn live_load_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut live = 0u32;
        for i in 0..self.nodes.len() {
            if self.alive[i] {
                sum += self.hb_ewma[i];
                live += 1;
            }
        }
        if live == 0 {
            0.0
        } else {
            sum / live as f64
        }
    }

    fn rebalance(&mut self, now: SimTime) {
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        let mut loads: Vec<f64> = self.hb_ewma.clone();
        let mean = self.live_load_mean();
        if mean < 1.0 {
            return; // idle cluster, nothing to balance
        }

        // Busiest first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| loads[b].partial_cmp(&loads[a]).expect("finite"));

        let mut budget = self.cfg.max_migrations_per_heartbeat;
        for &busy in &order {
            if budget == 0 {
                break;
            }
            if loads[busy] <= self.cfg.imbalance_ratio * mean {
                break; // remaining nodes are within bounds
            }
            // A crashed node can carry residual EWMA for a few windows;
            // it must never be picked as a migration *source* (its
            // delegations and cached state are already gone).
            if !self.alive[busy] {
                continue;
            }
            // Persistence: act only on sustained overload, not one noisy
            // window.
            if self.busy_streak[busy] < 2 {
                continue;
            }
            let excess = loads[busy] - mean;

            // Candidate subtrees this node could shed, hottest usable
            // first: previously imported trees are re-delegated whole
            // before the node carves up its own delegation.
            let owned = match self.partition.as_subtree() {
                Some(sub) => sub.delegations_of(MdsId(busy as u16)),
                None => return,
            };
            let imported = &self.imported[busy];
            // A recently moved subtree stays put for a few heartbeats —
            // without hysteresis the balancer chases its own migrations
            // and clients never stop rediscovering metadata.
            let cooldown = self.cfg.heartbeat.saturating_mul(3);
            let mut candidates: Vec<(bool, u64, InodeId)> = owned
                .iter()
                .filter(|&&d| d != self.ns.root())
                .filter(|&&d| {
                    self.last_migrated
                        .get(&d)
                        .map(|&t| now.saturating_since(t) >= cooldown)
                        .unwrap_or(true)
                })
                .map(|&d| {
                    let ops = self.subtree_ops.get(&d).copied().unwrap_or(0);
                    (imported.contains(&d), ops, d)
                })
                .filter(|&(_, ops, _)| {
                    // Big enough to matter, small enough not to just move
                    // the hotspot.
                    (ops as f64) >= (excess * 0.05).max(1.0) && (ops as f64) <= excess * 1.25
                })
                .collect();
            // Imported first, then hottest.
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));

            // If the node's load sits in one delegation too hot to hand
            // over whole, split it: its child directories become new
            // delegation points (still owned here), so the next heartbeat
            // can move a *portion* of the workload — "a busy node will …
            // delegat[e] subtrees of its workload to other nodes" (§4.3).
            let mut shed = 0.0;
            for (_, ops, root) in candidates {
                if shed >= excess * 0.5 || budget == 0 {
                    break;
                }
                // Destination: currently least-loaded node.
                let Some((target, tload)) = loads
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != busy && self.alive[j])
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(j, &l)| (j, l))
                else {
                    break; // no live destination
                };
                // Don't create a new hotspot; a smaller candidate may
                // still fit.
                if tload + ops as f64 > self.cfg.imbalance_ratio * mean {
                    continue;
                }
                self.migrate_subtree(now, root, MdsId(busy as u16), MdsId(target as u16));
                budget -= 1;
                loads[busy] -= ops as f64;
                loads[target] += ops as f64;
                shed += ops as f64;
            }

            // Nothing movable (no candidates, or every candidate would
            // itself become a hotspot): refine the partition so the next
            // heartbeat has smaller pieces to work with.
            if shed == 0.0 {
                self.split_hottest_delegation(now, busy, excess);
            }
        }
    }

    /// Splits the busiest delegation of node `busy` into per-child
    /// delegation points (all still assigned to `busy`). No state moves;
    /// this only refines the partition so subsequent heartbeats can
    /// migrate a fraction of the hot subtree.
    fn split_hottest_delegation(&mut self, now: SimTime, busy: usize, excess: f64) {
        let owned = match self.partition.as_subtree() {
            Some(sub) => sub.delegations_of(MdsId(busy as u16)),
            None => return,
        };
        let hottest = owned
            .into_iter()
            .map(|d| (self.subtree_ops.get(&d).copied().unwrap_or(0), d))
            .filter(|&(ops, _)| ops as f64 > excess * 0.5)
            .max_by_key(|&(ops, d)| (ops, d));
        let Some((_, root)) = hottest else { return };
        let children: Vec<InodeId> = match self.ns.children(root) {
            Ok(it) => it.map(|(_, c)| c).filter(|&c| self.ns.is_dir(c)).collect(),
            Err(_) => return,
        };
        if children.is_empty() {
            return;
        }
        let sub = self.partition.as_subtree_mut().expect("subtree strategy");
        let mut created = Vec::new();
        for c in children {
            if sub.delegation_of(c).is_none() {
                sub.delegate(c, MdsId(busy as u16));
                created.push(c);
            }
        }
        self.obs.on_delegation_split(created.len() as u64);
        // Protect fresh splits from immediate consolidation so the next
        // heartbeats can migrate them.
        for c in created {
            self.split_at.insert(c, now);
        }
    }

    /// Merges away redundant delegation points: a delegation whose nearest
    /// enclosing delegation lives on the same node adds client-routing
    /// churn and prefix-pinning overhead for nothing — "this helps keep
    /// the overall partition as simple as possible" (§4.3). Fresh splits
    /// and recently migrated subtrees are left alone.
    pub(crate) fn consolidate_partition(&mut self, now: SimTime) {
        let cooldown = self.cfg.heartbeat.saturating_mul(3);
        let Some(sub) = self.partition.as_subtree() else { return };
        let root = self.ns.root();
        let mut points: Vec<(InodeId, MdsId)> = sub.delegations().collect();
        points.sort_by_key(|&(d, _)| d);
        let mut to_merge: Vec<InodeId> = Vec::new();
        for (d, owner) in points {
            if d == root {
                continue;
            }
            let recently = |map: &dynmds_namespace::FxHashMap<InodeId, SimTime>| {
                map.get(&d).map(|&t| now.saturating_since(t) < cooldown).unwrap_or(false)
            };
            if recently(&self.last_migrated) || recently(&self.split_at) {
                continue;
            }
            // Nearest enclosing delegation point's owner.
            let enclosing = self.ns.ancestors(d).find_map(|a| sub.delegation_of(a));
            if enclosing == Some(owner) {
                to_merge.push(d);
            }
        }
        if to_merge.is_empty() {
            return;
        }
        self.obs.on_delegation_merge(to_merge.len() as u64);
        let sub = self.partition.as_subtree_mut().expect("subtree strategy");
        for d in to_merge {
            sub.undelegate(d);
            self.split_at.remove(&d);
            self.last_migrated.remove(&d);
            for imp in &mut self.imported {
                imp.retain(|&x| x != d);
            }
        }
    }

    /// Transfers authority for the subtree rooted at `root` from `from`
    /// to `to`, moving cached state with it ("all active state and cached
    /// metadata are transferred … to avoid the disk I/O that would
    /// otherwise be required"). (Public within the crate for tests.)
    pub(crate) fn migrate_subtree(&mut self, now: SimTime, root: InodeId, from: MdsId, to: MdsId) {
        let sub = match self.partition.as_subtree_mut() {
            Some(s) => s,
            None => return,
        };
        sub.delegate(root, to);
        if let Some(log) = &mut self.migration_log {
            log.push(crate::cluster::MigrationRecord {
                at: now,
                root,
                from,
                to,
                from_alive: self.alive[from.index()],
                to_alive: self.alive[to.index()],
            });
        }
        self.imported[from.index()].retain(|&d| d != root);
        self.imported[to.index()].push(root);
        self.last_migrated.insert(root, now);
        self.migrations += 1;
        self.obs.on_migration();
        self.nodes[from.index()].life.subtrees_out += 1;
        self.nodes[to.index()].life.subtrees_in += 1;

        // Collect the exporter's cached state under the subtree. Sorted:
        // cache iteration order is arbitrary, and the import order below
        // must be reproducible.
        let mut moved: Vec<InodeId> = self.nodes[from.index()]
            .cache
            .iter_ids()
            .filter(|&id| id == root || self.ns.is_ancestor(root, id))
            .collect();
        moved.sort();

        // Both ends pay CPU proportional to the state moved (the
        // double-commit exchange).
        let cost = self.cfg.costs.migrate_per_item.saturating_mul(moved.len() as u64 + 1);
        self.nodes[from.index()].occupy(now, cost);
        self.nodes[to.index()].occupy(now, cost);

        self.nodes[from.index()].cache.remove_set(&moved);

        // The importer anchors the subtree with the prefix inodes leading
        // to it (§4.3: "the authority must cache the containing directory
        // (prefix) inodes for each of its subtrees") …
        let mut anchor_chain: Vec<InodeId> = self.ns.ancestors(root).collect();
        anchor_chain.reverse();
        let ti = to.index();
        for anc in anchor_chain {
            let parent =
                self.ns.parent(anc).ok().flatten().filter(|p| self.nodes[ti].cache.peek(*p));
            self.nodes[ti].cache.insert(anc, parent, InsertKind::Prefix);
        }
        // … then receives the migrated items, parents before children.
        let mut ordered = moved;
        ordered.sort_by_key(|&id| (self.ns.depth(id).unwrap_or(usize::MAX), id));
        for id in ordered {
            if !self.ns.is_alive(id) {
                continue;
            }
            let parent =
                self.ns.parent(id).ok().flatten().filter(|p| self.nodes[ti].cache.peek(*p));
            let kind = if self.ns.is_dir(id) { InsertKind::Prefix } else { InsertKind::Target };
            self.nodes[ti].cache.insert(id, parent, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use dynmds_cache::InsertKind;
    use dynmds_event::SimTime;
    use dynmds_namespace::MdsId;
    use dynmds_partition::StrategyKind;

    use crate::testutil::tiny_cluster;

    #[test]
    fn migrate_subtree_moves_delegation_and_cached_state() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let home = c.ns.resolve("/home/user0000").unwrap();
        let sub = c.partition.as_subtree().unwrap();
        let from = sub.authority(&c.ns, home);
        let to = MdsId((from.0 + 1) % 4);
        // Cache some of the subtree at the exporter.
        let file = c.ns.walk(home).find(|&i| !c.ns.is_dir(i)).unwrap();
        let mut chain: Vec<_> = c.ns.ancestors(file).collect();
        chain.reverse();
        for anc in chain {
            let parent = c.ns.parent(anc).unwrap().filter(|p| c.nodes[from.index()].cache.peek(*p));
            c.nodes[from.index()].cache.insert(anc, parent, InsertKind::Prefix);
        }
        let parent = c.ns.parent(file).unwrap();
        c.nodes[from.index()].cache.insert(file, parent, InsertKind::Target);

        c.migrate_subtree(SimTime::from_secs(1), home, from, to);

        let sub = c.partition.as_subtree().unwrap();
        assert_eq!(sub.authority(&c.ns, file), to, "authority moved");
        assert!(!c.nodes[from.index()].cache.peek(file), "exporter dropped state");
        assert!(c.nodes[to.index()].cache.peek(file), "importer received state");
        assert!(c.nodes[to.index()].cache.peek(home), "subtree root anchored");
        assert_eq!(c.migrations, 1);
        assert_eq!(c.nodes[from.index()].life.subtrees_out, 1);
        assert_eq!(c.nodes[to.index()].life.subtrees_in, 1);
        assert!(c.imported[to.index()].contains(&home));
        c.nodes[from.index()].cache.check_integrity();
        c.nodes[to.index()].cache.check_integrity();
    }

    #[test]
    fn heartbeat_without_load_never_migrates() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let before = c.partition.as_subtree().unwrap().delegation_count();
        c.heartbeat(SimTime::from_secs(5));
        c.heartbeat(SimTime::from_secs(10));
        assert_eq!(c.migrations, 0);
        // Consolidation may simplify the initial partition, never grow it.
        assert!(c.partition.as_subtree().unwrap().delegation_count() <= before);
    }

    #[test]
    fn sustained_skew_triggers_migration_but_noise_does_not() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let home = c.ns.resolve("/home/user0000").unwrap();
        // A spread of files under the hot home; attribution follows the
        // current delegation points, as serve() does.
        let files: Vec<_> = c.ns.walk(home).filter(|&i| !c.ns.is_dir(i)).take(24).collect();
        assert!(files.len() >= 4, "need a few files");
        let busy = c.partition.as_subtree().unwrap().authority(&c.ns, home);
        let credit = |c: &mut crate::cluster::Cluster| {
            c.hb_served[busy.index()] = 10_000;
            for &f in &files {
                let root = c.partition.as_subtree().unwrap().subtree_root_of(&c.ns, f);
                *c.subtree_ops.entry(root).or_insert(0) += 10_000 / files.len() as u64;
            }
        };
        // One noisy window: no migration (persistence check).
        credit(&mut c);
        c.heartbeat(SimTime::from_secs(5));
        assert_eq!(c.migrations, 0, "single spike must not migrate");
        // Sustained over further heartbeats: migration happens.
        for k in 2..8 {
            credit(&mut c);
            c.heartbeat(SimTime::from_secs(5 * k));
            if c.migrations > 0 {
                break;
            }
        }
        assert!(c.migrations > 0, "sustained overload must migrate");
    }

    #[test]
    fn crashed_node_is_never_chosen_as_migration_source() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let dead = MdsId(1);
        c.fail_node(SimTime::from_secs(1), dead);
        // Reconstruct the hazard the liveness check guards against: a
        // delegation that still names the dead node (a heartbeat racing
        // the crash) plus residual load figures that make it "busiest".
        let home = c.ns.resolve("/home/user0000").unwrap();
        c.partition.as_subtree_mut().unwrap().delegate(home, dead);
        c.hb_ewma[dead.index()] = 100_000.0;
        c.busy_streak[dead.index()] = 5;
        c.hb_ewma[0] = 30_000.0;
        c.hb_ewma[2] = 1_000.0;
        c.hb_ewma[3] = 1_000.0;
        c.subtree_ops.insert(home, 10_000);

        c.rebalance(SimTime::from_secs(5));

        assert_eq!(c.migrations, 0, "dead exporter must be skipped");
        assert_eq!(c.nodes[dead.index()].life.subtrees_out, 0);
        assert_eq!(
            c.partition.as_subtree().unwrap().delegation_of(home),
            Some(dead),
            "nothing is 'migrated' off a node that no longer serves"
        );
    }

    #[test]
    fn stale_dead_load_does_not_skew_streaks_or_the_mean() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.fail_node(SimTime::from_secs(1), MdsId(3));
        // Residual figure, as if the fail-path zeroing were missed.
        c.hb_ewma[3] = 1_000_000.0;
        c.hb_served[0] = 4_000; // node 0 genuinely overloaded; 1, 2 idle
        c.heartbeat(SimTime::from_secs(5));
        assert_eq!(c.busy_streak[3], 0, "a dead node builds no streak");
        assert!(c.busy_streak[0] >= 1, "live overload detected despite dead residue");
        c.hb_ewma[3] = 50_000.0;
        for i in [0usize, 1, 2] {
            c.hb_ewma[i] = 12.0;
        }
        assert_eq!(c.live_load_mean(), 12.0, "mean covers live nodes only");
    }

    #[test]
    fn consolidation_merges_same_owner_fragments() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        // Reach steady state first (the initial partition itself may hold
        // same-owner fragments).
        c.consolidate_partition(SimTime::from_secs(100));
        let home = c.ns.resolve("/home/user0000").unwrap();
        let owner = c.partition.as_subtree().unwrap().authority(&c.ns, home);
        let child =
            c.ns.children(home)
                .unwrap()
                .map(|(_, i)| i)
                .find(|&i| c.ns.is_dir(i))
                .expect("home has subdirs");
        c.partition.as_subtree_mut().unwrap().delegate(child, owner);
        let before = c.partition.as_subtree().unwrap().delegation_count();
        c.consolidate_partition(SimTime::from_secs(200));
        let sub = c.partition.as_subtree().unwrap();
        assert_eq!(sub.delegation_count(), before - 1, "fragment merged");
        assert_eq!(sub.delegation_of(child), None);
        assert_eq!(sub.authority(&c.ns, child), owner, "authority unchanged");
    }

    #[test]
    fn consolidation_spares_cross_owner_and_fresh_splits() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.consolidate_partition(SimTime::from_secs(100));
        // Find a home with at least two subdirectories.
        let homes: Vec<_> =
            (0..8).map(|u| c.ns.resolve(&format!("/home/user{u:04}")).unwrap()).collect();
        let (home, dir_list) = homes
            .iter()
            .find_map(|&h| {
                let dirs: Vec<_> =
                    c.ns.children(h).unwrap().map(|(_, i)| i).filter(|&i| c.ns.is_dir(i)).collect();
                (dirs.len() >= 2).then_some((h, dirs))
            })
            .expect("some home has two subdirs");
        let owner = c.partition.as_subtree().unwrap().authority(&c.ns, home);
        let other = MdsId((owner.0 + 1) % 4);
        let cross = dir_list[0];
        let fresh = dir_list[1];
        c.partition.as_subtree_mut().unwrap().delegate(cross, other);
        // Fresh split fragment (same owner) protected by split_at.
        c.partition.as_subtree_mut().unwrap().delegate(fresh, owner);
        c.split_at.insert(fresh, SimTime::from_secs(199));
        c.consolidate_partition(SimTime::from_secs(200));
        assert!(
            c.partition.as_subtree().unwrap().delegation_of(fresh).is_some(),
            "fresh split survives consolidation"
        );
        assert_eq!(
            c.partition.as_subtree().unwrap().delegation_of(cross),
            Some(other),
            "cross-owner delegation survives"
        );
    }
}

//! Sharded simulation core: one run over K event queues with
//! conservative time-window synchronization (ROADMAP item 2).
//!
//! The legacy [`Simulation`](crate::Simulation) dispatches every event of
//! a run from one queue. This module partitions the cluster — MDS nodes
//! in contiguous blocks, clients by index — into K *shards*, each with
//! its own [`EventQueue`], timer-wheel pages, per-entity RNG streams and
//! counters, and executes them window by window:
//!
//! * **Window protocol.** Virtual time advances in windows of length
//!   `L = net_hop`, the minimum cross-shard message latency (the
//!   *lookahead* of classic conservative parallel discrete-event
//!   simulation). Within a window every shard runs independently; any
//!   message sent at `t` is delivered at `t + L`, which is provably at
//!   or past the next window boundary, so no shard can affect another
//!   mid-window.
//! * **Cross-shard queues.** All entity-to-entity messages (requests,
//!   forwards, replies, loss notifications) go through per-destination
//!   outboxes — even when source and destination share a shard. At each
//!   window barrier the destination shard merges its inbound messages in
//!   `(send_time, src_shard, outbox order)` order before scheduling, so
//!   queue sequence numbers — and therefore the whole run — are
//!   byte-identical for a fixed shard count.
//! * **Shard-count invariance.** The *report surface* (rendered report,
//!   CSV fields, obs exports) is identical for any K. The argument is
//!   that entity state evolves identically: (1) every same-timestamp
//!   event batch is sorted by a K-independent canonical key
//!   (event class, destination entity, source rank, per-source send
//!   sequence) before processing; (2) every RNG draw comes from a
//!   per-entity stream seeded from the entity id alone, consumed in that
//!   canonical order; (3) all follow-up delays are at least 1 µs, so a
//!   batch never grows while it is being processed; (4) same-timestamp
//!   events for *different* entities commute (they touch only their own
//!   entity's state plus commutative counters), so it does not matter
//!   that K=1 interleaves two entities' batches where K=2 runs them on
//!   different shards; (5) barrier-global steps (faults, heartbeat
//!   balancing, traffic-control replication, sampling) fire on the
//!   shared window grid with effects applied in global node order. By
//!   induction over windows, every K produces the same state trajectory.
//!
//! The sharded engine is a *separate, simplified model* from the legacy
//! cluster — close enough to exhibit the paper's phenomena at scale but
//! not event-identical to it (see DESIGN.md §11 for the documented
//! deviations: frozen namespace shape, exact-item client routing,
//! heartbeat-quantized traffic control, omniscient loss notification).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use dynmds_cache::{InsertKind, MetaCache};
use dynmds_event::{EventQueue, SimDuration, SimRng, SimTime};
use dynmds_namespace::{ClientId, FxHashMap, FxHashSet, InodeId, MdsId, Snapshot};
use dynmds_obs::{Registry, SnapshotSeries};
use dynmds_partition::{Partition, StrategyKind};
use dynmds_storage::{AccessKind, DiskFault, DiskModel};
use dynmds_workload::Workload;

use crate::config::SimConfig;
use crate::fault::{DiskScope, FaultEvent, NetFaultSpec, RetryPolicy};
use crate::node::MdsNode;
use crate::report::NodeSnapshot;

// ---------------------------------------------------------------------
// parallel driver injection
// ---------------------------------------------------------------------

/// Parallel fan-out driver: must invoke `body(i)` exactly once for every
/// `i < n` (concurrently is fine), honoring the `threads` override the
/// way the harness worker policy does. Installed once by the harness so
/// the shard loop shares its scoped worker pool; without one, shards run
/// serially in id order (identical results — the driver only changes
/// wall-clock).
pub type ParallelDriver = fn(usize, Option<usize>, &(dyn Fn(usize) + Sync));

static DRIVER: OnceLock<ParallelDriver> = OnceLock::new();

/// Installs the process-wide shard fan-out driver. First caller wins;
/// later calls are ignored.
pub fn install_parallel_driver(driver: ParallelDriver) {
    let _ = DRIVER.set(driver);
}

/// Runs `f` once per shard, in parallel when a driver is installed.
/// Claim flags turn a misbehaving driver (double dispatch) into a panic
/// instead of two `&mut` aliases.
fn for_each_shard(shards: &mut [Shard], threads: Option<usize>, f: impl Fn(&mut Shard) + Sync) {
    if shards.len() == 1 {
        return f(&mut shards[0]);
    }
    let Some(driver) = DRIVER.get() else {
        for s in shards.iter_mut() {
            f(s);
        }
        return;
    };
    struct Base(*mut Shard);
    unsafe impl Sync for Base {}
    impl Base {
        fn at(&self, i: usize) -> *mut Shard {
            unsafe { self.0.add(i) }
        }
    }
    let claims: Vec<AtomicBool> = (0..shards.len()).map(|_| AtomicBool::new(false)).collect();
    let base = Base(shards.as_mut_ptr());
    driver(shards.len(), threads, &|i| {
        assert!(!claims[i].swap(true, Ordering::AcqRel), "driver dispatched shard {i} twice");
        f(unsafe { &mut *base.at(i) });
    });
    for (i, c) in claims.iter().enumerate() {
        assert!(c.load(Ordering::Acquire), "driver never dispatched shard {i}");
    }
}

fn _thread_bounds() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<Shard>();
    sync::<World>();
}

// ---------------------------------------------------------------------
// events & messages
// ---------------------------------------------------------------------

/// One sharded-engine event. Cross-entity variants carry `(src, seq)` —
/// a sender rank plus the sender's private send counter — the
/// K-independent part of the canonical ordering key.
#[derive(Clone, Debug)]
enum Ev {
    /// A client issues (or re-issues) its next operation.
    Issue(ClientId),
    /// Retry wakeup after a lost request/reply; stale once the client
    /// has moved past `op_seq`.
    Retry { client: ClientId, op_seq: u32 },
    /// A request arrives at a node. `hop` > 0 marks an intra-cluster
    /// forward (already counted at the first receiver).
    Request {
        node: MdsId,
        client: ClientId,
        op_seq: u32,
        item: InodeId,
        write: bool,
        hop: u8,
        src: u64,
        seq: u64,
    },
    /// A reply (or, with `ok == false`, the simulator's omniscient
    /// lost-message notification) arrives at a client. `from_proxy`
    /// marks answers absorbed at a proxy (no route or lease learned).
    Reply {
        client: ClientId,
        op_seq: u32,
        item: InodeId,
        server: MdsId,
        lease_until: u64,
        ok: bool,
        from_proxy: bool,
        src: u64,
        seq: u64,
    },
    /// A hot-item op arrives at proxy `p` (hotspot proxy tier).
    PReq { p: u16, client: ClientId, op_seq: u32, item: InodeId, write: bool, src: u64, seq: u64 },
    /// A coalesced write delta arrives at the authority from a proxy
    /// (heartbeat flush).
    Coalesced { node: MdsId, item: InodeId, delta: u64, src: u64, seq: u64 },
}

/// Sender ranks: nodes order before clients, clients before proxies,
/// each by id.
fn node_rank(m: MdsId) -> u64 {
    m.0 as u64
}
fn client_rank(c: ClientId) -> u64 {
    (1 << 32) | c.0 as u64
}
fn proxy_rank(p: u16) -> u64 {
    (2 << 32) | p as u64
}

/// Canonical same-timestamp ordering key — a pure function of the event
/// content, never of queue insertion order, so it is identical for every
/// shard count. `Coalesced` shares the node-inbound class with `Request`
/// (per-source send sequences keep the pairs totally ordered).
fn canonical_key(ev: &Ev) -> (u8, u64, u64, u64) {
    match ev {
        Ev::Request { node, src, seq, .. } => (0, node.0 as u64, *src, *seq),
        Ev::Coalesced { node, src, seq, .. } => (0, node.0 as u64, *src, *seq),
        Ev::Reply { client, src, seq, .. } => (1, client.0 as u64, *src, *seq),
        Ev::Retry { client, op_seq } => (2, client.0 as u64, *op_seq as u64, 0),
        Ev::Issue(c) => (3, c.0 as u64, 0, 0),
        Ev::PReq { p, src, seq, .. } => (4, proxy_rank(*p), *src, *seq),
    }
}

/// An outbox entry: the event plus its send time; delivery is at
/// `send + net_hop`.
struct OutMsg {
    send: u64,
    ev: Ev,
}

// ---------------------------------------------------------------------
// order-free latency aggregation
// ---------------------------------------------------------------------

const LAT_BUCKETS: usize = 40;

/// Latency aggregate built purely from commutative integer updates
/// (count, sum, min, max, log2 bucket counts), so merging per-shard
/// aggregates in shard order yields the same bytes for every K.
#[derive(Clone, Debug)]
pub struct LatencyAgg {
    /// Completed-operation count.
    pub count: u64,
    /// Sum of latencies, µs.
    pub sum_us: u64,
    /// Minimum latency seen, µs (`u64::MAX` when empty).
    pub min_us: u64,
    /// Maximum latency seen, µs.
    pub max_us: u64,
    /// `buckets[i]` counts latencies with `floor(log2(us)) == i - 1`
    /// (bucket 0 is `0 µs`, i.e. client-local lease completions).
    pub buckets: [u64; LAT_BUCKETS],
}

impl LatencyAgg {
    fn new() -> Self {
        LatencyAgg { count: 0, sum_us: 0, min_us: u64::MAX, max_us: 0, buckets: [0; LAT_BUCKETS] }
    }

    fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        let b = if us == 0 { 0 } else { (64 - us.leading_zeros()) as usize };
        self.buckets[b.min(LAT_BUCKETS - 1)] += 1;
    }

    fn merge(&mut self, other: &LatencyAgg) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile: the lower bound (power of two) of the
    /// bucket containing the q-th latency.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max_us
    }
}

// ---------------------------------------------------------------------
// per-shard state
// ---------------------------------------------------------------------

/// One MDS node as owned by a shard: the legacy node state plus a
/// private OSD-fetch device, RNG stream and send counter.
struct ShardNode {
    m: MdsNode,
    /// Per-node metadata-fetch device (the sharded model gives each node
    /// a private tier-2 pipe instead of the legacy shared OSD pool).
    osd: DiskModel,
    rng: SimRng,
    send_seq: u64,
    /// Replication candidates observed since the last heartbeat.
    hot_pending: Vec<InodeId>,
    /// `life.served` / `life.disk_fetches` at the last heartbeat, for
    /// balancer load deltas.
    hb_served: u64,
    hb_fetches: u64,
    /// Hot-object detector feeding the proxy tier (touched only when the
    /// tier is enabled; records reads *and* writes, unlike `popularity`).
    proxy_pop: dynmds_proxy::HotDetector,
    /// Proxy-tier hot candidates observed since the last heartbeat.
    proxy_hot_pending: Vec<InodeId>,
}

/// One hotspot proxy as owned by a shard (sharded-engine counterpart of
/// [`dynmds_proxy::ProxyCore`], reduced to the frozen-namespace op model:
/// no names, so no negative-lookup cache — reads absorb through the
/// read-through set, writes coalesce into per-item deltas).
#[derive(Debug, Default)]
struct ProxySt {
    /// Items read through to the authority at least once.
    cached: FxHashSet<InodeId>,
    /// Coalesced write deltas awaiting the heartbeat flush.
    pending: FxHashMap<InodeId, u64>,
    /// Serial-CPU availability, µs.
    free_at: u64,
    send_seq: u64,
    stats: ProxyShardStats,
}

/// Commutative proxy counters, aggregated into the report in proxy id
/// order.
#[derive(Clone, Copy, Debug, Default)]
struct ProxyShardStats {
    absorbed: u64,
    coalesced: u64,
    forwarded: u64,
    flushes: u64,
    flushed_items: u64,
}

/// One client as owned by a shard.
struct ClientSt {
    rng: SimRng,
    /// Learned exact-item locations (the sharded model's simplification
    /// of the legacy deepest-known-prefix routing).
    routes: FxHashMap<InodeId, MdsId>,
    /// Item → lease expiry (µs).
    leases: FxHashMap<InodeId, u64>,
    op_seq: u32,
    pending: Option<PendingOp>,
    send_seq: u64,
}

struct PendingOp {
    item: InodeId,
    write: bool,
    issued: u64,
    retries: u8,
}

/// Counters aggregated into the report (all commutative integers).
#[derive(Clone, Debug, Default)]
struct ShardStats {
    ops: u64,
    lease_hits: u64,
    timeouts: u64,
    retries: u64,
    failed: u64,
    stale: u64,
}

/// Global state every shard may read during a window but only the
/// barrier (which holds `&mut` everything) may write.
struct World {
    snapshot: Snapshot,
    alive: Vec<bool>,
    /// *Announced* cluster membership: elastic scaling is voluntary and
    /// planned, so clients are told about it (unlike crashes, which they
    /// discover by timeout). With elasticity off this is all-true and the
    /// unknown-item routing draw is bit-identical to a uniform pick.
    members: Vec<bool>,
    net: Option<NetFaultSpec>,
    replicated: FxHashSet<InodeId>,
    /// Items the proxy tier serves (heartbeat-announced, like
    /// `replicated`; empty whenever the tier is disabled).
    proxy_hot: FxHashSet<InodeId>,
}

struct Shard {
    queue: EventQueue<Ev>,
    /// This shard's replica of the placement function; all replicas
    /// receive identical mutation deltas at barriers.
    partition: Partition,
    cfg: SimConfig,
    node_lo: usize,
    nodes: Vec<ShardNode>,
    client_lo: u32,
    clients: Vec<ClientSt>,
    proxy_lo: u16,
    proxies: Vec<ProxySt>,
    workload: Box<dyn Workload + Send>,
    /// Outgoing messages per destination shard, drained at barriers.
    outbox: Vec<Vec<OutMsg>>,
    /// Cross-shard delivery latency, µs (== the window width): messages
    /// land at `send + hop_us`, always at or past the next barrier.
    hop_us: u64,
    /// Single-shard run: [`Shard::send`] schedules straight into the own
    /// queue at the delivery time, bypassing the outbox entirely.
    direct: bool,
    /// Whether this shard pushed any outbox message since the last
    /// barrier — lets the barrier skip the k×k exchange scan when no
    /// shard sent anything (the common case in sparse phases).
    sent: bool,
    /// Same-timestamp batch scratch (allocation reused across windows).
    batch: Vec<Ev>,
    stats: ShardStats,
    lat: LatencyAgg,
}

/// Shard that owns node `m` under a contiguous block partition.
fn shard_of_node(m: usize, n_mds: usize, k: usize) -> usize {
    m * k / n_mds
}

/// Shard that owns client `c`.
fn shard_of_client(c: u32, n_clients: u32, k: usize) -> usize {
    (c as usize) * k / n_clients as usize
}

/// Shard that owns proxy `p`.
fn shard_of_proxy(p: usize, n_proxies: usize, k: usize) -> usize {
    p * k / n_proxies
}

/// Picks a uniformly random live node (the traffic-control client
/// behavior: replicated items go anywhere). Falls back to a uniform
/// node when the whole cluster is down.
fn pick_alive(alive: &[bool], rng: &mut SimRng) -> MdsId {
    let live = alive.iter().filter(|a| **a).count() as u64;
    if live == 0 {
        return MdsId(rng.below(alive.len() as u64) as u16);
    }
    let nth = rng.below(live);
    let mut seen = 0;
    for (i, &a) in alive.iter().enumerate() {
        if a {
            if seen == nth {
                return MdsId(i as u16);
            }
            seen += 1;
        }
    }
    unreachable!("counted {live} live nodes but found fewer")
}

impl Shard {
    fn node(&mut self, m: MdsId) -> &mut ShardNode {
        &mut self.nodes[m.index() - self.node_lo]
    }

    fn client(&mut self, c: ClientId) -> &mut ClientSt {
        &mut self.clients[(c.0 - self.client_lo) as usize]
    }

    /// Runs every event strictly before `end` (µs). Same-timestamp
    /// batches are collected and canonically sorted before processing;
    /// follow-ups are always at least 1 µs out, so a batch is closed by
    /// the time it is sorted.
    fn run_window(&mut self, world: &World, end: u64) {
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(tt) = self.queue.peek_time() {
            let t = tt.as_micros();
            if t >= end {
                break;
            }
            let first = self.queue.pop_due(tt).expect("peeked event is due");
            match self.queue.pop_due(tt) {
                // The common case by far is one event per timestamp;
                // handle it without touching the batch buffer at all.
                None => self.handle(world, t, first),
                Some(second) => {
                    batch.push(first);
                    batch.push(second);
                    while let Some(ev) = self.queue.pop_due(tt) {
                        batch.push(ev);
                    }
                    batch.sort_by_key(canonical_key);
                    for ev in batch.drain(..) {
                        self.handle(world, t, ev);
                    }
                }
            }
        }
        self.batch = batch;
    }

    fn handle(&mut self, world: &World, t: u64, ev: Ev) {
        match ev {
            Ev::Issue(c) => self.client_issue(world, t, c, false),
            Ev::Retry { client, op_seq } => {
                let cl = self.client(client);
                if cl.op_seq == op_seq && cl.pending.is_some() {
                    self.client_issue(world, t, client, true);
                }
            }
            Ev::Request { node, client, op_seq, item, write, hop, .. } => {
                self.node_request(world, t, node, client, op_seq, item, write, hop);
            }
            Ev::Reply { client, op_seq, item, server, lease_until, ok, from_proxy, .. } => {
                self.client_reply(t, client, op_seq, item, server, lease_until, ok, from_proxy);
            }
            Ev::PReq { p, client, op_seq, item, write, .. } => {
                self.proxy_request(world, t, p, client, op_seq, item, write);
            }
            Ev::Coalesced { node, item, delta, .. } => {
                self.node_coalesced(world, t, node, item, delta);
            }
        }
    }

    fn send(&mut self, dst_shard: usize, send: u64, ev: Ev) {
        if self.direct {
            // One shard: the "cross-shard" message can go straight into
            // the own queue at its delivery time. The delivery lands at
            // or past the window end (hop == window width), so it never
            // fires intra-window, and pops order strictly by (time, seq)
            // with same-time batches canonically sorted — byte-identical
            // to the merge-at-barrier path.
            self.queue.schedule(SimTime::from_micros(send + self.hop_us), ev);
        } else {
            self.outbox[dst_shard].push(OutMsg { send, ev });
            self.sent = true;
        }
    }

    fn think_delay(rng: &mut SimRng, mean_us: f64) -> u64 {
        (rng.exponential(mean_us) as u64).max(1)
    }

    /// Think-time mean at `t`, µs: the base mean scaled by the workload's
    /// intensity envelope (diurnal/bursty shapes). The neutral envelope
    /// multiplies by exactly 1.0, which is a bit-exact identity.
    fn think_mean_us(&self, t: u64) -> f64 {
        self.cfg.costs.think_mean.as_micros() as f64
            * self.workload.think_scale(SimTime::from_micros(t))
    }

    // --- client side --------------------------------------------------

    fn client_issue(&mut self, world: &World, t: u64, c: ClientId, retrying: bool) {
        let k = self.outbox.len();
        let n_mds = self.cfg.n_mds;
        let think_us = self.think_mean_us(t);
        let leases_on = self.cfg.client_leases;
        let hashed = matches!(
            self.cfg.strategy,
            StrategyKind::DirHash | StrategyKind::FileHash | StrategyKind::LazyHybrid
        );

        let (item, write, op_seq);
        if retrying {
            self.stats.retries += 1;
            let cl = self.client(c);
            let p = cl.pending.as_mut().expect("retry fired without a pending op");
            p.retries += 1;
            item = p.item;
            write = p.write;
            op_seq = cl.op_seq;
        } else {
            let op = self.workload.next_op(&world.snapshot.ns, c, SimTime::from_micros(t));
            item = op.target();
            write = op.is_update();
            let cl = self.client(c);
            cl.op_seq = cl.op_seq.wrapping_add(1);
            op_seq = cl.op_seq;
            if leases_on && !write {
                match cl.leases.get(&item) {
                    Some(&exp) if exp > t => {
                        // Client-local completion: one event per op.
                        let next = t + Self::think_delay(&mut cl.rng, think_us);
                        self.stats.lease_hits += 1;
                        self.stats.ops += 1;
                        self.lat.record(0);
                        self.queue.schedule(SimTime::from_micros(next), Ev::Issue(c));
                        return;
                    }
                    Some(_) => {
                        cl.leases.remove(&item);
                    }
                    None => {}
                }
            }
            cl.pending = Some(PendingOp { item, write, issued: t, retries: 0 });
        }

        // Hotspot proxy tier: heartbeat-announced hot items route via the
        // client's proxy, which absorbs or relays them. Proxy links are
        // modelled as reliable local hops, so this leg draws no loss/dup
        // randomness; with the tier disabled `proxy_hot` is empty and
        // this branch is a no-op.
        let n_proxies = self.cfg.proxy.count;
        if n_proxies > 0 && world.proxy_hot.contains(&item) {
            let p = (c.0 % n_proxies as u32) as u16;
            let dst_shard = shard_of_proxy(p as usize, n_proxies as usize, k);
            let cl = self.client(c);
            let seq = cl.send_seq;
            cl.send_seq += 1;
            self.send(
                dst_shard,
                t,
                Ev::PReq { p, client: c, op_seq, item, write, src: client_rank(c), seq },
            );
            return;
        }

        // Route: replicated items may be read anywhere (traffic
        // control), hashed strategies compute the placement function
        // client-side, subtree clients use a learned exact location or
        // guess randomly.
        let dst = if world.replicated.contains(&item) && !write {
            pick_alive(&world.alive, &mut self.client(c).rng)
        } else if hashed {
            self.partition.authority(&world.snapshot.ns, item)
        } else {
            let cl = self.client(c);
            match cl.routes.get(&item) {
                Some(&m) => m,
                // Unknown item: guess among announced members. With the
                // full pool announced this consumes the same single draw
                // as `below(n_mds)` and returns the same node.
                None => pick_alive(&world.members, &mut cl.rng),
            }
        };

        // In-transit request loss: the omniscient simulator converts it
        // straight into the retry wakeup the timeout would produce.
        if let Some(net) = world.net {
            if net.loss_p > 0.0 && self.client(c).rng.chance(net.loss_p) {
                self.fail_or_retry(t, c, op_seq, item, false);
                return;
            }
        }
        let dup = match world.net {
            Some(net) if net.dup_p > 0.0 => self.client(c).rng.chance(net.dup_p),
            _ => false,
        };
        let dst_shard = shard_of_node(dst.index(), n_mds as usize, k);
        for _ in 0..if dup { 2 } else { 1 } {
            let cl = self.client(c);
            let seq = cl.send_seq;
            cl.send_seq += 1;
            self.send(
                dst_shard,
                t,
                Ev::Request {
                    node: dst,
                    client: c,
                    op_seq,
                    item,
                    write,
                    hop: 0,
                    src: client_rank(c),
                    seq,
                },
            );
        }
    }

    /// Shared timeout handling for lost requests, lost replies and dead
    /// servers: schedule the backoff retry, or give up at the cap.
    fn fail_or_retry(&mut self, t: u64, c: ClientId, op_seq: u32, item: InodeId, drop_route: bool) {
        let think_us = self.think_mean_us(t);
        let retry_policy: RetryPolicy = self.cfg.retry;
        self.stats.timeouts += 1;
        let cl = self.client(c);
        if drop_route {
            cl.routes.remove(&item);
        }
        let p = cl.pending.as_ref().expect("timeout without a pending op");
        let (issued, retries) = (p.issued, p.retries);
        if retries >= retry_policy.max_retries {
            cl.pending = None;
            self.stats.failed += 1;
            let next = t + Self::think_delay(&mut self.client(c).rng, think_us);
            self.queue.schedule(SimTime::from_micros(next), Ev::Issue(c));
        } else {
            let delay = retry_policy.delay(retries + 1, &mut cl.rng).as_micros().max(1);
            let at = (issued + delay).max(t + 1);
            self.queue.schedule(SimTime::from_micros(at), Ev::Retry { client: c, op_seq });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn client_reply(
        &mut self,
        t: u64,
        c: ClientId,
        op_seq: u32,
        item: InodeId,
        server: MdsId,
        lease_until: u64,
        ok: bool,
        from_proxy: bool,
    ) {
        let think_us = self.think_mean_us(t);
        let cl = self.client(c);
        if cl.op_seq != op_seq || cl.pending.is_none() {
            self.stats.stale += 1;
            return;
        }
        if !ok {
            self.fail_or_retry(t, c, op_seq, item, true);
            return;
        }
        let p = cl.pending.take().unwrap();
        if !from_proxy {
            cl.routes.insert(item, server);
        }
        if lease_until > t {
            cl.leases.insert(item, lease_until);
        }
        let next = t + Self::think_delay(&mut cl.rng, think_us);
        self.stats.ops += 1;
        self.lat.record(t - p.issued);
        self.queue.schedule(SimTime::from_micros(next), Ev::Issue(c));
    }

    // --- server side --------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn node_request(
        &mut self,
        world: &World,
        t: u64,
        m: MdsId,
        client: ClientId,
        op_seq: u32,
        item: InodeId,
        write: bool,
        hop: u8,
    ) {
        let k = self.outbox.len();
        let n_mds = self.cfg.n_mds as usize;
        let n_clients = self.cfg.n_clients;
        let cpu = self.cfg.costs.cpu_per_op;
        let cpu_fwd = self.cfg.costs.cpu_forward;
        let leases_on = self.cfg.client_leases;
        let lease_ttl = self.cfg.lease_ttl.as_micros();
        let traffic_control = self.cfg.traffic_control;
        let threshold = self.cfg.replication_threshold;
        let proxy_on = self.cfg.proxy.count > 0;
        let proxy_threshold = self.cfg.proxy.hot_threshold;
        let client_shard = shard_of_client(client.0, n_clients, k);

        if !world.alive[m.index()] {
            // Dead node: the message vanishes; notify the client via the
            // loss path so its retry clock models the timeout.
            let n = self.node(m);
            let seq = n.send_seq;
            n.send_seq += 1;
            self.send(
                client_shard,
                t,
                Ev::Reply {
                    client,
                    op_seq,
                    item,
                    server: m,
                    lease_until: 0,
                    ok: false,
                    from_proxy: false,
                    src: node_rank(m),
                    seq,
                },
            );
            return;
        }

        let replicated = world.replicated.contains(&item) && !write;
        let auth = self.partition.authority(&world.snapshot.ns, item);
        let n = self.node(m);
        n.m.win.received += 1;
        n.m.life.received += 1;

        if auth != m && !replicated && hop == 0 {
            // Wrong server: forward to the authority (subtree-strategy
            // clients route by learned locations and can be stale).
            n.m.win.forwarded += 1;
            n.m.life.forwarded += 1;
            let done = n.m.occupy(SimTime::from_micros(t), cpu_fwd).as_micros();
            let seq = n.send_seq;
            n.send_seq += 1;
            let auth_shard = shard_of_node(auth.index(), n_mds, k);
            self.send(
                auth_shard,
                done,
                Ev::Request {
                    node: auth,
                    client,
                    op_seq,
                    item,
                    write,
                    hop: 1,
                    src: node_rank(m),
                    seq,
                },
            );
            return;
        }

        // Serve (authoritative, replica, or end of a forward chain).
        let now = SimTime::from_micros(t);
        let hit = n.m.cache.lookup(item, true);
        let mut done = n.m.occupy(now, cpu);
        if !hit {
            n.m.win.misses += 1;
            n.m.life.disk_fetches += 1;
            done = done.max(n.osd.access(now, AccessKind::Read));
            let _ = n.m.cache.insert(item, None, InsertKind::Target);
        }
        if write {
            let _ = n.m.journal.append(item);
            done = done.max(n.m.journal_disk.access(now, AccessKind::Write));
        }
        n.m.win.served += 1;
        n.m.life.served += 1;
        if replicated && auth != m {
            n.m.life.replica_serves += 1;
        }
        if traffic_control && !write && !replicated {
            let pop = n.m.popularity.record(now, item);
            if pop >= threshold {
                n.hot_pending.push(item);
            }
        }
        // Hotspot proxy tier: nodes detect hot objects (reads and writes
        // both count) and announce them at the heartbeat.
        if proxy_on && !world.proxy_hot.contains(&item) {
            let v = n.proxy_pop.record(item, t);
            if v >= proxy_threshold {
                n.proxy_hot_pending.push(item);
            }
        }
        // Reply; in-transit reply loss is drawn from the node's stream.
        let ok = match world.net {
            Some(net) if net.loss_p > 0.0 => !n.rng.chance(net.loss_p),
            _ => true,
        };
        let done_us = done.as_micros();
        let lease_until = if ok && leases_on && !write { done_us + lease_ttl } else { 0 };
        let seq = n.send_seq;
        n.send_seq += 1;
        self.send(
            client_shard,
            done_us,
            Ev::Reply {
                client,
                op_seq,
                item,
                server: m,
                lease_until,
                ok,
                from_proxy: false,
                src: node_rank(m),
                seq,
            },
        );
    }

    // --- proxy side ---------------------------------------------------

    /// A hot-item op at proxy `p`: coalesce writes, absorb read-through
    /// reads, relay the rest to the authority with `hop = 1` (the node
    /// replies to the client directly; the relay doubles as the proxy's
    /// read-through fill).
    #[allow(clippy::too_many_arguments)]
    fn proxy_request(
        &mut self,
        world: &World,
        t: u64,
        p: u16,
        client: ClientId,
        op_seq: u32,
        item: InodeId,
        write: bool,
    ) {
        let k = self.outbox.len();
        let n_mds = self.cfg.n_mds as usize;
        let client_shard = shard_of_client(client.0, self.cfg.n_clients, k);
        let cpu = self.cfg.proxy.proxy_cpu_us.max(1);
        let lo = self.proxy_lo;
        let px = &mut self.proxies[(p - lo) as usize];
        let done = px.free_at.max(t) + cpu;
        px.free_at = done;

        enum Action {
            Ack,
            Relay,
        }
        let action = if write {
            *px.pending.entry(item).or_insert(0) += 1;
            px.stats.coalesced += 1;
            Action::Ack
        } else if px.cached.contains(&item) && !px.pending.contains_key(&item) {
            px.stats.absorbed += 1;
            Action::Ack
        } else {
            px.stats.forwarded += 1;
            px.cached.insert(item);
            Action::Relay
        };
        let seq = px.send_seq;
        px.send_seq += 1;
        match action {
            Action::Ack => self.send(
                client_shard,
                done,
                Ev::Reply {
                    client,
                    op_seq,
                    item,
                    server: MdsId(0),
                    lease_until: 0,
                    ok: true,
                    from_proxy: true,
                    src: proxy_rank(p),
                    seq,
                },
            ),
            Action::Relay => {
                let auth = self.partition.authority(&world.snapshot.ns, item);
                let auth_shard = shard_of_node(auth.index(), n_mds, k);
                self.send(
                    auth_shard,
                    done,
                    Ev::Request {
                        node: auth,
                        client,
                        op_seq,
                        item,
                        write,
                        hop: 1,
                        src: proxy_rank(p),
                        seq,
                    },
                );
            }
        }
    }

    /// A coalesced delta lands at the authority: one CPU occupancy and
    /// one journal commit per item, however many client writes were
    /// folded into it. A dead authority drops the delta (the sharded
    /// model has no values to lose, only counters).
    fn node_coalesced(&mut self, world: &World, t: u64, m: MdsId, item: InodeId, _delta: u64) {
        if !world.alive[m.index()] {
            return;
        }
        let cpu = self.cfg.costs.cpu_per_op;
        let now = SimTime::from_micros(t);
        let n = self.node(m);
        let _ = n.m.journal.append(item);
        n.m.occupy(now, cpu);
        n.m.journal_disk.access(now, AccessKind::Write);
    }
}

// ---------------------------------------------------------------------
// barrier-global steps
// ---------------------------------------------------------------------

/// A scheduled global step, applied at the first window barrier at or
/// after its timestamp (the grid is K-independent, so the quantization
/// is identical for every shard count).
enum Step {
    Crash(MdsId),
    Recover(MdsId),
    Disk { scope: DiskScope, fault: Option<DiskFault>, node_salt: u64 },
    Net(Option<NetFaultSpec>),
}

/// Barrier-side elastic autoscaling state (ROADMAP item 3), the sharded
/// counterpart of [`crate::ElasticState`]. All mutations happen at
/// window barriers in global node order and draw nothing from any RNG,
/// so elastic runs keep the shard-count-invariance argument intact. The
/// sharded model simplifies the legacy mechanics in two documented ways:
/// scale-in hands off delegations and reroutes clients but approximates
/// the cache handoff (the heirs re-fetch on first touch), and scale-out
/// hands back the trees the node parked with instead of replaying its
/// journal.
struct ElasticCtl {
    /// Nodes parked by the controller — disjoint from crashed nodes.
    standby: Vec<bool>,
    /// Delegations each node held when it was parked; handed back on its
    /// next activation so a returning node is immediately useful.
    parked_roots: Vec<Vec<InodeId>>,
    high_streak: u32,
    low_streak: u32,
    cooldown: u32,
    scale_outs: u64,
    scale_ins: u64,
    /// Provisioned node-microseconds, integrated at heartbeat ticks.
    node_us: u64,
    last_account: u64,
}

impl ElasticCtl {
    fn new(n: usize) -> Self {
        ElasticCtl {
            standby: vec![false; n],
            parked_roots: vec![Vec::new(); n],
            high_streak: 0,
            low_streak: 0,
            cooldown: 0,
            scale_outs: 0,
            scale_ins: 0,
            node_us: 0,
            last_account: 0,
        }
    }
}

// ---------------------------------------------------------------------
// the sharded simulation
// ---------------------------------------------------------------------

/// A configured sharded run. Behavior is deterministic for a fixed shard
/// count and report-surface-identical across shard counts; see the
/// module docs for the argument.
pub struct ShardedSimulation {
    cfg: SimConfig,
    shards: Vec<Shard>,
    world: World,
    threads: Option<usize>,
    window_us: u64,
    now_us: u64,
    steps: Vec<(u64, Step)>,
    next_step: usize,
    next_heartbeat: u64,
    next_sample: u64,
    /// Next-due-step calendar: the earliest time any barrier-global step
    /// (fault, heartbeat, sample) is due. Barriers with `now` before
    /// this fast-exit [`Self::apply_steps`] without touching the three
    /// schedules above, and the idle-window skip uses it as the global
    /// step bound.
    next_due: u64,
    /// Barrier merge scratch, pooled across exchanges.
    merge_scratch: Vec<(u64, usize, Ev)>,
    measure_start: u64,
    migrations: u64,
    elastic: ElasticCtl,
    snapshots: Option<SnapshotSeries>,
}

/// Snapshot-series field layout (one slot per node each).
const SNAP_FIELDS: &[&str] = &["served", "forwarded", "received", "misses"];

impl ShardedSimulation {
    /// Builds a run over `shards` event queues. The shard count is
    /// clamped to the node count; `threads` follows the worker policy of
    /// the harness (`None` = `DYNMDS_THREADS` / detected parallelism).
    /// `make_workload` is called once per shard and must yield identical
    /// generators — each shard invokes only the clients it owns, and
    /// per-client streams are independent, so the copies stay in lock
    /// step.
    pub fn new(
        cfg: SimConfig,
        shards: usize,
        threads: Option<usize>,
        snapshot: Snapshot,
        make_workload: &dyn Fn(&dynmds_namespace::Namespace) -> Box<dyn Workload + Send>,
    ) -> Self {
        assert!(!cfg.obs.trace, "per-op tracing is not supported by the sharded engine");
        let k = shards.clamp(1, cfg.n_mds as usize);
        let n_mds = cfg.n_mds as usize;
        let n_clients = cfg.n_clients;
        let window_us = cfg.costs.net_hop.as_micros().max(1);
        let spread = cfg.costs.think_mean;

        let mut shard_vec = Vec::with_capacity(k);
        for s in 0..k {
            let workload = make_workload(&snapshot.ns);
            assert_eq!(
                workload.clients(),
                n_clients as usize,
                "workload must drive exactly the configured clients"
            );
            let node_lo = (0..n_mds).find(|&m| shard_of_node(m, n_mds, k) == s).unwrap_or(n_mds);
            let nodes: Vec<ShardNode> = (0..n_mds)
                .filter(|&m| shard_of_node(m, n_mds, k) == s)
                .map(|m| ShardNode {
                    m: MdsNode::new(
                        MdsId(m as u16),
                        cfg.cache_capacity,
                        cfg.journal_capacity,
                        cfg.costs.journal_disk,
                        cfg.popularity_half_life,
                    ),
                    osd: DiskModel::new(cfg.costs.osd_disk),
                    rng: SimRng::seed_from_u64(
                        cfg.seed ^ 0x0005_D0DE ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    send_seq: 0,
                    hot_pending: Vec::new(),
                    hb_served: 0,
                    hb_fetches: 0,
                    proxy_pop: dynmds_proxy::HotDetector::new(cfg.proxy.half_life_us),
                    proxy_hot_pending: Vec::new(),
                })
                .collect();
            let client_lo = (0..n_clients)
                .find(|&c| shard_of_client(c, n_clients, k) == s)
                .unwrap_or(n_clients);
            let clients: Vec<ClientSt> = (0..n_clients)
                .filter(|&c| shard_of_client(c, n_clients, k) == s)
                .map(|c| ClientSt {
                    rng: SimRng::seed_from_u64(
                        cfg.seed ^ 0x005D_C11E ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    routes: FxHashMap::default(),
                    leases: FxHashMap::default(),
                    op_seq: 0,
                    pending: None,
                    send_seq: 0,
                })
                .collect();
            let mut queue = EventQueue::with_delta_hint(cfg.costs.think_mean);
            // First requests spread over one think period, same ramp as
            // the legacy engine.
            for (i, _) in clients.iter().enumerate() {
                let c = client_lo + i as u32;
                let offset = if n_clients > 1 {
                    spread.as_micros() * c as u64 / n_clients as u64
                } else {
                    0
                };
                queue.schedule(SimTime::from_micros(offset), Ev::Issue(ClientId(c)));
            }
            let n_proxies = cfg.proxy.count as usize;
            let proxy_lo = (0..n_proxies)
                .find(|&p| shard_of_proxy(p, n_proxies, k) == s)
                .unwrap_or(n_proxies) as u16;
            let proxies: Vec<ProxySt> = (0..n_proxies)
                .filter(|&p| shard_of_proxy(p, n_proxies, k) == s)
                .map(|_| ProxySt::default())
                .collect();
            shard_vec.push(Shard {
                queue,
                partition: Partition::initial(cfg.strategy, &snapshot.ns, cfg.n_mds),
                cfg: cfg.clone(),
                hop_us: window_us,
                direct: k == 1,
                sent: false,
                node_lo,
                nodes,
                client_lo,
                clients,
                proxy_lo,
                proxies,
                workload,
                outbox: (0..k).map(|_| Vec::new()).collect(),
                batch: Vec::new(),
                stats: ShardStats::default(),
                lat: LatencyAgg::new(),
            });
        }

        let mut steps: Vec<(u64, Step)> = Vec::new();
        for ev in cfg.faults.expanded(n_mds) {
            match ev {
                FaultEvent::Crash { at, mds } => steps.push((at.as_micros(), Step::Crash(mds))),
                FaultEvent::Recover { at, mds } => steps.push((at.as_micros(), Step::Recover(mds))),
                FaultEvent::DiskDegrade { from, until, fault, scope } => {
                    let salt = cfg.seed ^ 0xD15C;
                    steps.push((
                        from.as_micros(),
                        Step::Disk { scope, fault: Some(fault), node_salt: salt },
                    ));
                    steps.push((
                        until.as_micros(),
                        Step::Disk { scope, fault: None, node_salt: salt },
                    ));
                }
                FaultEvent::NetFault { from, until, spec } => {
                    steps.push((from.as_micros(), Step::Net(Some(spec))));
                    steps.push((until.as_micros(), Step::Net(None)));
                }
            }
        }
        steps.sort_by_key(|(t, _)| *t); // stable: ties keep schedule order

        let snapshots =
            if cfg.obs.metrics { Some(SnapshotSeries::new(SNAP_FIELDS, n_mds)) } else { None };
        let heartbeat = cfg.heartbeat.as_micros();
        let sample = cfg.sample_every.as_micros();
        let mut sim = ShardedSimulation {
            world: World {
                snapshot,
                alive: vec![true; n_mds],
                members: vec![true; n_mds],
                net: None,
                replicated: FxHashSet::default(),
                proxy_hot: FxHashSet::default(),
            },
            shards: shard_vec,
            threads,
            window_us,
            now_us: 0,
            steps,
            next_step: 0,
            next_heartbeat: heartbeat,
            next_sample: sample,
            next_due: 0,
            merge_scratch: Vec::new(),
            measure_start: 0,
            migrations: 0,
            elastic: ElasticCtl::new(n_mds),
            snapshots,
            cfg,
        };
        if sim.cfg.elastic.enabled {
            sim.park_initial_standby();
        }
        sim.recompute_next_due();
        sim
    }

    /// Construction-time provisioning for elastic runs: the pool holds
    /// `n_mds` nodes but only `min_nodes` start active. Each parked
    /// node's delegations move round-robin onto the active set (across
    /// every shard's partition replica) and the starting membership is
    /// announced, so nothing routes to a parked node.
    fn park_initial_standby(&mut self) {
        let n_mds = self.cfg.n_mds as usize;
        let min = (self.cfg.elastic.min_nodes.max(1) as usize).min(n_mds);
        for parked in min..n_mds {
            let roots = match self.shards[0].partition.as_subtree() {
                Some(sp) => sp.delegations_of(MdsId(parked as u16)),
                None => Vec::new(),
            };
            for shard in &mut self.shards {
                if let Some(sp) = shard.partition.as_subtree_mut() {
                    for (j, &r) in roots.iter().enumerate() {
                        sp.delegate(r, MdsId((j % min) as u16));
                    }
                }
            }
            self.elastic.parked_roots[parked] = roots;
            self.elastic.standby[parked] = true;
            self.world.alive[parked] = false;
            self.world.members[parked] = false;
        }
    }

    /// Actual shard count after clamping.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Advances all shards to `until_us`, window by window. Idle window
    /// spans — no shard event, no calendar step due — are skipped in one
    /// jump (unless `force_dense`), staying on the same window grid so
    /// the state trajectory is byte-identical with skipping on or off.
    fn run_windows(&mut self, until_us: u64) {
        self.apply_steps(self.now_us);
        let skip = !self.cfg.force_dense;
        while self.now_us < until_us {
            if skip {
                self.skip_idle_windows(until_us);
                if self.now_us >= until_us {
                    break;
                }
            }
            let end = (self.now_us + self.window_us).min(until_us);
            let world = &self.world;
            let threads = self.threads;
            for_each_shard(&mut self.shards, threads, |s| s.run_window(world, end));
            self.now_us = end;
            self.exchange();
            self.apply_steps(end);
        }
    }

    /// From a barrier, jumps `now_us` forward over windows that would
    /// execute nothing: let `t_min` be the minimum over every shard's
    /// next live event time and the next-due calendar step. Every window
    /// strictly before the one containing `t_min` pops no event and its
    /// barrier applies no step (outboxes are empty at barriers, so there
    /// are no in-flight deliveries to account for) — running those
    /// windows densely would be a pure no-op, so the jump lands on the
    /// grid barrier `⌊(t_min − now) / w⌋·w` with identical state. When
    /// nothing is due before `until_us`, time jumps to the final barrier
    /// and its steps (due exactly at `until_us`, as in a dense run)
    /// apply. `t_min` is a function of the event-time multiset and the
    /// calendar, both shard-count-invariant at barriers, so every K
    /// takes the same jumps.
    fn skip_idle_windows(&mut self, until_us: u64) {
        let mut t_min = self.next_due;
        for s in &self.shards {
            if let Some(t) = s.queue.next_event_time() {
                t_min = t_min.min(t.as_micros());
            }
        }
        if t_min < self.now_us + self.window_us {
            return; // something due in the current window: no skip
        }
        if t_min >= until_us {
            self.now_us = until_us;
            self.apply_steps(until_us);
            return;
        }
        let barrier = self.now_us + (t_min - self.now_us) / self.window_us * self.window_us;
        self.now_us = barrier;
        self.apply_steps(barrier);
    }

    /// Barrier message exchange: each destination merges its inbound
    /// messages in `(send_time, src_shard, outbox order)` and schedules
    /// them at `send + net_hop`. Merge scratch and outbox buffers are
    /// pooled across barriers, and barriers where no shard sent anything
    /// skip the k×k scan entirely.
    fn exchange(&mut self) {
        let k = self.shards.len();
        if k == 1 {
            return; // Shard::send went direct; outboxes stay empty
        }
        if !self.shards.iter().any(|s| s.sent) {
            return;
        }
        for s in &mut self.shards {
            s.sent = false;
        }
        let hop = self.window_us;
        let mut merged = std::mem::take(&mut self.merge_scratch);
        for dst in 0..k {
            merged.clear();
            for src in 0..k {
                // drain (not take) keeps the outbox allocation alive.
                merged.extend(self.shards[src].outbox[dst].drain(..).map(|m| (m.send, src, m.ev)));
            }
            if merged.is_empty() {
                continue;
            }
            merged.sort_by_key(|(send, src, _)| (*send, *src)); // stable
            let q = &mut self.shards[dst].queue;
            for (send, _, ev) in merged.drain(..) {
                q.schedule(SimTime::from_micros(send + hop), ev);
            }
        }
        self.merge_scratch = merged;
    }

    /// Recomputes the next-due-step calendar after anything that moves
    /// one of the three global schedules.
    fn recompute_next_due(&mut self) {
        let step = self.steps.get(self.next_step).map_or(u64::MAX, |s| s.0);
        self.next_due = step.min(self.next_heartbeat).min(self.next_sample);
    }

    /// Applies every pending global step with timestamp ≤ `now`, then
    /// any heartbeat / sample ticks that have come due. O(1) via the
    /// next-due calendar when nothing is due (the per-window case).
    fn apply_steps(&mut self, now: u64) {
        if now < self.next_due {
            return;
        }
        while self.next_step < self.steps.len() && self.steps[self.next_step].0 <= now {
            match &self.steps[self.next_step] {
                (_, Step::Crash(m)) => {
                    let m = *m;
                    self.crash(m);
                }
                (_, Step::Recover(m)) => {
                    let m = *m;
                    self.world.alive[m.index()] = true;
                    // A recovered node is back in service whatever took it
                    // out; scaling re-parks it if the load doesn't justify
                    // the capacity.
                    self.world.members[m.index()] = true;
                    self.elastic.standby[m.index()] = false;
                }
                (_, Step::Disk { scope, fault, node_salt }) => {
                    let (scope, fault, salt) = (*scope, *fault, *node_salt);
                    for shard in &mut self.shards {
                        for n in &mut shard.nodes {
                            let node_seed =
                                salt ^ (n.m.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            match scope {
                                DiskScope::Osd => n.osd.set_fault(fault, node_seed),
                                DiskScope::Journal => n.m.journal_disk.set_fault(fault, node_seed),
                                DiskScope::All => {
                                    n.osd.set_fault(fault, node_seed);
                                    n.m.journal_disk.set_fault(fault, node_seed ^ 1);
                                }
                            }
                        }
                    }
                }
                (_, Step::Net(spec)) => self.world.net = *spec,
            }
            self.next_step += 1;
        }
        while self.next_heartbeat <= now {
            self.heartbeat(self.next_heartbeat);
            self.next_heartbeat += self.cfg.heartbeat.as_micros().max(self.window_us);
        }
        while self.next_sample <= now {
            self.sample(self.next_sample);
            self.next_sample += self.cfg.sample_every.as_micros().max(self.window_us);
        }
        self.recompute_next_due();
    }

    /// Node failure: mark dead, drop its cache, and hand its delegations
    /// to the next live node in the ring (subtree strategies). All
    /// partition replicas receive the same deltas.
    fn crash(&mut self, dead: MdsId) {
        let n_mds = self.cfg.n_mds as usize;
        let k = self.shards.len();
        self.world.alive[dead.index()] = false;
        // A crashed node loses its in-memory state.
        let cache_capacity = self.cfg.cache_capacity;
        let node = self.shards[shard_of_node(dead.index(), n_mds, k)].node(dead);
        node.m.cache = MetaCache::new(cache_capacity);
        let heir = (1..n_mds)
            .map(|d| (dead.index() + d) % n_mds)
            .find(|&m| self.world.alive[m])
            .map(|m| MdsId(m as u16));
        let Some(heir) = heir else { return };
        let roots: Vec<InodeId> = match self.shards[0].partition.as_subtree_mut() {
            Some(sp) => sp.delegations_of(dead),
            None => return,
        };
        if roots.is_empty() {
            return;
        }
        for shard in &mut self.shards {
            if let Some(sp) = shard.partition.as_subtree_mut() {
                for &r in &roots {
                    sp.delegate(r, heir);
                }
            }
        }
        let moved = roots.len() as u64;
        self.shards[shard_of_node(dead.index(), n_mds, k)].node(dead).m.life.subtrees_out += moved;
        self.shards[shard_of_node(heir.index(), n_mds, k)].node(heir).m.life.subtrees_in += moved;
    }

    /// Heartbeat: promote replication candidates cluster-wide (traffic
    /// control, quantized to the heartbeat), run the elastic controller,
    /// then the load balancer (rebalancing strategies only).
    fn heartbeat(&mut self, at: u64) {
        // Traffic control: union of per-node candidates. Set semantics
        // make the insertion order irrelevant (and the set is only ever
        // probed, never iterated).
        for shard in &mut self.shards {
            for n in &mut shard.nodes {
                for item in n.hot_pending.drain(..) {
                    self.world.replicated.insert(item);
                }
            }
        }
        // Hotspot proxy tier: announce the nodes' hot candidates (same
        // set semantics as traffic control) and push coalesced deltas to
        // the authorities.
        if self.cfg.proxy.enabled() {
            for shard in &mut self.shards {
                for n in &mut shard.nodes {
                    for item in n.proxy_hot_pending.drain(..) {
                        self.world.proxy_hot.insert(item);
                    }
                }
            }
            self.flush_proxies(at);
        }
        if !self.cfg.balancing && !self.cfg.elastic.enabled {
            return;
        }
        let n_mds = self.cfg.n_mds as usize;
        let k = self.shards.len();
        let miss_weight = self.cfg.miss_weight;
        // Load per node since the last heartbeat.
        let mut loads = vec![0f64; n_mds];
        for shard in &mut self.shards {
            for n in &mut shard.nodes {
                let served = n.m.life.served - n.hb_served;
                let fetches = n.m.life.disk_fetches - n.hb_fetches;
                n.hb_served = n.m.life.served;
                n.hb_fetches = n.m.life.disk_fetches;
                loads[n.m.id.index()] = served as f64 + miss_weight * fetches as f64;
            }
        }
        if self.cfg.elastic.enabled {
            self.elastic_tick(at, &loads);
        }
        if !self.cfg.balancing {
            return;
        }
        let live: Vec<usize> = (0..n_mds).filter(|&m| self.world.alive[m]).collect();
        if live.len() < 2 {
            return;
        }
        let mean = live.iter().map(|&m| loads[m]).sum::<f64>() / live.len() as f64;
        if mean <= 0.0 {
            return;
        }
        let root = self.world.snapshot.ns.root();
        let mut budget = self.cfg.max_migrations_per_heartbeat;
        let mut deltas: Vec<(InodeId, MdsId)> = Vec::new();
        for &m in &live {
            if budget == 0 {
                break;
            }
            if loads[m] <= self.cfg.imbalance_ratio * mean {
                continue;
            }
            // Shed the first (sorted) delegation that is not the tree
            // root to the least-loaded live node.
            let donor = MdsId(m as u16);
            let roots = match self.shards[0].partition.as_subtree_mut() {
                Some(sp) => sp.delegations_of(donor),
                None => return,
            };
            let Some(&subtree) = roots.iter().find(|&&r| r != root) else { continue };
            let target = *live
                .iter()
                .min_by(|&&a, &&b| loads[a].partial_cmp(&loads[b]).unwrap().then(a.cmp(&b)))
                .unwrap();
            if target == m {
                continue;
            }
            deltas.push((subtree, MdsId(target as u16)));
            self.shards[shard_of_node(m, n_mds, k)].node(donor).m.life.subtrees_out += 1;
            self.shards[shard_of_node(target, n_mds, k)]
                .node(MdsId(target as u16))
                .m
                .life
                .subtrees_in += 1;
            budget -= 1;
            self.migrations += 1;
        }
        for shard in &mut self.shards {
            if let Some(sp) = shard.partition.as_subtree_mut() {
                for &(r, to) in &deltas {
                    sp.delegate(r, to);
                }
            }
        }
    }

    /// Heartbeat flush of proxy-coalesced write deltas: each proxy (in
    /// global id order) drains its pending map sorted by item and sends
    /// one `Coalesced` message per item to the item's live authority
    /// (ring-walk past dead nodes; a fully-dead cluster drops the
    /// delta). Deliveries are scheduled at `at + L`, the latency any
    /// cross-shard message pays; `at` and the message contents are
    /// K-independent, so the K-invariance argument is untouched.
    fn flush_proxies(&mut self, at: u64) {
        let n_mds = self.cfg.n_mds as usize;
        let k = self.shards.len();
        let hop = self.window_us;
        for s in 0..k {
            for i in 0..self.shards[s].proxies.len() {
                let mut drained: Vec<(InodeId, u64)> =
                    self.shards[s].proxies[i].pending.drain().collect();
                if drained.is_empty() {
                    continue;
                }
                drained.sort();
                let p = self.shards[s].proxy_lo + i as u16;
                {
                    let px = &mut self.shards[s].proxies[i];
                    px.stats.flushes += 1;
                    px.stats.flushed_items += drained.len() as u64;
                }
                for (item, delta) in drained {
                    let auth = self.shards[s].partition.authority(&self.world.snapshot.ns, item);
                    let Some(auth) = self.live_ring(auth) else { continue };
                    let seq = {
                        let px = &mut self.shards[s].proxies[i];
                        let seq = px.send_seq;
                        px.send_seq += 1;
                        seq
                    };
                    let dst = shard_of_node(auth.index(), n_mds, k);
                    self.shards[dst].queue.schedule(
                        SimTime::from_micros(at + hop),
                        Ev::Coalesced { node: auth, item, delta, src: proxy_rank(p), seq },
                    );
                }
            }
        }
    }

    /// First live node at or after `m` in the ring (`None` when the
    /// whole cluster is down).
    fn live_ring(&self, m: MdsId) -> Option<MdsId> {
        let n = self.cfg.n_mds as usize;
        (0..n).map(|d| (m.index() + d) % n).find(|&i| self.world.alive[i]).map(|i| MdsId(i as u16))
    }

    /// One elastic controller step (mirrors the legacy
    /// [`Cluster::elastic_tick`](crate::Cluster)): account provisioned
    /// node-time under the population that held since the last tick, then
    /// apply the watermark/sustain/cooldown policy to the mean per-second
    /// load of the live nodes.
    fn elastic_tick(&mut self, at: u64, loads: &[f64]) {
        let n_mds = self.cfg.n_mds as usize;
        let live: Vec<usize> = (0..n_mds).filter(|&m| self.world.alive[m]).collect();
        self.elastic.node_us += live.len() as u64 * at.saturating_sub(self.elastic.last_account);
        self.elastic.last_account = self.elastic.last_account.max(at);
        if live.is_empty() {
            self.elastic.high_streak = 0;
            self.elastic.low_streak = 0;
            return;
        }

        let hb_secs = self.cfg.heartbeat.as_secs_f64();
        let mean_rate = live.iter().map(|&m| loads[m]).sum::<f64>() / live.len() as f64 / hb_secs;
        let e = self.cfg.elastic;
        if mean_rate > e.high_load_per_s {
            self.elastic.high_streak += 1;
            self.elastic.low_streak = 0;
        } else if mean_rate < e.low_load_per_s {
            self.elastic.low_streak += 1;
            self.elastic.high_streak = 0;
        } else {
            self.elastic.high_streak = 0;
            self.elastic.low_streak = 0;
        }
        if self.elastic.cooldown > 0 {
            self.elastic.cooldown -= 1;
            return;
        }

        if self.elastic.high_streak >= e.sustain {
            // Lowest-indexed standby node; crashed nodes are not eligible
            // (they come back through recovery, not scaling).
            let candidate = (0..n_mds).find(|&i| self.elastic.standby[i] && !self.world.alive[i]);
            if let Some(i) = candidate {
                self.elastic_activate(MdsId(i as u16));
                self.elastic.high_streak = 0;
                self.elastic.cooldown = e.cooldown_heartbeats;
            }
        } else if self.elastic.low_streak >= e.sustain && live.len() > (e.min_nodes.max(1) as usize)
        {
            // Least-loaded live node departs; index breaks ties.
            let victim = *live
                .iter()
                .min_by(|&&a, &&b| loads[a].partial_cmp(&loads[b]).expect("finite").then(a.cmp(&b)))
                .expect("live nodes exist");
            self.elastic_park(MdsId(victim as u16), loads);
            self.elastic.low_streak = 0;
            self.elastic.cooldown = e.cooldown_heartbeats;
        }
    }

    /// Scale-out: a standby node rejoins and is handed back the
    /// delegations it parked with (empty on first-ever activation — the
    /// balancer then migrates load onto it, as onto a recovered node).
    fn elastic_activate(&mut self, m: MdsId) {
        let n_mds = self.cfg.n_mds as usize;
        let k = self.shards.len();
        self.world.alive[m.index()] = true;
        self.world.members[m.index()] = true;
        self.elastic.standby[m.index()] = false;
        self.elastic.scale_outs += 1;
        let roots = std::mem::take(&mut self.elastic.parked_roots[m.index()]);
        if roots.is_empty() {
            return;
        }
        // Count the handoff against the current owners, in root order.
        let owners: Vec<MdsId> = {
            let sp = self.shards[0].partition.as_subtree().expect("elastic is a subtree strategy");
            roots.iter().map(|&r| sp.delegation_of(r).expect("delegated root")).collect()
        };
        for &from in &owners {
            if from == m {
                continue;
            }
            self.shards[shard_of_node(from.index(), n_mds, k)].node(from).m.life.subtrees_out += 1;
            self.shards[shard_of_node(m.index(), n_mds, k)].node(m).m.life.subtrees_in += 1;
        }
        for shard in &mut self.shards {
            if let Some(sp) = shard.partition.as_subtree_mut() {
                for &r in &roots {
                    sp.delegate(r, m);
                }
            }
        }
    }

    /// Scale-in: voluntary departure, distinct from a crash. The victim
    /// hands every delegation to the surviving nodes (round-robin over
    /// them, least-loaded first), clients that knew it as an authority
    /// are redirected, and only then does it stop serving and release its
    /// RAM — nothing orphaned, no request left to time out against it.
    fn elastic_park(&mut self, victim: MdsId, loads: &[f64]) {
        let n_mds = self.cfg.n_mds as usize;
        let k = self.shards.len();
        let mut heirs: Vec<usize> =
            (0..n_mds).filter(|&i| self.world.alive[i] && i != victim.index()).collect();
        if heirs.is_empty() {
            return;
        }
        heirs.sort_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite").then(a.cmp(&b)));
        let roots = match self.shards[0].partition.as_subtree() {
            Some(sp) => sp.delegations_of(victim),
            None => Vec::new(),
        };
        for (j, &r) in roots.iter().enumerate() {
            let heir = MdsId(heirs[j % heirs.len()] as u16);
            for shard in &mut self.shards {
                if let Some(sp) = shard.partition.as_subtree_mut() {
                    sp.delegate(r, heir);
                }
            }
            self.shards[shard_of_node(heir.index(), n_mds, k)].node(heir).m.life.subtrees_in += 1;
        }
        self.shards[shard_of_node(victim.index(), n_mds, k)].node(victim).m.life.subtrees_out +=
            roots.len() as u64;
        // The departing node's goodbye: rewrite every client route that
        // named it to the post-handoff authority. Per-entry rewrites are
        // order-independent, so map iteration order cannot leak in.
        let ns = &self.world.snapshot.ns;
        for shard in &mut self.shards {
            let Some(sp) = shard.partition.as_subtree() else { continue };
            for cl in &mut shard.clients {
                for (&item, m) in cl.routes.iter_mut() {
                    if *m == victim {
                        *m = sp.authority(ns, item);
                    }
                }
            }
        }
        // Park: drop membership and RAM only after the handoff.
        self.elastic.parked_roots[victim.index()] = roots;
        self.elastic.standby[victim.index()] = true;
        self.elastic.scale_ins += 1;
        self.world.alive[victim.index()] = false;
        self.world.members[victim.index()] = false;
        let cap = self.cfg.cache_capacity;
        self.shards[shard_of_node(victim.index(), n_mds, k)].node(victim).m.cache =
            MetaCache::new(cap);
    }

    /// Sample tick: one snapshot row of per-node window counters.
    fn sample(&mut self, at: u64) {
        let Some(series) = self.snapshots.as_mut() else {
            // Window counters still get drained so they always mean
            // "since the last sample".
            for shard in &mut self.shards {
                for n in &mut shard.nodes {
                    n.m.take_window();
                }
            }
            return;
        };
        let n_mds = self.cfg.n_mds as usize;
        let mut wins = vec![(0u64, 0u64, 0u64, 0u64); n_mds];
        for shard in &mut self.shards {
            for n in &mut shard.nodes {
                let w = n.m.take_window();
                wins[n.m.id.index()] = (w.served, w.forwarded, w.received, w.misses);
            }
        }
        let mut row = Vec::with_capacity(SNAP_FIELDS.len() * n_mds);
        row.extend(wins.iter().map(|w| w.0));
        row.extend(wins.iter().map(|w| w.1));
        row.extend(wins.iter().map(|w| w.2));
        row.extend(wins.iter().map(|w| w.3));
        series.push_row(at, row);
    }

    /// Resets measured statistics (end of warm-up).
    pub fn reset_measurement(&mut self) {
        for shard in &mut self.shards {
            shard.stats = ShardStats::default();
            shard.lat = LatencyAgg::new();
            for px in &mut shard.proxies {
                px.stats = ProxyShardStats::default();
            }
            for n in &mut shard.nodes {
                n.m.cache.reset_stats();
                n.m.life = Default::default();
                n.m.take_window();
                n.hb_served = 0;
                n.hb_fetches = 0;
            }
        }
        self.migrations = 0;
        self.elastic.node_us = 0;
        self.elastic.last_account = self.now_us;
        if let Some(s) = self.snapshots.as_mut() {
            s.reset();
        }
        self.measure_start = self.now_us;
    }

    /// Advances virtual time to `until` (no-op if already past it).
    pub fn run_until(&mut self, until: SimTime) {
        self.run_windows(until.as_micros());
    }

    /// Runs `warmup` unmeasured, resets statistics, runs `measure` more
    /// and reports.
    pub fn run_measured(mut self, warmup: SimDuration, measure: SimDuration) -> ShardReport {
        self.run_windows(warmup.as_micros());
        self.reset_measurement();
        self.run_windows(warmup.as_micros() + measure.as_micros());
        self.finish()
    }

    /// Stops and produces the report. All aggregation walks shards and
    /// nodes in global id order, so the output is identical for every
    /// shard count.
    pub fn finish(self) -> ShardReport {
        let mut stats = ShardStats::default();
        let mut lat = LatencyAgg::new();
        let mut ptotals = ProxyShardStats::default();
        let mut nodes = Vec::with_capacity(self.cfg.n_mds as usize);
        for shard in &self.shards {
            stats.ops += shard.stats.ops;
            stats.lease_hits += shard.stats.lease_hits;
            stats.timeouts += shard.stats.timeouts;
            stats.retries += shard.stats.retries;
            stats.failed += shard.stats.failed;
            stats.stale += shard.stats.stale;
            lat.merge(&shard.lat);
            for px in &shard.proxies {
                ptotals.absorbed += px.stats.absorbed;
                ptotals.coalesced += px.stats.coalesced;
                ptotals.forwarded += px.stats.forwarded;
                ptotals.flushes += px.stats.flushes;
                ptotals.flushed_items += px.stats.flushed_items;
            }
            for n in &shard.nodes {
                let cs = n.m.cache.stats();
                nodes.push(NodeSnapshot {
                    hit_rate: cs.hit_rate(),
                    prefix_fraction: n.m.cache.prefix_fraction(),
                    cache_len: n.m.cache.len(),
                    served: n.m.life.served,
                    forwarded: n.m.life.forwarded,
                    received: n.m.life.received,
                    disk_fetches: n.m.life.disk_fetches,
                    replica_serves: n.m.life.replica_serves,
                });
            }
        }
        // Provisioned capacity over the measurement window: the heartbeat
        // integral closed out to `now` for elastic runs, the full pool for
        // everything else.
        let provisioned_node_us = if self.cfg.elastic.enabled {
            let live = self.world.alive.iter().filter(|a| **a).count() as u64;
            self.elastic.node_us + live * self.now_us.saturating_sub(self.elastic.last_account)
        } else {
            self.cfg.n_mds as u64 * (self.now_us - self.measure_start)
        };
        let obs = self.cfg.obs.metrics.then(|| {
            build_obs(
                &self.cfg,
                &stats,
                &lat,
                &nodes,
                self.migrations,
                (self.elastic.scale_outs, self.elastic.scale_ins),
                &ptotals,
                self.snapshots.as_ref(),
            )
        });
        ShardReport {
            strategy: self.cfg.strategy,
            n_mds: self.cfg.n_mds,
            shards: self.shards.len(),
            proxies: self.cfg.proxy.count,
            proxy_absorbed: ptotals.absorbed,
            proxy_coalesced: ptotals.coalesced,
            proxy_forwarded: ptotals.forwarded,
            proxy_flushed_items: ptotals.flushed_items,
            proxy_flushes: ptotals.flushes,
            measure_start: SimTime::from_micros(self.measure_start),
            measure_end: SimTime::from_micros(self.now_us),
            nodes,
            ops: stats.ops,
            lease_hits: stats.lease_hits,
            timeouts: stats.timeouts,
            retries: stats.retries,
            failed: stats.failed,
            stale_replies: stats.stale,
            migrations: self.migrations,
            scale_outs: self.elastic.scale_outs,
            scale_ins: self.elastic.scale_ins,
            provisioned_node_us,
            latency: lat,
            obs,
        }
    }
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

/// Results of a sharded run. Every field is derived from commutative
/// per-entity aggregates read out in global id order — the
/// shard-count-invariant report surface.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Cluster size.
    pub n_mds: u16,
    /// Shard count the run executed with (not part of `render`, which
    /// must be byte-identical across shard counts).
    pub shards: usize,
    /// Proxy-tier size the run was configured with (0 = tier off; every
    /// proxy field below is then 0 and absent from `render`).
    pub proxies: u16,
    /// Ops absorbed at a proxy (hot cached reads).
    pub proxy_absorbed: u64,
    /// Writes coalesced at a proxy (acked immediately, flushed later).
    pub proxy_coalesced: u64,
    /// Hot ops a proxy relayed to the authority.
    pub proxy_forwarded: u64,
    /// Coalesced item deltas delivered to authorities.
    pub proxy_flushed_items: u64,
    /// Heartbeat flush batches with at least one delta.
    pub proxy_flushes: u64,
    /// Measurement window start.
    pub measure_start: SimTime,
    /// Measurement window end.
    pub measure_end: SimTime,
    /// Per-node lifetime counters, id order.
    pub nodes: Vec<NodeSnapshot>,
    /// Completed client operations in the measurement window.
    pub ops: u64,
    /// Operations served from a client lease.
    pub lease_hits: u64,
    /// Lost-message timeouts observed.
    pub timeouts: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Operations abandoned at the retry cap.
    pub failed: u64,
    /// Replies discarded as stale (duplicates, late retries).
    pub stale_replies: u64,
    /// Balancer subtree migrations.
    pub migrations: u64,
    /// Elastic standby activations over the whole run.
    pub scale_outs: u64,
    /// Elastic voluntary departures over the whole run.
    pub scale_ins: u64,
    /// Provisioned capacity consumed in the measurement window, in
    /// node-microseconds (`n_mds` × span for statically provisioned
    /// runs; the heartbeat-integrated live population for elastic runs).
    pub provisioned_node_us: u64,
    /// Completion-latency aggregate.
    pub latency: LatencyAgg,
    /// Observability export, when `cfg.obs.metrics` was on.
    pub obs: Option<crate::obs::ObsExport>,
}

impl ShardReport {
    /// Measurement span in seconds.
    pub fn span_secs(&self) -> f64 {
        (self.measure_end.as_micros() - self.measure_start.as_micros()) as f64 / 1e6
    }

    /// Provisioned capacity in node-seconds.
    pub fn provisioned_node_secs(&self) -> f64 {
        self.provisioned_node_us as f64 / 1e6
    }

    /// Completed ops per second per MDS.
    pub fn avg_mds_throughput(&self) -> f64 {
        let span = self.span_secs();
        if span <= 0.0 {
            0.0
        } else {
            self.ops as f64 / span / self.n_mds as f64
        }
    }

    /// Renders the shard-count-invariant text report (the surface the
    /// golden-diff CI step compares).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== sharded {:?}: {} MDS, {:.1}s measured ===",
            self.strategy,
            self.n_mds,
            self.span_secs()
        );
        let _ = writeln!(
            out,
            "ops {} ({:.1}/s per MDS)  lease hits {}  timeouts {}  retries {}  failed {}  stale {}  migrations {}",
            self.ops,
            self.avg_mds_throughput(),
            self.lease_hits,
            self.timeouts,
            self.retries,
            self.failed,
            self.stale_replies,
            self.migrations
        );
        if self.strategy == StrategyKind::ElasticSubtree {
            let _ = writeln!(
                out,
                "elastic: node-secs {:.1}  scale-outs {}  scale-ins {}",
                self.provisioned_node_secs(),
                self.scale_outs,
                self.scale_ins
            );
        }
        if self.proxies > 0 {
            let _ = writeln!(
                out,
                "proxy ({}): absorbed {}  coalesced {}  forwarded {}  flushed {} in {} batches",
                self.proxies,
                self.proxy_absorbed,
                self.proxy_coalesced,
                self.proxy_forwarded,
                self.proxy_flushed_items,
                self.proxy_flushes
            );
        }
        let _ = writeln!(
            out,
            "latency µs: mean {:.1}  p50 {}  p99 {}  max {}",
            self.latency.mean_us(),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.99),
            if self.latency.count == 0 { 0 } else { self.latency.max_us }
        );
        let mut table = dynmds_metrics::Table::new(
            "per-node",
            &["mds", "served", "fwd", "recv", "hit%", "prefix%", "cached", "fetches", "replica"],
        );
        for (i, n) in self.nodes.iter().enumerate() {
            table.row(&[
                i.to_string(),
                n.served.to_string(),
                n.forwarded.to_string(),
                n.received.to_string(),
                format!("{:.1}", n.hit_rate * 100.0),
                format!("{:.1}", n.prefix_fraction * 100.0),
                n.cache_len.to_string(),
                n.disk_fetches.to_string(),
                n.replica_serves.to_string(),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// Builds the deterministic obs export from the aggregates: counters in
/// fixed registration order, per-node slots in id order, latency
/// buckets, and the barrier-sampled snapshot series.
#[allow(clippy::too_many_arguments)]
fn build_obs(
    cfg: &SimConfig,
    stats: &ShardStats,
    lat: &LatencyAgg,
    nodes: &[NodeSnapshot],
    migrations: u64,
    (scale_outs, scale_ins): (u64, u64),
    ptotals: &ProxyShardStats,
    snapshots: Option<&SnapshotSeries>,
) -> crate::obs::ObsExport {
    let n_mds = cfg.n_mds as usize;
    let mut reg = Registry::new();
    let ops = reg.counter("client.ops", 1);
    let lease = reg.counter("client.lease_hits", 1);
    let timeouts = reg.counter("client.timeouts", 1);
    let retries = reg.counter("client.retries", 1);
    let failed = reg.counter("client.failed", 1);
    let stale = reg.counter("client.stale_replies", 1);
    let migr = reg.counter("balancer.migrations", 1);
    let souts = reg.counter("elastic_scale_outs", 1);
    let sins = reg.counter("elastic_scale_ins", 1);
    let served = reg.counter("mds.served", n_mds);
    let forwarded = reg.counter("mds.forwarded", n_mds);
    let received = reg.counter("mds.received", n_mds);
    let fetches = reg.counter("mds.disk_fetches", n_mds);
    let replica = reg.counter("mds.replica_serves", n_mds);
    let lat_hist = reg.counter("latency.log2_us", LAT_BUCKETS);
    reg.add(ops, 0, stats.ops);
    reg.add(lease, 0, stats.lease_hits);
    reg.add(timeouts, 0, stats.timeouts);
    reg.add(retries, 0, stats.retries);
    reg.add(failed, 0, stats.failed);
    reg.add(stale, 0, stats.stale);
    reg.add(migr, 0, migrations);
    reg.add(souts, 0, scale_outs);
    reg.add(sins, 0, scale_ins);
    for (i, n) in nodes.iter().enumerate() {
        reg.add(served, i, n.served);
        reg.add(forwarded, i, n.forwarded);
        reg.add(received, i, n.received);
        reg.add(fetches, i, n.disk_fetches);
        reg.add(replica, i, n.replica_serves);
    }
    for (i, &c) in lat.buckets.iter().enumerate() {
        reg.add(lat_hist, i, c);
    }
    // Proxy counters register last and only when the tier is on, so
    // proxy-off metric exports are byte-identical to pre-proxy builds.
    if cfg.proxy.count > 0 {
        let pa = reg.counter("proxy.absorbed", 1);
        let pc = reg.counter("proxy.coalesced", 1);
        let pf = reg.counter("proxy.forwarded", 1);
        let pfi = reg.counter("proxy.flushed_items", 1);
        let pfb = reg.counter("proxy.flushes", 1);
        reg.add(pa, 0, ptotals.absorbed);
        reg.add(pc, 0, ptotals.coalesced);
        reg.add(pf, 0, ptotals.forwarded);
        reg.add(pfi, 0, ptotals.flushed_items);
        reg.add(pfb, 0, ptotals.flushes);
    }
    let snapshots_jsonl = snapshots.map(|s| s.to_jsonl()).unwrap_or_default();
    let summary = format!(
        "sharded run: {} ops, {} lease hits, {} timeouts, {} retries, {} migrations, {} scale-outs, {} scale-ins\n",
        stats.ops,
        stats.lease_hits,
        stats.timeouts,
        stats.retries,
        migrations,
        scale_outs,
        scale_ins
    );
    crate::obs::ObsExport {
        metrics_jsonl: reg.to_jsonl(),
        snapshots_jsonl,
        trace_jsonl: None,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;
    use dynmds_workload::{GeneralWorkload, WorkloadConfig};

    fn build(strategy: StrategyKind, shards: usize, obs: bool) -> ShardedSimulation {
        let mut cfg = SimConfig::small(strategy);
        cfg.client_leases = true;
        if obs {
            cfg.obs = dynmds_obs::ObsConfig::metrics_only();
        }
        let snap = NamespaceSpec::with_target_items(24, 6_000, cfg.seed ^ 0xF5).generate();
        let n_clients = cfg.n_clients as usize;
        let homes = snap.user_homes.clone();
        let shared = snap.shared_roots.clone();
        let wl_seed = cfg.seed ^ 0x17;
        ShardedSimulation::new(cfg, shards, Some(1), snap, &move |ns| {
            Box::new(GeneralWorkload::new(
                WorkloadConfig { seed: wl_seed, ..Default::default() },
                n_clients,
                &homes,
                &shared,
                ns,
            ))
        })
    }

    fn run(strategy: StrategyKind, shards: usize, obs: bool) -> ShardReport {
        build(strategy, shards, obs)
            .run_measured(SimDuration::from_secs(2), SimDuration::from_secs(4))
    }

    #[test]
    fn sharded_run_serves_operations() {
        let r = run(StrategyKind::DynamicSubtree, 1, false);
        assert!(r.ops > 1_000, "only {} ops completed", r.ops);
        assert!(r.latency.count > 0);
        assert!(r.nodes.iter().map(|n| n.served).sum::<u64>() > 0);
    }

    #[test]
    fn fixed_shard_count_is_deterministic() {
        let a = run(StrategyKind::DynamicSubtree, 2, true);
        let b = run(StrategyKind::DynamicSubtree, 2, true);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.obs.as_ref().unwrap().metrics_jsonl, b.obs.as_ref().unwrap().metrics_jsonl);
        assert_eq!(
            a.obs.as_ref().unwrap().snapshots_jsonl,
            b.obs.as_ref().unwrap().snapshots_jsonl
        );
    }

    #[test]
    fn report_is_invariant_across_shard_counts() {
        let base = run(StrategyKind::DynamicSubtree, 1, true);
        for k in [2usize, 4] {
            let r = run(StrategyKind::DynamicSubtree, k, true);
            assert_eq!(base.render(), r.render(), "render diverged at {k} shards");
            assert_eq!(
                base.obs.as_ref().unwrap().metrics_jsonl,
                r.obs.as_ref().unwrap().metrics_jsonl,
                "obs metrics diverged at {k} shards"
            );
            assert_eq!(
                base.obs.as_ref().unwrap().snapshots_jsonl,
                r.obs.as_ref().unwrap().snapshots_jsonl,
                "obs snapshots diverged at {k} shards"
            );
        }
    }

    /// Proxy-on run over a deliberately narrow hot set so the tier
    /// actually absorbs work inside a short test window.
    fn run_proxied(shards: usize) -> ShardReport {
        use dynmds_workload::FlashCrowd;
        let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        cfg.client_leases = false;
        cfg.obs = dynmds_obs::ObsConfig::metrics_only();
        cfg.proxy.count = 2;
        cfg.proxy.hot_threshold = 8.0;
        let snap = NamespaceSpec::with_target_items(24, 6_000, cfg.seed ^ 0xF5).generate();
        let n_clients = cfg.n_clients as usize;
        ShardedSimulation::new(cfg, shards, Some(1), snap, &move |ns| {
            let target = ns.walk(ns.root()).find(|&i| !ns.is_dir(i)).expect("a file exists");
            Box::new(FlashCrowd::new(target, n_clients))
        })
        .run_measured(SimDuration::from_secs(2), SimDuration::from_secs(4))
    }

    #[test]
    fn proxied_run_absorbs_hot_traffic() {
        let r = run_proxied(1);
        assert!(r.ops > 1_000, "only {} ops completed", r.ops);
        assert!(
            r.proxy_absorbed + r.proxy_coalesced > 0,
            "flash crowd never engaged the proxies: {r:?}"
        );
        assert!(r.proxy_flushed_items <= r.proxy_coalesced);
    }

    #[test]
    fn proxied_report_is_invariant_across_shard_counts() {
        let base = run_proxied(1);
        assert!(base.proxy_absorbed + base.proxy_coalesced > 0, "tier must act for this to bite");
        for k in [2usize, 4] {
            let r = run_proxied(k);
            assert_eq!(base.render(), r.render(), "render diverged at {k} shards");
            assert_eq!(
                base.obs.as_ref().unwrap().metrics_jsonl,
                r.obs.as_ref().unwrap().metrics_jsonl,
                "obs metrics diverged at {k} shards"
            );
        }
    }

    #[test]
    fn hashed_strategy_runs_and_never_forwards() {
        let r = run(StrategyKind::FileHash, 2, false);
        assert!(r.ops > 1_000);
        assert_eq!(r.nodes.iter().map(|n| n.forwarded).sum::<u64>(), 0);
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let sim = build(StrategyKind::DynamicSubtree, 64, false);
        assert_eq!(sim.shard_count(), 4, "small config has 4 nodes");
    }

    /// Elastic pool over a day/night load shape: tight heartbeat so the
    /// controller gets enough ticks inside a short test run.
    fn build_elastic(shards: usize, high: f64, low: f64) -> ShardedSimulation {
        use dynmds_workload::DiurnalWorkload;
        let mut cfg = SimConfig::small(StrategyKind::ElasticSubtree);
        cfg.client_leases = true;
        cfg.obs = dynmds_obs::ObsConfig::metrics_only();
        cfg.heartbeat = SimDuration::from_millis(250);
        cfg.elastic.min_nodes = 2;
        cfg.elastic.high_load_per_s = high;
        cfg.elastic.low_load_per_s = low;
        cfg.elastic.sustain = 2;
        cfg.elastic.cooldown_heartbeats = 1;
        let snap = NamespaceSpec::with_target_items(24, 6_000, cfg.seed ^ 0xF5).generate();
        let n_clients = cfg.n_clients as usize;
        let homes = snap.user_homes.clone();
        let shared = snap.shared_roots.clone();
        let wl_seed = cfg.seed ^ 0x17;
        ShardedSimulation::new(cfg, shards, Some(1), snap, &move |ns| {
            Box::new(DiurnalWorkload::new(
                GeneralWorkload::new(
                    WorkloadConfig { seed: wl_seed, ..Default::default() },
                    n_clients,
                    &homes,
                    &shared,
                    ns,
                ),
                SimDuration::from_secs(3),
                150.0,
            ))
        })
    }

    fn run_elastic(shards: usize, high: f64, low: f64) -> ShardReport {
        build_elastic(shards, high, low)
            .run_measured(SimDuration::from_secs(2), SimDuration::from_secs(6))
    }

    #[test]
    fn elastic_pool_scales_with_the_diurnal_cycle() {
        // Watermarks straddle the day/night per-node rates: daytime load
        // activates standby nodes, the night trough parks them again.
        let r = run_elastic(1, ELASTIC_HIGH, ELASTIC_LOW);
        assert!(r.scale_outs >= 1, "daytime peak never activated a standby node");
        assert!(r.scale_ins >= 1, "night trough never parked a node");
        assert!(r.ops > 1_000, "only {} ops completed", r.ops);
        assert!(
            r.provisioned_node_us
                < r.n_mds as u64 * (r.measure_end.as_micros() - r.measure_start.as_micros()),
            "elastic run should use less than the full static pool"
        );
    }

    /// Day/night per-node rates measured on this configuration (daytime
    /// is server-saturated around 700–1500/s per node, the ×150 night
    /// trough is think-limited well under 200/s); the watermarks sit
    /// between the two plateaus.
    const ELASTIC_HIGH: f64 = 500.0;
    const ELASTIC_LOW: f64 = 250.0;

    #[test]
    fn elastic_report_is_invariant_across_shard_counts() {
        let base = run_elastic(1, ELASTIC_HIGH, ELASTIC_LOW);
        assert!(base.scale_outs + base.scale_ins > 0, "controller must act for this test to bite");
        for k in [2usize, 4] {
            let r = run_elastic(k, ELASTIC_HIGH, ELASTIC_LOW);
            assert_eq!(base.render(), r.render(), "render diverged at {k} shards");
            assert_eq!(
                base.obs.as_ref().unwrap().metrics_jsonl,
                r.obs.as_ref().unwrap().metrics_jsonl,
                "obs metrics diverged at {k} shards"
            );
        }
    }

    #[test]
    fn sustained_overload_fills_the_pool_and_hands_trees_back() {
        // A watermark below any observed load forces scale-out to the full
        // pool; the returning nodes must get delegations back.
        let sim = build_elastic(2, 0.001, 0.0);
        let r = sim.run_measured(SimDuration::from_secs(2), SimDuration::from_secs(4));
        assert_eq!(r.scale_outs, 2, "both standby nodes join under sustained overload");
        assert_eq!(r.scale_ins, 0);
        let served: Vec<u64> = r.nodes.iter().map(|n| n.served).collect();
        assert!(served[2] + served[3] > 0, "activated nodes serve traffic: {served:?}");
    }
}

//! Test support: tiny clusters built directly, without the event loop.

#![allow(missing_docs)]

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, Namespace, NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::{Op, Workload};

use crate::cluster::Cluster;
use crate::config::SimConfig;

/// A workload that stats the root forever — for tests that drive the
/// cluster by hand.
pub struct NullWorkload {
    pub n: usize,
}

impl Workload for NullWorkload {
    fn next_op(&mut self, ns: &Namespace, _client: ClientId, _now: SimTime) -> Op {
        Op::Stat(ns.root())
    }
    fn clients(&self) -> usize {
        self.n
    }
}

/// A small 4-node cluster over a deterministic snapshot.
pub fn tiny_cluster(strategy: StrategyKind) -> Cluster {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 8;
    cfg.seed = 1;
    let snap: Snapshot = NamespaceSpec { users: 8, seed: 2, ..Default::default() }.generate();
    Cluster::new(cfg, snap, Box::new(NullWorkload { n: 8 }))
}

//! Traffic control for flash crowds (§4.4).
//!
//! The authority watches decayed popularity counters; when an item's
//! counter crosses the replication threshold, the item (and the prefix
//! chain needed to reach it) is pushed to every node, and replies start
//! advertising "this lives everywhere". Because clients route by deepest
//! known prefix, the cluster "can effectively bound the number of nodes
//! believing any particular file … is located in any one place".
//!
//! Items that cool back down are de-replicated during the heartbeat
//! sweep, returning routing to the single authority.

use dynmds_cache::InsertKind;
use dynmds_event::SimTime;
use dynmds_namespace::InodeId;

use crate::cluster::Cluster;

impl Cluster {
    /// Pushes `target` (plus prefixes) into every node's cache and marks
    /// it replicated. Each receiving node pays a small message-handling
    /// cost.
    pub(crate) fn replicate_everywhere(&mut self, now: SimTime, target: InodeId) {
        let mut chain: Vec<InodeId> = self.ns.ancestors(target).collect();
        chain.reverse();
        chain.push(target);
        let msg_cost = self.cfg.costs.cpu_forward;
        for j in 0..self.nodes.len() {
            if !self.alive[j] {
                continue;
            }
            for &id in &chain {
                if self.nodes[j].cache.peek(id) {
                    continue;
                }
                let parent =
                    self.ns.parent(id).ok().flatten().filter(|p| self.nodes[j].cache.peek(*p));
                let kind = if id == target { InsertKind::Target } else { InsertKind::Prefix };
                self.nodes[j].cache.insert(id, parent, kind);
            }
            self.nodes[j].occupy(now, msg_cost);
        }
        self.replicated.insert(target);
        self.obs.on_replicate();
    }

    /// Heartbeat push of replica-absorbed write deltas to the authorities
    /// ("replicas serving concurrent writers can periodically send their
    /// most recent value to the authority", §4.2). One message per dirty
    /// (node, item) pair.
    pub(crate) fn flush_shared_writes(&mut self, now: SimTime) {
        if self.dirty_shared.is_empty() {
            return;
        }
        let mut dirty: Vec<InodeId> = self.dirty_shared.iter().copied().collect();
        dirty.sort();
        let msg = self.cfg.costs.cpu_forward;
        for id in dirty {
            let auth = self.live_authority(self.authority_of(id));
            let contributors = self.gather_shared_writes(id);
            if contributors > 0 {
                let cost = msg.saturating_mul(contributors as u64);
                self.nodes[auth.index()].occupy(now, cost);
            }
        }
    }

    /// Heartbeat push of proxy-coalesced write deltas to the authorities:
    /// one message per dirty (proxy, item) pair, merged at the authority
    /// exactly like replica shared writes.
    pub(crate) fn flush_proxy_writes(&mut self, now: SimTime) {
        if self.proxy_dirty.is_empty() {
            return;
        }
        let mut dirty: Vec<InodeId> = self.proxy_dirty.iter().copied().collect();
        dirty.sort();
        let msg = self.cfg.costs.cpu_forward;
        for id in dirty {
            let auth = self.live_authority(self.authority_of(id));
            let contributors = self.proxy_gather(now, id);
            if contributors > 0 {
                let cost = msg.saturating_mul(contributors as u64);
                self.nodes[auth.index()].occupy(now, cost);
            }
        }
    }

    /// De-replicates items whose popularity at their authority has decayed
    /// well below the threshold.
    pub(crate) fn traffic_sweep(&mut self, now: SimTime) {
        if self.replicated.is_empty() {
            return;
        }
        let cutoff = self.cfg.replication_threshold * 0.25;
        let cooled: Vec<InodeId> = self
            .replicated
            .iter()
            .copied()
            .filter(|&id| {
                let auth = self.live_authority(self.authority_of(id));
                let node = &self.nodes[auth.index()];
                let pop = node.popularity.value(now, id);
                if pop < cutoff {
                    return true; // cold
                }
                // Write-hot items de-replicate unless shared writes make
                // replica-side absorption profitable (files only).
                let write_hot = node.update_popularity.value(now, id) > 0.25 * pop;
                let absorbable = self.cfg.shared_writes && !self.ns.is_dir(id);
                write_hot && !absorbable
            })
            .collect();
        self.obs.on_dereplicate(cooled.len() as u64);
        for id in cooled {
            self.replicated.remove(&id);
        }
    }

    /// Whether `id` is currently replicated cluster-wide (test/inspection
    /// hook).
    pub fn is_replicated(&self, id: InodeId) -> bool {
        self.replicated.contains(&id)
    }

    /// Number of items currently replicated cluster-wide.
    pub fn replicated_count(&self) -> usize {
        self.replicated.len()
    }

    /// Whether directory `id` is currently hashed entry-wise across the
    /// cluster (test/inspection hook).
    pub fn is_dir_hashed(&self, id: InodeId) -> bool {
        self.hashed_dirs.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use dynmds_event::SimTime;
    use dynmds_partition::StrategyKind;

    use crate::testutil::tiny_cluster;

    #[test]
    fn replicate_everywhere_installs_item_and_prefixes_on_all_live_nodes() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file =
            c.ns.resolve("/home")
                .map(|h| c.ns.walk(h).find(|&i| !c.ns.is_dir(i)).expect("a file"))
                .unwrap();
        c.replicate_everywhere(SimTime::from_secs(1), file);
        assert!(c.is_replicated(file));
        assert_eq!(c.replicated_count(), 1);
        for node in &c.nodes {
            assert!(node.cache.peek(file), "{} missing the replica", node.id);
            // The whole prefix chain is present so the replica can serve
            // path traversal locally.
            for anc in c.ns.ancestors(file) {
                assert!(node.cache.peek(anc), "{} missing prefix {anc}", node.id);
            }
            node.cache.check_integrity();
        }
    }

    #[test]
    fn sweep_dereplicates_cold_items() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        // Make it hot at its authority, replicate, then let it cool.
        let auth = c.authority_of(file);
        for _ in 0..100 {
            c.nodes[auth.index()].popularity.record(SimTime::from_secs(1), file);
        }
        c.replicate_everywhere(SimTime::from_secs(1), file);
        c.traffic_sweep(SimTime::from_secs(2));
        assert!(c.is_replicated(file), "still hot: stays replicated");
        // Popularity half-life is 10 s; after 200 s it is ~0.
        c.traffic_sweep(SimTime::from_secs(200));
        assert!(!c.is_replicated(file), "cooled: de-replicated");
    }

    #[test]
    fn sweep_dereplicates_write_hot_items() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let file = c.ns.walk(c.ns.root()).find(|&i| !c.ns.is_dir(i)).unwrap();
        let auth = c.authority_of(file);
        for _ in 0..100 {
            c.nodes[auth.index()].popularity.record(SimTime::from_secs(1), file);
        }
        c.replicate_everywhere(SimTime::from_secs(1), file);
        // Writes take over.
        for _ in 0..50 {
            c.nodes[auth.index()].update_popularity.record(SimTime::from_secs(2), file);
        }
        c.traffic_sweep(SimTime::from_secs(2));
        assert!(!c.is_replicated(file), "write-hot items must not stay replicated");
    }

    #[test]
    fn sweep_with_nothing_replicated_is_cheap_noop() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.traffic_sweep(SimTime::from_secs(5));
        assert_eq!(c.replicated_count(), 0);
    }
}

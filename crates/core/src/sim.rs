//! Top-level simulation runner.

use dynmds_event::{Engine, EventQueue, SimDuration, SimTime};
use dynmds_namespace::{ClientId, Snapshot};
use dynmds_workload::Workload;

use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::report::SimReport;
use crate::request::SimEvent;

/// A configured, runnable simulation.
pub struct Simulation {
    engine: Engine<SimEvent, Cluster>,
}

impl Simulation {
    /// Builds a simulation with client start times spread over one mean
    /// think period (steady-state experiments).
    pub fn new(cfg: SimConfig, snapshot: Snapshot, workload: Box<dyn Workload>) -> Self {
        let spread = cfg.costs.think_mean;
        Self::with_start(cfg, snapshot, workload, SimTime::ZERO, spread)
    }

    /// Builds a simulation whose clients all fire their first request in
    /// the window `[start, start + spread]` — `spread = 0` is the
    /// flash-crowd setup ("10,000 clients simultaneously request the same
    /// file").
    pub fn with_start(
        cfg: SimConfig,
        snapshot: Snapshot,
        workload: Box<dyn Workload>,
        start: SimTime,
        spread: SimDuration,
    ) -> Self {
        assert_eq!(
            workload.clients(),
            cfg.n_clients as usize,
            "workload must drive exactly the configured clients"
        );
        let n_clients = cfg.n_clients;
        let heartbeat = cfg.heartbeat;
        let sample = cfg.sample_every;
        // Inter-event deltas are dominated by client think time; size the
        // scheduler's timer wheel for it so the near-future page absorbs
        // the steady-state schedule/pop cycle.
        let queue = EventQueue::with_delta_hint(cfg.costs.think_mean);
        // Expand the fault schedule before `Cluster::new` consumes `cfg`.
        let fault_events = cfg.faults.expanded(cfg.n_mds as usize);
        let cluster = Cluster::new(cfg, snapshot, workload);
        let mut engine = Engine::with_queue(cluster, queue);
        for ev in fault_events {
            use crate::fault::FaultEvent;
            let q = engine.queue_mut();
            match ev {
                FaultEvent::Crash { at, mds } => {
                    q.schedule(at, SimEvent::Fail(mds));
                }
                FaultEvent::Recover { at, mds } => {
                    q.schedule(at, SimEvent::Recover(mds));
                }
                FaultEvent::DiskDegrade { from, until, fault, scope } => {
                    q.schedule(from, SimEvent::SetDiskFault { scope, fault: Some(fault) });
                    q.schedule(until, SimEvent::SetDiskFault { scope, fault: None });
                }
                FaultEvent::NetFault { from, until, spec } => {
                    q.schedule(from, SimEvent::SetNetFault(Some(spec)));
                    q.schedule(until, SimEvent::SetNetFault(None));
                }
            }
        }
        for c in 0..n_clients {
            let offset = if n_clients > 1 {
                SimDuration::from_micros(spread.as_micros() * c as u64 / n_clients as u64)
            } else {
                SimDuration::ZERO
            };
            engine.queue_mut().schedule(start + offset, SimEvent::Issue(ClientId(c)));
        }
        engine.queue_mut().schedule(SimTime::ZERO + heartbeat, SimEvent::Heartbeat);
        engine.queue_mut().schedule(SimTime::ZERO + sample, SimEvent::Sample);
        Simulation { engine }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The simulated system (inspection).
    pub fn cluster(&self) -> &Cluster {
        self.engine.handler()
    }

    /// The simulated system (mutation, e.g. scripted fault injection).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        self.engine.handler_mut()
    }

    /// Advances virtual time to `until`.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.engine.run_until(until)
    }

    /// Schedules a node failure (fault injection).
    pub fn schedule_failure(&mut self, at: SimTime, mds: dynmds_namespace::MdsId) {
        self.engine.queue_mut().schedule(at, SimEvent::Fail(mds));
    }

    /// Schedules a node recovery.
    pub fn schedule_recovery(&mut self, at: SimTime, mds: dynmds_namespace::MdsId) {
        self.engine.queue_mut().schedule(at, SimEvent::Recover(mds));
    }

    /// Runs `warmup` of unmeasured time, resets statistics, runs `measure`
    /// more, and reports.
    pub fn run_measured(mut self, warmup: SimDuration, measure: SimDuration) -> SimReport {
        let w_end = SimTime::ZERO + warmup;
        self.engine.run_until(w_end);
        self.engine.handler_mut().reset_measurement(w_end);
        let end = w_end + measure;
        self.engine.run_until(end);
        self.finish()
    }

    /// Stops and produces the report.
    pub fn finish(self) -> SimReport {
        let now = self.engine.now();
        self.engine.into_handler().into_report(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::NamespaceSpec;
    use dynmds_partition::StrategyKind;
    use dynmds_workload::{GeneralWorkload, WorkloadConfig};

    fn snapshot(seed: u64) -> dynmds_namespace::Snapshot {
        NamespaceSpec::with_target_items(24, 8_000, seed).generate()
    }

    fn workload(
        snap: &dynmds_namespace::Snapshot,
        n_clients: usize,
        seed: u64,
    ) -> Box<GeneralWorkload> {
        Box::new(GeneralWorkload::new(
            WorkloadConfig { seed, ..Default::default() },
            n_clients,
            &snap.user_homes,
            &snap.shared_roots,
            &snap.ns,
        ))
    }

    fn run_small(strategy: StrategyKind) -> crate::report::SimReport {
        let cfg = SimConfig::small(strategy);
        let snap = snapshot(3);
        let wl = workload(&snap, cfg.n_clients as usize, 9);
        let sim = Simulation::new(cfg, snap, wl);
        sim.run_measured(SimDuration::from_secs(5), SimDuration::from_secs(10))
    }

    #[test]
    fn every_strategy_serves_operations() {
        for strategy in StrategyKind::ALL {
            let r = run_small(strategy);
            assert!(r.total_served() > 1_000, "{strategy} served only {} ops", r.total_served());
            assert!(r.avg_mds_throughput() > 10.0, "{strategy} throughput ~0");
            assert!(!r.latency.is_empty());
            assert!(r.latency.mean().unwrap() > 0.0);
        }
    }

    #[test]
    fn hashed_strategies_never_forward() {
        for strategy in [StrategyKind::DirHash, StrategyKind::FileHash, StrategyKind::LazyHybrid] {
            let r = run_small(strategy);
            assert_eq!(
                r.total_forwarded(),
                0,
                "{strategy}: clients compute the hash, no forwarding"
            );
        }
    }

    #[test]
    fn subtree_strategies_forward_while_discovering() {
        let cfg = SimConfig::small(StrategyKind::StaticSubtree);
        let snap = snapshot(3);
        let wl = workload(&snap, cfg.n_clients as usize, 9);
        let sim = Simulation::new(cfg, snap, wl);
        // No warm-up: the discovery phase is what we want to see.
        let r = sim.run_measured(SimDuration::ZERO, SimDuration::from_secs(5));
        assert!(r.total_forwarded() > 0, "initially ignorant clients must cause forwards");
        // But learning makes forwards a minority of traffic.
        let frac = r.total_forwarded() as f64 / r.total_received() as f64;
        assert!(frac < 0.5, "forward fraction {frac} stayed too high");
    }

    #[test]
    fn caches_populate_and_hit() {
        let r = run_small(StrategyKind::DynamicSubtree);
        for (i, n) in r.nodes.iter().enumerate() {
            assert!(n.cache_len > 0, "node {i} cache empty");
        }
        assert!(
            r.overall_hit_rate() > 0.5,
            "warm caches should mostly hit, got {}",
            r.overall_hit_rate()
        );
    }

    #[test]
    fn hashed_caches_hold_more_prefixes_than_subtree() {
        let sub = run_small(StrategyKind::StaticSubtree);
        let hash = run_small(StrategyKind::FileHash);
        assert!(
            hash.mean_prefix_pct() > sub.mean_prefix_pct(),
            "file hash {:.1}% vs static subtree {:.1}%",
            hash.mean_prefix_pct(),
            sub.mean_prefix_pct()
        );
    }

    #[test]
    fn namespace_grows_under_write_workload() {
        let cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        let snap = snapshot(5);
        let before = snap.ns.total_items();
        let wl = workload(&snap, cfg.n_clients as usize, 11);
        let mut sim = Simulation::new(cfg, snap, wl);
        sim.run_until(SimTime::from_secs(10));
        let after = sim.cluster().ns.total_items();
        assert!(after > before, "creates must land: {before} -> {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_small(StrategyKind::DynamicSubtree);
        let b = run_small(StrategyKind::DynamicSubtree);
        assert_eq!(a.total_served(), b.total_served());
        assert_eq!(a.total_forwarded(), b.total_forwarded());
    }
}

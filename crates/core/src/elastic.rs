//! Elastic MDS autoscaling (ROADMAP item 3, λFS-style).
//!
//! λFS (ASPLOS'24) shows a serverless-elastic metadata service beating
//! statically provisioned clusters on cost at equal latency; CFS supplies
//! the diurnal traffic shapes that make it pay off. This module adds that
//! capability as the sixth strategy
//! ([`StrategyKind::ElasticSubtree`](dynmds_partition::StrategyKind)):
//! the cluster is *provisioned* with `n_mds` nodes but only keeps a
//! load-determined subset *active*.
//!
//! * **Signal** — the same smoothed per-node heartbeat load the §4.3
//!   balancer uses (`hb_ewma`: served + miss-weighted misses), averaged
//!   over live nodes and normalized to a per-second rate. Watermarks with
//!   sustain counters (the controller's analogue of `busy_streak`) plus a
//!   post-action cooldown keep it from flapping.
//! * **Scale-out** — the lowest-indexed standby node is activated and
//!   pays the §4.6 cold-start cost: one sequential journal read plus
//!   per-record replay to re-warm its cache from its last tenure's
//!   working set (empty on first activation — a true cold start). The
//!   balancer then migrates load onto it over subsequent heartbeats, as
//!   it would onto any recovered node.
//! * **Scale-in** — *voluntary departure*, deliberately distinct from
//!   crash failover: the least-loaded node first hands every delegation
//!   (with its cached state) to the surviving nodes via the balancer's
//!   own migration path, sends clients redirects for the routes that
//!   named it, and only then releases its RAM. Nothing is lost and no
//!   request ever times out against a parked node.
//!
//! Determinism: the controller runs inside the heartbeat (a fixed event
//! grid), reads only simulation state, and draws nothing from any RNG,
//! so elastic runs are byte-identical across reruns; with `enabled =
//! false` every code path multiplies by the same branches as before and
//! static runs stay bit-for-bit unchanged.

use dynmds_event::SimTime;
use dynmds_namespace::MdsId;

use crate::cluster::Cluster;

/// Mutable controller state, one per cluster. Inert (all zeros, all
/// nodes active) unless [`ElasticConfig::enabled`] is set.
///
/// [`ElasticConfig::enabled`]: crate::config::ElasticConfig
#[derive(Clone, Debug)]
pub struct ElasticState {
    /// Nodes currently parked *by the controller* — disjoint from
    /// crashed nodes, which are `!alive` but not standby.
    pub standby: Vec<bool>,
    /// Consecutive heartbeats the live mean sat above the high watermark.
    pub high_streak: u32,
    /// Consecutive heartbeats the live mean sat below the low watermark.
    pub low_streak: u32,
    /// Heartbeats remaining before the controller may act again.
    pub cooldown: u32,
    /// Standby activations performed.
    pub scale_outs: u64,
    /// Voluntary departures performed.
    pub scale_ins: u64,
    /// Provisioned capacity consumed so far, in node-microseconds,
    /// integrated at heartbeat granularity.
    pub provisioned_node_us: u64,
    /// Upper edge of the last accounted interval.
    pub last_account: SimTime,
}

impl ElasticState {
    /// Fresh state for an `n`-node pool, everything active.
    pub fn new(n: usize) -> Self {
        ElasticState {
            standby: vec![false; n],
            high_streak: 0,
            low_streak: 0,
            cooldown: 0,
            scale_outs: 0,
            scale_ins: 0,
            provisioned_node_us: 0,
            last_account: SimTime::ZERO,
        }
    }

    /// Provisioned capacity in node-seconds.
    pub fn provisioned_node_secs(&self) -> f64 {
        self.provisioned_node_us as f64 / 1e6
    }
}

impl Cluster {
    /// Construction-time provisioning for elastic runs: the pool holds
    /// `n_mds` nodes but only `min_nodes` start active. The initial
    /// partition is re-delegated onto the active set (a deployment-time
    /// decision: no costs, no migration counters) and clients are told
    /// the starting membership, so nothing ever routes to a parked node.
    pub(crate) fn park_initial_standby(&mut self) {
        let n = self.nodes.len();
        let min = (self.cfg.elastic.min_nodes.max(1) as usize).min(n);
        for parked in min..n {
            if let Some(sub) = self.partition.as_subtree() {
                let owned = sub.delegations_of(MdsId(parked as u16));
                for (k, root) in owned.into_iter().enumerate() {
                    let heir = MdsId((k % min) as u16);
                    self.partition.as_subtree_mut().expect("subtree").delegate(root, heir);
                    // Marked imported: when the pool scales out these are
                    // the first trees the balancer hands back.
                    self.imported[heir.index()].push(root);
                }
            }
            self.alive[parked] = false;
            self.elastic.standby[parked] = true;
        }
        self.clients.set_membership(&self.alive);
    }

    /// One controller step, run from the heartbeat (after the EWMA
    /// update, before rebalancing). Accounts provisioned node-time, then
    /// applies the watermark/sustain/cooldown policy.
    pub(crate) fn elastic_tick(&mut self, now: SimTime) {
        // Accounting first, under the population that held since the last
        // tick (membership only changes inside ticks, so this is exact).
        let live = self.live_nodes() as u64;
        let dt = now.saturating_since(self.elastic.last_account).as_micros();
        self.elastic.provisioned_node_us += live * dt;
        self.elastic.last_account = now;

        let hb_secs = self.cfg.heartbeat.as_secs_f64();
        let mean_rate = self.live_load_mean() / hb_secs;
        let e = self.cfg.elastic;
        if mean_rate > e.high_load_per_s {
            self.elastic.high_streak += 1;
            self.elastic.low_streak = 0;
        } else if mean_rate < e.low_load_per_s {
            self.elastic.low_streak += 1;
            self.elastic.high_streak = 0;
        } else {
            self.elastic.high_streak = 0;
            self.elastic.low_streak = 0;
        }
        if self.elastic.cooldown > 0 {
            self.elastic.cooldown -= 1;
            return;
        }

        if self.elastic.high_streak >= e.sustain {
            // Lowest-indexed standby node; crashed nodes are not eligible
            // (they come back through recovery, not scaling).
            let candidate =
                (0..self.nodes.len()).find(|&i| self.elastic.standby[i] && !self.alive[i]);
            if let Some(i) = candidate {
                self.activate_node(now, MdsId(i as u16));
                self.elastic.high_streak = 0;
                self.elastic.cooldown = e.cooldown_heartbeats;
            }
        } else if self.elastic.low_streak >= e.sustain
            && self.live_nodes() > (e.min_nodes.max(1) as usize)
        {
            // Least-loaded live node departs; index breaks ties.
            let victim = (0..self.nodes.len())
                .filter(|&i| self.alive[i])
                .min_by(|&a, &b| {
                    self.hb_ewma[a].partial_cmp(&self.hb_ewma[b]).expect("finite").then(a.cmp(&b))
                })
                .expect("live nodes exist");
            self.deactivate_node(now, MdsId(victim as u16));
            self.elastic.low_streak = 0;
            self.elastic.cooldown = e.cooldown_heartbeats;
        }
    }

    /// Provisioned node-seconds consumed by `now`: the integral kept by
    /// the heartbeat ticks plus the still-open interval since the last
    /// tick, under the current live population.
    pub fn provisioned_node_secs(&self, now: SimTime) -> f64 {
        let open = now.saturating_since(self.elastic.last_account).as_micros();
        (self.elastic.provisioned_node_us + self.live_nodes() as u64 * open) as f64 / 1e6
    }

    /// Scale-out: brings a standby node into service, paying the §4.6
    /// cold-start cost (journal replay + cache warming — empty, hence
    /// free, on first-ever activation).
    pub fn activate_node(&mut self, now: SimTime, mds: MdsId) {
        if self.alive[mds.index()] {
            return;
        }
        self.alive[mds.index()] = true;
        self.elastic.standby[mds.index()] = false;
        self.elastic.scale_outs += 1;
        self.obs.on_scale_out();
        if self.cfg.journal_warming {
            self.warm_own_journal(now, mds);
        }
        self.clients.set_membership(&self.alive);
    }

    /// Scale-in: voluntary departure. Hands every delegation (and its
    /// cached state) to the remaining live nodes through the balancer's
    /// migration path, redirects clients, then parks the node.
    pub fn deactivate_node(&mut self, now: SimTime, mds: MdsId) {
        if !self.alive[mds.index()] || self.live_nodes() <= 1 {
            return;
        }
        // Heirs: live peers, least-loaded first; subtrees round-robin
        // over them so one peer doesn't inherit everything.
        let mut heirs: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| self.alive[i] && i != mds.index()).collect();
        heirs.sort_by(|&a, &b| {
            self.hb_ewma[a].partial_cmp(&self.hb_ewma[b]).expect("finite").then(a.cmp(&b))
        });
        let owned = match self.partition.as_subtree() {
            Some(sub) => sub.delegations_of(mds),
            None => Vec::new(),
        };
        for (k, root) in owned.into_iter().enumerate() {
            let heir = MdsId(heirs[k % heirs.len()] as u16);
            self.migrate_subtree(now, root, mds, heir);
        }

        // The departing node's goodbye: clients that knew it as an
        // authority are redirected to the new owners (disjoint field
        // borrows: routes mutate, partition/namespace only read).
        let (clients, partition, ns) = (&mut self.clients, &self.partition, &self.ns);
        if let Some(sub) = partition.as_subtree() {
            clients.redirect_routes(mds, |item| sub.authority(ns, item));
        }

        // Now it can stop serving and release its RAM — after the
        // handoff, unlike a crash, so nothing is lost.
        self.alive[mds.index()] = false;
        self.elastic.standby[mds.index()] = true;
        self.hb_ewma[mds.index()] = 0.0;
        self.busy_streak[mds.index()] = 0;
        self.hb_served[mds.index()] = 0;
        self.hb_misses[mds.index()] = 0;
        let cap = self.cfg.cache_capacity;
        self.nodes[mds.index()].cache = dynmds_cache::MetaCache::new(cap);
        self.elastic.scale_ins += 1;
        self.obs.on_scale_in();
        self.clients.set_membership(&self.alive);
    }
}

#[cfg(test)]
mod tests {
    use dynmds_event::SimTime;
    use dynmds_namespace::{MdsId, NamespaceSpec, Snapshot};
    use dynmds_partition::StrategyKind;

    use crate::cluster::Cluster;
    use crate::config::SimConfig;
    use crate::testutil::NullWorkload;

    fn elastic_cluster() -> Cluster {
        let mut cfg = SimConfig::small(StrategyKind::ElasticSubtree);
        cfg.n_mds = 4;
        cfg.n_clients = 8;
        cfg.seed = 1;
        cfg.elastic.min_nodes = 2;
        cfg.elastic.sustain = 2;
        cfg.elastic.cooldown_heartbeats = 0;
        let snap: Snapshot = NamespaceSpec { users: 8, seed: 2, ..Default::default() }.generate();
        Cluster::new(cfg, snap, Box::new(NullWorkload { n: 8 }))
    }

    #[test]
    fn pool_starts_at_min_nodes_with_no_orphan_delegations() {
        let c = elastic_cluster();
        assert_eq!(c.live_nodes(), 2);
        assert!(c.elastic.standby[2] && c.elastic.standby[3]);
        let sub = c.partition.as_subtree().unwrap();
        for (_, owner) in sub.delegations() {
            assert!(c.is_alive_node(owner), "no delegation names a parked node");
        }
    }

    #[test]
    fn sustained_overload_activates_standby_nodes() {
        let mut c = elastic_cluster();
        let hb = c.cfg.heartbeat.as_secs_f64();
        let hot = (c.cfg.elastic.high_load_per_s * hb * 2.0) as u64;
        for k in 1..=3u64 {
            for i in 0..2 {
                c.hb_served[i] = hot;
            }
            c.heartbeat(SimTime::from_secs(5 * k));
        }
        assert_eq!(c.elastic.scale_outs, 1, "one activation after the sustain window");
        assert_eq!(c.live_nodes(), 3);
        assert!(!c.elastic.standby[2], "lowest-indexed standby joined");
    }

    #[test]
    fn sustained_idle_parks_down_to_the_floor() {
        let mut c = elastic_cluster();
        // Activate everything first.
        c.activate_node(SimTime::from_secs(1), MdsId(2));
        c.activate_node(SimTime::from_secs(1), MdsId(3));
        assert_eq!(c.live_nodes(), 4);
        for k in 1..=12u64 {
            c.heartbeat(SimTime::from_secs(5 * k)); // zero load throughout
        }
        assert_eq!(c.live_nodes(), 2, "parked down to min_nodes, never below");
        assert_eq!(c.elastic.scale_ins, 2);
        let sub = c.partition.as_subtree().unwrap();
        for (_, owner) in sub.delegations() {
            assert!(c.is_alive_node(owner), "handoff left no orphan delegations");
        }
    }

    #[test]
    fn departure_hands_off_state_instead_of_losing_it() {
        let mut c = elastic_cluster();
        let victim = MdsId(0);
        let sub = c.partition.as_subtree().unwrap();
        let owned = sub.delegations_of(victim);
        assert!(!owned.is_empty(), "victim owns subtrees initially");
        // Cache something under an owned subtree at the victim.
        let root = owned[0];
        let item = c.ns.walk(root).find(|&i| !c.ns.is_dir(i)).unwrap_or(root);
        let mut chain: Vec<_> = c.ns.ancestors(item).collect();
        chain.reverse();
        for anc in chain.into_iter().chain(std::iter::once(item)) {
            let parent = c.ns.parent(anc).unwrap().filter(|p| c.nodes[0].cache.peek(*p));
            let kind = if c.ns.is_dir(anc) {
                dynmds_cache::InsertKind::Prefix
            } else {
                dynmds_cache::InsertKind::Target
            };
            c.nodes[0].cache.insert(anc, parent, kind);
        }
        c.deactivate_node(SimTime::from_secs(2), victim);
        assert!(!c.is_alive_node(victim));
        assert_eq!(c.failures, 0, "departure is not a crash");
        let sub = c.partition.as_subtree().unwrap();
        let new_owner = sub.authority(&c.ns, item);
        assert_ne!(new_owner, victim);
        assert!(c.is_alive_node(new_owner));
        assert!(
            c.nodes[new_owner.index()].cache.peek(item),
            "cached state migrated with the subtree"
        );
        assert_eq!(c.migrations as usize, owned.len(), "one migration per delegation");
    }

    #[test]
    fn provisioned_node_seconds_track_the_live_population() {
        let mut c = elastic_cluster();
        c.heartbeat(SimTime::from_secs(5)); // 2 live × 5 s
        assert_eq!(c.elastic.provisioned_node_us, 2 * 5_000_000);
        c.activate_node(SimTime::from_secs(5), MdsId(2));
        c.heartbeat(SimTime::from_secs(10)); // 3 live × 5 s more
        assert_eq!(c.elastic.provisioned_node_us, 2 * 5_000_000 + 3 * 5_000_000);
    }

    #[test]
    fn controller_is_inert_when_disabled() {
        let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
        cfg.n_mds = 4;
        cfg.n_clients = 8;
        cfg.seed = 1;
        let snap: Snapshot = NamespaceSpec { users: 8, seed: 2, ..Default::default() }.generate();
        let mut c = Cluster::new(cfg, snap, Box::new(NullWorkload { n: 8 }));
        assert_eq!(c.live_nodes(), 4, "static strategies keep the full pool");
        for k in 1..=6u64 {
            c.heartbeat(SimTime::from_secs(5 * k));
        }
        assert_eq!(c.live_nodes(), 4);
        assert_eq!(c.elastic.scale_outs + c.elastic.scale_ins, 0);
        assert_eq!(c.elastic.provisioned_node_us, 0, "no accounting when disabled");
    }
}

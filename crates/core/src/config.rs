//! Simulation configuration.

use dynmds_event::SimDuration;
use dynmds_partition::StrategyKind;
use dynmds_storage::DiskParams;

/// Service-time and latency constants. Defaults model a 2004-era cluster:
/// gigabit LAN hops, a commodity-disk OSD pool, an NVRAM-fronted journal
/// device per MDS (§4.6: "the use of NVRAM … can further mask the latency
/// of writes to the log").
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// MDS CPU time to fully process one metadata operation.
    pub cpu_per_op: SimDuration,
    /// MDS CPU time to forward a request it is not authoritative for.
    pub cpu_forward: SimDuration,
    /// One-way network latency between any two machines.
    pub net_hop: SimDuration,
    /// Mean client think time between receiving a reply and issuing the
    /// next operation (exponentially distributed).
    pub think_mean: SimDuration,
    /// Per-cached-item cost of migrating a subtree between servers.
    pub migrate_per_item: SimDuration,
    /// Journal device behaviour (sequential appends: low latency, high
    /// transactional throughput).
    pub journal_disk: DiskParams,
    /// OSD pool device behaviour (random metadata objects).
    pub osd_disk: DiskParams,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_per_op: SimDuration::from_micros(150),
            cpu_forward: SimDuration::from_micros(20),
            net_hop: SimDuration::from_micros(100),
            think_mean: SimDuration::from_millis(1),
            migrate_per_item: SimDuration::from_micros(10),
            journal_disk: DiskParams { latency: SimDuration::from_micros(500), iops: 5_000.0 },
            osd_disk: DiskParams { latency: SimDuration::from_millis(8), iops: 120.0 },
        }
    }
}

/// Elastic autoscaling knobs (ROADMAP item 3, λFS-style). The controller
/// watches the same smoothed heartbeat load signal the balancer uses and
/// activates / parks nodes between `min_nodes` and `n_mds` (the
/// provisioned pool ceiling). All thresholds are per-*live*-node rates so
/// they are independent of the heartbeat interval.
#[derive(Clone, Copy, Debug)]
pub struct ElasticConfig {
    /// Master switch; off keeps the cluster statically provisioned and
    /// the fast path branch-identical to builds without elasticity.
    pub enabled: bool,
    /// Never park below this many live nodes.
    pub min_nodes: u16,
    /// Scale out when the mean per-live-node load (served +
    /// `miss_weight` × misses, per second) stays above this.
    pub high_load_per_s: f64,
    /// Scale in when it stays below this.
    pub low_load_per_s: f64,
    /// Consecutive heartbeats a watermark must hold before acting —
    /// the controller's analogue of the balancer's `busy_streak`.
    pub sustain: u32,
    /// Heartbeats to hold off after a scaling action, letting the EWMA
    /// and the balancer settle before judging the new population.
    pub cooldown_heartbeats: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            enabled: false,
            min_nodes: 2,
            high_load_per_s: 4_000.0,
            low_load_per_s: 1_500.0,
            sustain: 2,
            cooldown_heartbeats: 2,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Partitioning strategy under test.
    pub strategy: StrategyKind,
    /// Number of metadata servers.
    pub n_mds: u16,
    /// Number of clients.
    pub n_clients: u32,
    /// Per-MDS cache capacity, in inodes.
    pub cache_capacity: usize,
    /// Per-MDS journal capacity, in entries.
    pub journal_capacity: usize,
    /// Number of OSDs backing the shared metadata store.
    pub n_osds: usize,
    /// Cost constants.
    pub costs: CostModel,

    // --- traffic control (§4.4) --------------------------------------
    /// Enable popularity-driven replication of hot metadata.
    pub traffic_control: bool,
    /// Decayed-popularity value above which an item is replicated
    /// cluster-wide.
    pub replication_threshold: f64,
    /// Half-life of the popularity counters.
    pub popularity_half_life: SimDuration,

    // --- load balancing (§4.3) ---------------------------------------
    /// Enable the heartbeat load balancer (DynamicSubtree only; ignored
    /// otherwise).
    pub balancing: bool,
    /// Heartbeat interval.
    pub heartbeat: SimDuration,
    /// A node whose load exceeds `imbalance_ratio ×` the cluster mean
    /// tries to shed subtrees.
    pub imbalance_ratio: f64,
    /// Weight of cache misses (vs throughput) in the load metric — "a
    /// weighted combination of node throughput and cache misses" (§5.1).
    pub miss_weight: f64,
    /// Cluster-wide cap on subtree migrations per heartbeat; damping
    /// against migration storms ("a small overhead associated with each
    /// delegation", §4.3).
    pub max_migrations_per_heartbeat: usize,

    // --- elastic autoscaling (ElasticSubtree strategy) -----------------
    /// Elastic add/remove of MDS nodes driven by the heartbeat load
    /// signal; see [`ElasticConfig`].
    pub elastic: ElasticConfig,

    // --- dynamic directory hashing (§4.3) -----------------------------
    /// Spread a single directory across the cluster when it grows beyond
    /// this many entries (0 disables).
    pub dir_hash_threshold: usize,

    /// Ablation override: disable near-tail (probationary) insertion of
    /// prefetched metadata (§4.5: "inserted near the tail of the cache's
    /// LRU list to avoid displacing known useful information").
    pub disable_prefetch_probation: bool,

    /// Ablation override: force the per-inode-table tier-2 layout even for
    /// strategies that could embed inodes in directory objects, disabling
    /// whole-directory prefetch (§4.5 ablation).
    pub force_inode_table: bool,

    /// Warm caches from the (shared-storage) journal on failover and
    /// recovery — §4.6's "quickly preloaded … on startup or after a
    /// failure". Disable for the ablation.
    pub journal_warming: bool,

    /// GPFS-style shared writes (§4.2): size/mtime updates to a replicated
    /// *file* are absorbed by whichever replica receives them and pushed
    /// to the authority on the heartbeat, "which retains the maximum value
    /// seen thus far and initiates a callback for the latest information
    /// on client reads". Lets N-to-1 checkpoint writes scale.
    pub shared_writes: bool,

    /// Client metadata leases (§4.2): replies to attribute reads grant the
    /// client a time-bounded right to answer repeat reads from its own
    /// cache without contacting the cluster — the paper's "relatively
    /// simple (and inexpensive) metadata coherence" middle ground between
    /// callback state for 100 000 clients and NFS-style statelessness.
    pub client_leases: bool,
    /// Lease lifetime (staleness bound).
    pub lease_ttl: SimDuration,

    /// Debug switch for the sharded engine: keep executing every
    /// conservative window densely instead of skipping idle spans.
    /// Skipping stays on the window grid, so runs are byte-identical
    /// either way — this exists so tests and CI can prove that, and so
    /// a suspected skip bug can be ruled out with one flag. Ignored by
    /// the legacy serial engine (which is event-driven, never idle).
    pub force_dense: bool,

    /// Metrics sampling interval (time-series bin width).
    pub sample_every: SimDuration,
    /// RNG seed for client think times and routing tie-breaks.
    pub seed: u64,

    /// Client retry behaviour after dead-node timeouts / lost messages.
    pub retry: crate::fault::RetryPolicy,
    /// Fault-injection schedule (empty = fault-free run).
    pub faults: crate::fault::FaultSchedule,

    /// Observability switches (metrics registry, op-trace spans). Off by
    /// default: the disabled path costs one branch per hook.
    pub obs: dynmds_obs::ObsConfig,

    /// Adaptive hotspot proxy tier (ROADMAP item 4). `count == 0` (the
    /// default) keeps the tier completely out of the run: no state, no
    /// extra draws, no new output — proxy-off runs stay byte-identical.
    pub proxy: dynmds_proxy::ProxyConfig,
}

impl SimConfig {
    /// A small, fast-running configuration for tests and examples.
    pub fn small(strategy: StrategyKind) -> Self {
        SimConfig {
            strategy,
            n_mds: 4,
            n_clients: 48,
            cache_capacity: 1_500,
            journal_capacity: 1_500,
            n_osds: 8,
            costs: CostModel::default(),
            traffic_control: strategy.rebalances(),
            replication_threshold: 64.0,
            popularity_half_life: SimDuration::from_secs(10),
            balancing: strategy.rebalances(),
            heartbeat: SimDuration::from_secs(5),
            imbalance_ratio: 1.25,
            miss_weight: 4.0,
            max_migrations_per_heartbeat: 4,
            elastic: ElasticConfig {
                enabled: strategy == StrategyKind::ElasticSubtree,
                ..ElasticConfig::default()
            },
            dir_hash_threshold: 0,
            disable_prefetch_probation: false,
            force_inode_table: false,
            journal_warming: true,
            shared_writes: false,
            client_leases: false,
            lease_ttl: SimDuration::from_secs(2),
            force_dense: false,
            sample_every: SimDuration::from_secs(1),
            seed: 7,
            retry: crate::fault::RetryPolicy::default(),
            faults: crate::fault::FaultSchedule::default(),
            obs: dynmds_obs::ObsConfig::default(),
            proxy: dynmds_proxy::ProxyConfig::default(),
        }
    }

    /// Clients per server in this configuration.
    pub fn clients_per_mds(&self) -> f64 {
        self.n_clients as f64 / self.n_mds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_partition::StrategyKind;

    #[test]
    fn small_config_is_consistent() {
        let c = SimConfig::small(StrategyKind::DynamicSubtree);
        assert!(c.traffic_control);
        assert!(c.balancing);
        assert_eq!(c.clients_per_mds(), 12.0);
        let s = SimConfig::small(StrategyKind::FileHash);
        assert!(!s.balancing, "only dynamic subtree rebalances by default");
    }

    #[test]
    fn default_costs_are_sane() {
        let m = CostModel::default();
        assert!(m.cpu_forward < m.cpu_per_op, "forwarding is cheaper than serving");
        assert!(m.journal_disk.latency < m.osd_disk.latency, "NVRAM journal is fast");
        assert!(m.journal_disk.iops > m.osd_disk.iops);
    }
}

//! Deterministic fault injection: schedules, churn generation, and the
//! client retry policy.
//!
//! The paper's §4.6 storage design exists to make MDS failure cheap
//! (journal-driven cache preload "eases MDS failover"), but a failover
//! path that is only ever exercised by one hand-written scenario is a
//! failover path with latent bugs. This module turns faults into data: a
//! [`FaultSchedule`] is a list of sim-time-stamped [`FaultEvent`]s —
//! MDS crashes and recoveries (scripted, or generated from a seeded
//! MTBF/MTTR churn process), disk degradation windows (latency
//! inflation, IOPS throttling, transient errors), and network fault
//! windows (message loss and duplication on the client↔MDS edges).
//!
//! Everything is driven from the event queue and every random draw comes
//! from a dedicated seeded stream, so the same seed plus the same
//! schedule replays byte-identically — and an empty schedule draws
//! nothing, leaving fault-free runs bit-for-bit unchanged.

use dynmds_event::{SimDuration, SimRng, SimTime};
use dynmds_namespace::MdsId;
use dynmds_storage::DiskFault;

/// How clients behave when a request times out against a dead server:
/// capped retries with exponential backoff and seeded jitter, then a
/// terminal `gave_up` outcome.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries before the client gives up on the operation.
    pub max_retries: u8,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Growth factor per successive retry.
    pub multiplier: f64,
    /// Upper bound on the (pre-jitter) backoff.
    pub cap: SimDuration,
    /// Uniform jitter added on top: `delay * (1 + jitter_frac * U[0,1))`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base: SimDuration::from_millis(500),
            multiplier: 2.0,
            cap: SimDuration::from_secs(4),
            jitter_frac: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retries` (1-based: the first retry
    /// waits `base`, the second `base * multiplier`, …, capped at `cap`,
    /// then jittered from `rng`).
    pub fn delay(&self, retries: u8, rng: &mut SimRng) -> SimDuration {
        let exp = i32::from(retries.saturating_sub(1));
        let raw = self.base.mul_f64(self.multiplier.powi(exp)).min(self.cap);
        raw.mul_f64(1.0 + self.jitter_frac * rng.unit())
    }
}

/// Which disks a degradation window hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskScope {
    /// The shared OSD pool (tier-2 store + on-pool journals).
    Osd,
    /// Each MDS's private journal device.
    Journal,
    /// Both.
    All,
}

/// A network fault window on the client↔MDS edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultSpec {
    /// Probability a message (request send or reply) is lost.
    pub loss_p: f64,
    /// Probability a delivered request is duplicated.
    pub dup_p: f64,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// MDS `mds` crashes at `at` (skipped if it is the last live node).
    Crash { at: SimTime, mds: MdsId },
    /// MDS `mds` comes back at `at`.
    Recover { at: SimTime, mds: MdsId },
    /// Disks in `scope` run degraded during `[from, until)`.
    DiskDegrade { from: SimTime, until: SimTime, fault: DiskFault, scope: DiskScope },
    /// Messages are lost/duplicated during `[from, until)`.
    NetFault { from: SimTime, until: SimTime, spec: NetFaultSpec },
}

/// Seeded random crash/recover churn: per-node alternating up/down
/// periods drawn from exponential distributions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Mean time between failures (mean up period per node).
    pub mtbf: SimDuration,
    /// Mean time to repair (mean down period per node).
    pub mttr: SimDuration,
    /// Seed for the churn stream (independent of the workload seed).
    pub seed: u64,
    /// No crashes are generated at or after this time.
    pub until: SimTime,
    /// Inclusive node-index range; `None` = every node.
    pub nodes: Option<(u16, u16)>,
}

/// A full fault schedule: scripted events plus optional generated churn.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Scripted events, in any order (the event queue sorts by time).
    pub events: Vec<FaultEvent>,
    /// Optional churn generator, expanded per node at install time.
    pub churn: Option<ChurnSpec>,
}

impl FaultSchedule {
    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.churn.is_none()
    }

    /// The concrete event list for an `n_mds`-node cluster: scripted
    /// events followed by the churn expansion. Deterministic — each node
    /// gets its own stream forked from the churn seed.
    pub fn expanded(&self, n_mds: usize) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        let Some(churn) = &self.churn else {
            return out;
        };
        let (lo, hi) = match churn.nodes {
            Some((a, b)) => (a as usize, (b as usize).min(n_mds.saturating_sub(1))),
            None => (0, n_mds.saturating_sub(1)),
        };
        for node in lo..=hi {
            let mut rng = SimRng::seed_from_u64(
                churn.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut t = SimTime::ZERO;
            loop {
                let up = SimDuration::from_secs_f64(rng.exponential(churn.mtbf.as_secs_f64()));
                let crash_at = t + up;
                if crash_at >= churn.until {
                    break;
                }
                let down = SimDuration::from_secs_f64(rng.exponential(churn.mttr.as_secs_f64()));
                // The recovery may land past `until` — the node still
                // comes back, so the run ends with a whole cluster.
                let back_at = crash_at + down;
                out.push(FaultEvent::Crash { at: crash_at, mds: MdsId(node as u16) });
                out.push(FaultEvent::Recover { at: back_at, mds: MdsId(node as u16) });
                t = back_at;
            }
        }
        out
    }

    /// Parses a `--faults` spec: `;`-separated entries.
    ///
    /// ```text
    /// crash:1@5s                                   kill MDS 1 at t=5s
    /// recover:1@10s                                bring it back at t=10s
    /// churn:mtbf=30s,mttr=5s,seed=9,until=20s      seeded random churn
    ///       [,nodes=1-3]                           (optional node range)
    /// disk:lat=4x,iops=0.5x,err=0.01,scope=osd@2s..8s   degradation window
    /// net:loss=0.02,dup=0.01@2s..8s                lossy/duplicating network
    /// ```
    ///
    /// Times accept `s`/`ms`/`us` suffixes (bare numbers are seconds).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut sched = FaultSchedule::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` needs a `kind:` prefix"))?;
            match kind {
                "crash" | "recover" => {
                    let (idx, at) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{entry}`: expected `{kind}:IDX@TIME`"))?;
                    let mds = MdsId(
                        idx.trim()
                            .parse::<u16>()
                            .map_err(|e| format!("`{entry}`: bad node index: {e}"))?,
                    );
                    let at = SimTime::ZERO + parse_duration(at)?;
                    sched.events.push(match kind {
                        "crash" => FaultEvent::Crash { at, mds },
                        _ => FaultEvent::Recover { at, mds },
                    });
                }
                "churn" => {
                    if sched.churn.is_some() {
                        return Err("only one churn entry is allowed".into());
                    }
                    let mut mtbf = None;
                    let mut mttr = None;
                    let mut seed = 0u64;
                    let mut until = SimTime::ZERO + SimDuration::from_secs(60);
                    let mut nodes = None;
                    for kv in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("`{entry}`: expected key=value, got `{kv}`"))?;
                        match k {
                            "mtbf" => mtbf = Some(parse_duration(v)?),
                            "mttr" => mttr = Some(parse_duration(v)?),
                            "seed" => {
                                seed =
                                    v.parse().map_err(|e| format!("`{entry}`: bad seed: {e}"))?;
                            }
                            "until" => until = SimTime::ZERO + parse_duration(v)?,
                            "nodes" => {
                                let (a, b) = v.split_once('-').ok_or_else(|| {
                                    format!("`{entry}`: nodes wants `A-B`, got `{v}`")
                                })?;
                                let a: u16 =
                                    a.parse().map_err(|e| format!("`{entry}`: bad node: {e}"))?;
                                let b: u16 =
                                    b.parse().map_err(|e| format!("`{entry}`: bad node: {e}"))?;
                                if a > b {
                                    return Err(format!("`{entry}`: empty node range {a}-{b}"));
                                }
                                nodes = Some((a, b));
                            }
                            _ => return Err(format!("`{entry}`: unknown churn key `{k}`")),
                        }
                    }
                    let mtbf = mtbf.ok_or_else(|| format!("`{entry}`: churn needs mtbf="))?;
                    let mttr = mttr.ok_or_else(|| format!("`{entry}`: churn needs mttr="))?;
                    if mtbf == SimDuration::ZERO || mttr == SimDuration::ZERO {
                        return Err(format!("`{entry}`: mtbf/mttr must be positive"));
                    }
                    sched.churn = Some(ChurnSpec { mtbf, mttr, seed, until, nodes });
                }
                "disk" => {
                    let (body, window) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{entry}`: expected `disk:...@FROM..UNTIL`"))?;
                    let mut fault = DiskFault::default();
                    let mut scope = DiskScope::All;
                    for kv in body.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("`{entry}`: expected key=value, got `{kv}`"))?;
                        match k {
                            "lat" => fault.latency_mult = parse_mult(v, entry)?,
                            "iops" => fault.iops_mult = parse_mult(v, entry)?,
                            "err" => fault.error_p = parse_prob(v, entry)?,
                            "scope" => {
                                scope = match v {
                                    "osd" => DiskScope::Osd,
                                    "journal" => DiskScope::Journal,
                                    "all" => DiskScope::All,
                                    _ => {
                                        return Err(format!(
                                            "`{entry}`: scope must be osd|journal|all"
                                        ))
                                    }
                                };
                            }
                            _ => return Err(format!("`{entry}`: unknown disk key `{k}`")),
                        }
                    }
                    if fault.iops_mult <= 0.0 {
                        return Err(format!("`{entry}`: iops multiplier must be positive"));
                    }
                    let (from, until) = parse_window(window, entry)?;
                    sched.events.push(FaultEvent::DiskDegrade { from, until, fault, scope });
                }
                "net" => {
                    let (body, window) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{entry}`: expected `net:...@FROM..UNTIL`"))?;
                    let mut spec = NetFaultSpec { loss_p: 0.0, dup_p: 0.0 };
                    for kv in body.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("`{entry}`: expected key=value, got `{kv}`"))?;
                        match k {
                            "loss" => spec.loss_p = parse_prob(v, entry)?,
                            "dup" => spec.dup_p = parse_prob(v, entry)?,
                            _ => return Err(format!("`{entry}`: unknown net key `{k}`")),
                        }
                    }
                    let (from, until) = parse_window(window, entry)?;
                    sched.events.push(FaultEvent::NetFault { from, until, spec });
                }
                _ => {
                    return Err(format!(
                        "unknown fault kind `{kind}` (want crash|recover|churn|disk|net)"
                    ))
                }
            }
        }
        Ok(sched)
    }
}

/// Parses a duration like `5s`, `250ms`, `1500us` or a bare number of
/// seconds (floats allowed).
fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.trim().parse().map_err(|e| format!("bad duration `{s}`: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad duration `{s}`: must be finite and non-negative"));
    }
    Ok(SimDuration::from_secs_f64(v * scale))
}

/// Parses a `FROM..UNTIL` window.
fn parse_window(s: &str, entry: &str) -> Result<(SimTime, SimTime), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("`{entry}`: window wants `FROM..UNTIL`, got `{s}`"))?;
    let from = SimTime::ZERO + parse_duration(a)?;
    let until = SimTime::ZERO + parse_duration(b)?;
    if until <= from {
        return Err(format!("`{entry}`: empty window {s}"));
    }
    Ok((from, until))
}

/// Parses a multiplier like `4x`, `0.5x` or `2`.
fn parse_mult(s: &str, entry: &str) -> Result<f64, String> {
    let n = s.strip_suffix('x').unwrap_or(s);
    let v: f64 = n.trim().parse().map_err(|e| format!("`{entry}`: bad multiplier `{s}`: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("`{entry}`: multiplier `{s}` must be finite and non-negative"));
    }
    Ok(v)
}

/// Parses a probability in `[0, 1]`.
fn parse_prob(s: &str, entry: &str) -> Result<f64, String> {
    let v: f64 = s.trim().parse().map_err(|e| format!("`{entry}`: bad probability `{s}`: {e}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("`{entry}`: probability `{s}` must be in [0, 1]"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_backs_off_and_caps() {
        let p = RetryPolicy { jitter_frac: 0.0, ..RetryPolicy::default() };
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(p.delay(1, &mut rng), SimDuration::from_millis(500));
        assert_eq!(p.delay(2, &mut rng), SimDuration::from_secs(1));
        assert_eq!(p.delay(3, &mut rng), SimDuration::from_secs(2));
        assert_eq!(p.delay(4, &mut rng), SimDuration::from_secs(4));
        assert_eq!(p.delay(5, &mut rng), SimDuration::from_secs(4), "capped");
    }

    #[test]
    fn retry_jitter_is_bounded_and_seeded() {
        let p = RetryPolicy::default();
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for r in 1..=6u8 {
            let da = p.delay(r, &mut a);
            assert_eq!(da, p.delay(r, &mut b), "same seed, same delay");
            let raw = p.base.mul_f64(p.multiplier.powi(i32::from(r) - 1)).min(p.cap);
            assert!(da >= raw && da <= raw.mul_f64(1.0 + p.jitter_frac), "jitter out of range");
        }
    }

    #[test]
    fn parse_scripted_crash_recover() {
        let s = FaultSchedule::parse("crash:1@5s; recover:1@7.5s").unwrap();
        assert_eq!(
            s.events,
            vec![
                FaultEvent::Crash { at: SimTime::from_secs(5), mds: MdsId(1) },
                FaultEvent::Recover { at: SimTime::from_micros(7_500_000), mds: MdsId(1) },
            ]
        );
        assert!(s.churn.is_none());
    }

    #[test]
    fn parse_disk_and_net_windows() {
        let s = FaultSchedule::parse(
            "disk:lat=4x,iops=0.5x,err=0.01,scope=journal@2s..8s;net:loss=0.02,dup=0.01@1s..3s",
        )
        .unwrap();
        assert_eq!(s.events.len(), 2);
        match s.events[0] {
            FaultEvent::DiskDegrade { from, until, fault, scope } => {
                assert_eq!(from, SimTime::from_secs(2));
                assert_eq!(until, SimTime::from_secs(8));
                assert_eq!(scope, DiskScope::Journal);
                assert!((fault.latency_mult - 4.0).abs() < 1e-12);
                assert!((fault.iops_mult - 0.5).abs() < 1e-12);
                assert!((fault.error_p - 0.01).abs() < 1e-12);
            }
            ref e => panic!("expected DiskDegrade, got {e:?}"),
        }
        match s.events[1] {
            FaultEvent::NetFault { from, until, spec } => {
                assert_eq!(from, SimTime::from_secs(1));
                assert_eq!(until, SimTime::from_secs(3));
                assert!((spec.loss_p - 0.02).abs() < 1e-12);
                assert!((spec.dup_p - 0.01).abs() < 1e-12);
            }
            ref e => panic!("expected NetFault, got {e:?}"),
        }
    }

    #[test]
    fn parse_churn_and_expand_deterministically() {
        let s = FaultSchedule::parse("churn:mtbf=10s,mttr=2s,seed=9,until=30s,nodes=1-2").unwrap();
        let c = s.churn.unwrap();
        assert_eq!(c.mtbf, SimDuration::from_secs(10));
        assert_eq!(c.mttr, SimDuration::from_secs(2));
        assert_eq!(c.seed, 9);
        assert_eq!(c.nodes, Some((1, 2)));
        let a = s.expanded(4);
        let b = s.expanded(4);
        assert_eq!(a, b, "expansion must be deterministic");
        assert!(!a.is_empty(), "30s of churn at mtbf=10s should produce events");
        for e in &a {
            match *e {
                FaultEvent::Crash { at, mds } => {
                    assert!(at < SimTime::from_secs(30));
                    assert!((1..=2).contains(&mds.0), "node range respected: {mds:?}");
                }
                FaultEvent::Recover { mds, .. } => assert!((1..=2).contains(&mds.0)),
                ref e => panic!("churn only crashes/recovers, got {e:?}"),
            }
        }
        // Crashes and recoveries pair up per node.
        let crashes = a.iter().filter(|e| matches!(e, FaultEvent::Crash { .. })).count();
        let recovers = a.iter().filter(|e| matches!(e, FaultEvent::Recover { .. })).count();
        assert_eq!(crashes, recovers);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "boom:1@5s",
            "crash:1",
            "crash:x@5s",
            "churn:mttr=2s",
            "churn:mtbf=10s,mttr=2s,nodes=3-1",
            "disk:lat=4x@8s..2s",
            "disk:iops=0x@1s..2s",
            "net:loss=1.5@1s..2s",
            "net:loss=0.1",
        ] {
            assert!(FaultSchedule::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn empty_spec_is_empty_schedule() {
        let s = FaultSchedule::parse("").unwrap();
        assert!(s.is_empty());
        assert!(s.expanded(8).is_empty());
    }

    #[test]
    fn durations_accept_suffixes() {
        assert_eq!(parse_duration("250ms").unwrap(), SimDuration::from_millis(250));
        assert_eq!(parse_duration("1500us").unwrap(), SimDuration::from_micros(1500));
        assert_eq!(parse_duration("2").unwrap(), SimDuration::from_secs(2));
        assert_eq!(parse_duration("0.5s").unwrap(), SimDuration::from_millis(500));
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("zap").is_err());
    }
}

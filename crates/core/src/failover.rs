//! MDS failure and recovery (§2.1.2, §4.6).
//!
//! The paper's storage design makes takeover cheap: metadata lives on a
//! *shared* store ("a shared metadata store … offers fundamental
//! advantages over directly-attached storage by easing MDS failover"),
//! and each node's bounded journal "represents an approximation of that
//! node's working set, allowing the memory cache to be quickly preloaded
//! with millions of records on startup or after a failure".
//!
//! Failure semantics here:
//!
//! * [`Cluster::fail_node`] — the node stops serving and loses its RAM.
//!   Under subtree partitioning its delegations are redistributed
//!   round-robin over the survivors, each of whom *warms its cache from
//!   the failed node's journal* (shared storage) for the subtrees it
//!   inherits. Under hashed strategies placement is remapped by skipping
//!   the dead node ([`Cluster::live_authority`]).
//! * Requests already in flight toward a dead node time out and are
//!   re-sent to the live authority after `FAILOVER_TIMEOUT`.
//! * [`Cluster::recover_node`] — the node comes back empty, preloads its
//!   cache from its journal's working set, and rejoins; the dynamic
//!   balancer migrates load back over subsequent heartbeats.

use dynmds_cache::InsertKind;
use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::{InodeId, MdsId};

use crate::cluster::Cluster;

/// How long a client-side request waits on a dead node before being
/// re-driven at the live authority.
pub const FAILOVER_TIMEOUT: SimDuration = SimDuration::from_millis(500);

impl Cluster {
    /// Whether `mds` is currently alive.
    pub fn is_alive_node(&self, mds: MdsId) -> bool {
        self.alive[mds.index()]
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Maps an authority to a live node: the authority itself when up,
    /// otherwise the next live node in ring order (every client and
    /// server can compute this identically).
    pub fn live_authority(&self, auth: MdsId) -> MdsId {
        if self.alive[auth.index()] {
            return auth;
        }
        let n = self.nodes.len();
        for step in 1..n {
            let cand = (auth.index() + step) % n;
            if self.alive[cand] {
                return MdsId(cand as u16);
            }
        }
        auth // no live node: degenerate, caller's problem
    }

    /// Subtree roots `mds` currently hosts beyond its initial assignment
    /// (inherited via failover or migrated in by the balancer).
    pub fn imported_of(&self, mds: MdsId) -> &[InodeId] {
        &self.imported[mds.index()]
    }

    /// Event-path variant of [`fail_node`] for generated churn: a crash
    /// that would kill the last live node is skipped (and counted)
    /// instead of panicking — a random schedule may legitimately line up
    /// every node's down-time.
    ///
    /// [`fail_node`]: Cluster::fail_node
    pub fn try_fail_node(&mut self, now: SimTime, mds: MdsId) {
        if !self.alive[mds.index()] {
            return; // already down: no-op, mirroring fail_node
        }
        if self.live_nodes() == 1 {
            self.failures_skipped += 1;
            return;
        }
        self.fail_node(now, mds);
    }

    /// Kills `mds` at `now`. Panics if it is the last live node.
    pub fn fail_node(&mut self, now: SimTime, mds: MdsId) {
        assert!(self.live_nodes() > 1, "cannot fail the last node");
        if !self.alive[mds.index()] {
            return;
        }
        self.alive[mds.index()] = false;
        self.failures += 1;
        self.obs.on_failure();

        // A dead node has no load: clear its smoothed estimate, its
        // in-window counters, and its overload streak so residual figures
        // neither mark it "busiest" nor skew the cluster mean the balancer
        // gates on.
        self.hb_ewma[mds.index()] = 0.0;
        self.busy_streak[mds.index()] = 0;
        self.hb_served[mds.index()] = 0;
        self.hb_misses[mds.index()] = 0;

        // RAM is gone. The journal is on shared storage and survives.
        let cap = self.cfg.cache_capacity;
        self.nodes[mds.index()].cache = dynmds_cache::MetaCache::new(cap);

        // The failed node's working set, recoverable by any successor.
        let mut working_set: Vec<InodeId> = self.nodes[mds.index()].journal.working_set().collect();
        working_set.sort();

        // Subtree partitions re-delegate explicitly; hashed partitions
        // remap implicitly via live_authority().
        let owned = match self.partition.as_subtree() {
            Some(sub) => sub.delegations_of(mds),
            None => Vec::new(),
        };
        let survivors: Vec<MdsId> =
            (0..self.nodes.len()).filter(|&i| self.alive[i]).map(|i| MdsId(i as u16)).collect();
        // Rotate the round-robin start by the failure count so successive
        // failures don't pile every inherited subtree onto the same
        // low-indexed survivors.
        let offset = self.failures as usize;
        for (k, root) in owned.into_iter().enumerate() {
            let heir = survivors[(k + offset) % survivors.len()];
            if let Some(sub) = self.partition.as_subtree_mut() {
                sub.delegate(root, heir);
            }
            self.imported[mds.index()].retain(|&d| d != root);
            self.imported[heir.index()].push(root);
            if self.cfg.journal_warming {
                self.warm_from_journal(now, heir, root, &working_set);
            }
        }
    }

    /// Preloads `heir`'s cache with the part of a failed node's journal
    /// working set that falls under `root` — the §4.6 recovery path. The
    /// heir pays a journal read (sequential, fast) plus per-item handling.
    fn warm_from_journal(
        &mut self,
        now: SimTime,
        heir: MdsId,
        root: InodeId,
        working_set: &[InodeId],
    ) {
        let mut inherited: Vec<InodeId> = working_set
            .iter()
            .copied()
            .filter(|&id| self.ns.is_alive(id) && (id == root || self.ns.is_ancestor(root, id)))
            .collect();
        inherited.sort_by_key(|&id| (self.ns.depth(id).unwrap_or(usize::MAX), id));
        if inherited.is_empty() {
            return;
        }
        self.obs.on_journal_warm(heir, inherited.len() as u64);
        // One journal read plus per-record replay cost.
        self.nodes[heir.index()].journal_disk.access(now, dynmds_storage::AccessKind::Read);
        let cost = self.cfg.costs.migrate_per_item.saturating_mul(inherited.len() as u64);
        self.nodes[heir.index()].occupy(now, cost);

        // Anchor the subtree, then replay records parents-first.
        let mut chain: Vec<InodeId> = self.ns.ancestors(root).collect();
        chain.reverse();
        let hi = heir.index();
        for anc in chain {
            let parent =
                self.ns.parent(anc).ok().flatten().filter(|p| self.nodes[hi].cache.peek(*p));
            self.nodes[hi].cache.insert(anc, parent, InsertKind::Prefix);
        }
        for id in inherited {
            let parent =
                self.ns.parent(id).ok().flatten().filter(|p| self.nodes[hi].cache.peek(*p));
            let kind = if self.ns.is_dir(id) { InsertKind::Prefix } else { InsertKind::Target };
            self.nodes[hi].cache.insert(id, parent, kind);
        }
    }

    /// Brings `mds` back at `now`: empty RAM, cache preloaded from its
    /// own journal's working set (fast sequential read), ready to serve.
    /// Under the dynamic strategy the balancer migrates load back on
    /// subsequent heartbeats.
    pub fn recover_node(&mut self, now: SimTime, mds: MdsId) {
        if self.alive[mds.index()] {
            return;
        }
        self.alive[mds.index()] = true;
        // Recovery supersedes any elastic parking: the node is live again
        // and the controller will re-park it if it stays idle.
        self.elastic.standby[mds.index()] = false;
        self.recoveries += 1;
        self.obs.on_recovery();
        if !self.cfg.journal_warming {
            return; // ablation: come back cold
        }
        self.warm_own_journal(now, mds);
    }

    /// The §4.6 cold-start model, shared by crash recovery and elastic
    /// scale-out: preload the node's cache from its own journal's working
    /// set (one fast sequential read plus per-record replay cost).
    pub(crate) fn warm_own_journal(&mut self, now: SimTime, mds: MdsId) {
        // §4.6 cache warming: the log approximates the working set.
        let mut ws: Vec<InodeId> = self.nodes[mds.index()].journal.working_set().collect();
        ws.sort_by_key(|&id| (self.ns.depth(id).unwrap_or(usize::MAX), id));
        self.obs.on_journal_warm(mds, ws.len() as u64);
        self.nodes[mds.index()].journal_disk.access(now, dynmds_storage::AccessKind::Read);
        let cost = self.cfg.costs.migrate_per_item.saturating_mul(ws.len() as u64 + 1);
        self.nodes[mds.index()].occupy(now, cost);
        let mi = mds.index();
        for id in ws {
            if !self.ns.is_alive(id) {
                continue;
            }
            // Parents first (depth-sorted); link whatever chain is cached.
            let mut chain: Vec<InodeId> = self.ns.ancestors(id).collect();
            chain.reverse();
            for anc in chain {
                if !self.nodes[mi].cache.peek(anc) {
                    let parent = self
                        .ns
                        .parent(anc)
                        .ok()
                        .flatten()
                        .filter(|p| self.nodes[mi].cache.peek(*p));
                    self.nodes[mi].cache.insert(anc, parent, InsertKind::Prefix);
                }
            }
            let parent =
                self.ns.parent(id).ok().flatten().filter(|p| self.nodes[mi].cache.peek(*p));
            let kind = if self.ns.is_dir(id) { InsertKind::Prefix } else { InsertKind::Target };
            self.nodes[mi].cache.insert(id, parent, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use dynmds_event::SimTime;
    use dynmds_namespace::MdsId;
    use dynmds_partition::StrategyKind;

    use crate::testutil::tiny_cluster;

    #[test]
    fn live_authority_ring_skips_dead_nodes() {
        let mut c = tiny_cluster(StrategyKind::FileHash);
        assert_eq!(c.live_authority(MdsId(2)), MdsId(2));
        c.fail_node(SimTime::from_secs(1), MdsId(2));
        assert_eq!(c.live_authority(MdsId(2)), MdsId(3));
        c.fail_node(SimTime::from_secs(1), MdsId(3));
        assert_eq!(c.live_authority(MdsId(2)), MdsId(0), "wraps the ring");
        assert_eq!(c.live_nodes(), 2);
    }

    #[test]
    fn live_authority_with_all_nodes_dead_returns_input_unchanged() {
        // The ring scan can come up empty (e.g. during teardown or a
        // pathological failure schedule). The contract is: return the
        // original authority untouched and let the caller decide.
        let mut c = tiny_cluster(StrategyKind::FileHash);
        for a in c.alive.iter_mut() {
            *a = false;
        }
        assert_eq!(c.live_nodes(), 0);
        for i in 0..4 {
            assert_eq!(c.live_authority(MdsId(i)), MdsId(i), "degenerate map is identity");
        }
    }

    #[test]
    fn fail_is_idempotent_and_recover_restores() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.fail_node(SimTime::from_secs(1), MdsId(1));
        c.fail_node(SimTime::from_secs(2), MdsId(1));
        assert_eq!(c.failures, 1, "double-fail is a no-op");
        c.recover_node(SimTime::from_secs(3), MdsId(1));
        c.recover_node(SimTime::from_secs(4), MdsId(1));
        assert_eq!(c.recoveries, 1, "double-recover is a no-op");
        assert!(c.is_alive_node(MdsId(1)));
    }

    #[test]
    #[should_panic(expected = "cannot fail the last node")]
    fn last_node_cannot_fail() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        for i in 0..4 {
            c.fail_node(SimTime::from_secs(1), MdsId(i));
        }
    }

    #[test]
    fn crash_clears_the_load_signal() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        c.hb_served[2] = 9_999;
        c.hb_misses[2] = 123;
        c.hb_ewma[2] = 77_000.0;
        c.busy_streak[2] = 4;
        c.fail_node(SimTime::from_secs(1), MdsId(2));
        assert_eq!(c.hb_ewma[2], 0.0);
        assert_eq!(c.busy_streak[2], 0);
        assert_eq!(c.hb_served[2], 0);
        assert_eq!(c.hb_misses[2], 0);
    }

    #[test]
    fn failed_subtree_delegations_move_to_survivors() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        let owned_before = c.partition.as_subtree().unwrap().delegations_of(MdsId(0));
        assert!(!owned_before.is_empty(), "node 0 owns something initially");
        c.fail_node(SimTime::from_secs(1), MdsId(0));
        let sub = c.partition.as_subtree().unwrap();
        assert!(sub.delegations_of(MdsId(0)).is_empty());
        for root in owned_before {
            let heir = sub.delegation_of(root).expect("still delegated");
            assert_ne!(heir, MdsId(0));
            assert!(c.is_alive_node(heir));
        }
    }

    #[test]
    fn recovery_preloads_cache_from_journal() {
        let mut c = tiny_cluster(StrategyKind::DynamicSubtree);
        // Journal a few live inodes on node 3, then crash and recover it.
        let ids: Vec<_> = c.ns.live_ids().filter(|&i| !c.ns.is_dir(i)).take(10).collect();
        for &id in &ids {
            c.nodes[3].journal.append(id);
        }
        c.fail_node(SimTime::from_secs(1), MdsId(3));
        assert_eq!(c.nodes[3].cache.len(), 0);
        c.recover_node(SimTime::from_secs(2), MdsId(3));
        for &id in &ids {
            assert!(c.nodes[3].cache.peek(id), "working-set item {id} not warmed");
        }
        c.nodes[3].cache.check_integrity();
    }
}

//! Simulation results, shaped for the paper's figures.

use dynmds_event::{SimDuration, SimTime};
use dynmds_metrics::{Summary, TimeSeries};
use dynmds_partition::StrategyKind;

/// Final per-node state.
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// Cache hit rate over the measurement window.
    pub hit_rate: f64,
    /// Fraction of the cache holding prefix-only entries (Figure 3).
    pub prefix_fraction: f64,
    /// Cached entries at the end of the run.
    pub cache_len: usize,
    /// Operations served in the measurement window.
    pub served: u64,
    /// Requests forwarded away in the measurement window.
    pub forwarded: u64,
    /// Requests received in the measurement window.
    pub received: u64,
    /// Disk fetches in the measurement window.
    pub disk_fetches: u64,
    /// Reads served from replicas.
    pub replica_serves: u64,
}

/// Everything a run produced.
pub struct SimReport {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Cluster size.
    pub n_mds: u16,
    /// Start of the measurement window (after any warm-up reset).
    pub measure_start: SimTime,
    /// End of the run.
    pub measure_end: SimTime,
    /// Per node: operations served, one sample per sampling window.
    pub served_series: Vec<TimeSeries>,
    /// Per node: requests forwarded, one sample per sampling window.
    pub forwarded_series: Vec<TimeSeries>,
    /// Per node: requests received, one sample per sampling window.
    pub received_series: Vec<TimeSeries>,
    /// Client-observed latency of completed operations (seconds).
    pub latency: Summary,
    /// Final per-node state.
    pub nodes: Vec<NodeSnapshot>,
    /// Rendered observability exports, when enabled for the run.
    pub obs: Option<crate::obs::ObsExport>,
}

impl SimReport {
    /// Measurement span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.measure_end.saturating_since(self.measure_start).as_secs_f64()
    }

    /// Total operations served cluster-wide in the measurement window.
    pub fn total_served(&self) -> u64 {
        self.nodes.iter().map(|n| n.served).sum()
    }

    /// Total forwards in the measurement window.
    pub fn total_forwarded(&self) -> u64 {
        self.nodes.iter().map(|n| n.forwarded).sum()
    }

    /// Total received in the measurement window.
    pub fn total_received(&self) -> u64 {
        self.nodes.iter().map(|n| n.received).sum()
    }

    /// **Figure 2 quantity**: average per-MDS throughput (ops/s) over the
    /// measurement window.
    pub fn avg_mds_throughput(&self) -> f64 {
        let secs = self.span_secs();
        if secs <= 0.0 || self.n_mds == 0 {
            return 0.0;
        }
        self.total_served() as f64 / secs / self.n_mds as f64
    }

    /// **Figure 3 quantity**: mean prefix fraction of the caches, percent.
    pub fn mean_prefix_pct(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        100.0 * self.nodes.iter().map(|n| n.prefix_fraction).sum::<f64>() / self.nodes.len() as f64
    }

    /// **Figure 4 quantity**: cluster-wide cache hit rate, weighted by
    /// node activity.
    pub fn overall_hit_rate(&self) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.served).sum();
        if total == 0 {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.hit_rate * n.served as f64).sum::<f64>() / total as f64
    }

    /// **Figure 5 quantity**: per-bin (min, mean, max) of per-node
    /// throughput in ops/s.
    pub fn throughput_range_series(&self, bin: SimDuration) -> Vec<(SimTime, f64, f64, f64)> {
        let secs = bin.as_secs_f64();
        let mut out = Vec::new();
        let mut t = self.measure_start;
        while t < self.measure_end {
            let next = t + bin;
            let mut lo = f64::INFINITY;
            let mut hi: f64 = 0.0;
            let mut sum = 0.0;
            for s in &self.served_series {
                let v = s.sum_in(t, next) / secs;
                lo = lo.min(v);
                hi = hi.max(v);
                sum += v;
            }
            if self.served_series.is_empty() {
                lo = 0.0;
            }
            out.push((t, lo, sum / self.served_series.len().max(1) as f64, hi));
            t = next;
        }
        out
    }

    /// **Figure 6 quantity**: fraction of received requests that were
    /// forwarded, per bin.
    pub fn forward_fraction_series(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut t = self.measure_start;
        while t < self.measure_end {
            let next = t + bin;
            let fwd: f64 = self.forwarded_series.iter().map(|s| s.sum_in(t, next)).sum();
            let recv: f64 = self.received_series.iter().map(|s| s.sum_in(t, next)).sum();
            let frac = if recv > 0.0 { fwd / recv } else { 0.0 };
            out.push((t, frac));
            t = next;
        }
        out
    }

    /// **Figure 7 quantities**: cluster-wide replies/s and forwards/s per
    /// bin.
    pub fn reply_forward_rates(&self, bin: SimDuration) -> Vec<(SimTime, f64, f64)> {
        let secs = bin.as_secs_f64();
        let mut out = Vec::new();
        let mut t = self.measure_start;
        while t < self.measure_end {
            let next = t + bin;
            let served: f64 = self.served_series.iter().map(|s| s.sum_in(t, next)).sum();
            let fwd: f64 = self.forwarded_series.iter().map(|s| s.sum_in(t, next)).sum();
            out.push((t, served / secs, fwd / secs));
            t = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(nodes: Vec<NodeSnapshot>) -> SimReport {
        SimReport {
            strategy: StrategyKind::DynamicSubtree,
            n_mds: nodes.len() as u16,
            measure_start: SimTime::ZERO,
            measure_end: SimTime::from_secs(10),
            served_series: vec![TimeSeries::new(); nodes.len()],
            forwarded_series: vec![TimeSeries::new(); nodes.len()],
            received_series: vec![TimeSeries::new(); nodes.len()],
            latency: Summary::new(),
            nodes,
            obs: None,
        }
    }

    fn node(served: u64, hit: f64, prefix: f64) -> NodeSnapshot {
        NodeSnapshot {
            hit_rate: hit,
            prefix_fraction: prefix,
            cache_len: 10,
            served,
            forwarded: 0,
            received: served,
            disk_fetches: 0,
            replica_serves: 0,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report_with(vec![node(5000, 0.9, 0.2), node(3000, 0.8, 0.4)]);
        assert_eq!(r.total_served(), 8000);
        assert!((r.avg_mds_throughput() - 400.0).abs() < 1e-9, "8000 ops/10s/2 nodes");
    }

    #[test]
    fn prefix_pct_is_mean_of_nodes() {
        let r = report_with(vec![node(1, 1.0, 0.2), node(1, 1.0, 0.4)]);
        assert!((r.mean_prefix_pct() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_is_activity_weighted() {
        let r = report_with(vec![node(9000, 1.0, 0.0), node(1000, 0.0, 0.0)]);
        assert!((r.overall_hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn series_helpers_produce_bins() {
        let mut r = report_with(vec![node(100, 1.0, 0.0), node(100, 1.0, 0.0)]);
        for i in 0..10 {
            let t = SimTime::from_secs(i);
            r.served_series[0].push(t, 10.0);
            r.served_series[1].push(t, 20.0);
            r.received_series[0].push(t, 12.0);
            r.received_series[1].push(t, 20.0);
            r.forwarded_series[0].push(t, 2.0);
            r.forwarded_series[1].push(t, 0.0);
        }
        let ranges = r.throughput_range_series(SimDuration::from_secs(2));
        assert_eq!(ranges.len(), 5);
        let (_, lo, mean, hi) = ranges[0];
        assert!((lo - 10.0).abs() < 1e-9);
        assert!((hi - 20.0).abs() < 1e-9);
        assert!((mean - 15.0).abs() < 1e-9);

        let fwd = r.forward_fraction_series(SimDuration::from_secs(10));
        assert_eq!(fwd.len(), 1);
        assert!((fwd[0].1 - 20.0 / 320.0).abs() < 1e-9);

        let rf = r.reply_forward_rates(SimDuration::from_secs(10));
        assert!((rf[0].1 - 30.0).abs() < 1e-9, "300 ops / 10 s");
        assert!((rf[0].2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report_with(vec![]);
        assert_eq!(r.avg_mds_throughput(), 0.0);
        assert_eq!(r.mean_prefix_pct(), 0.0);
        assert_eq!(r.overall_hit_rate(), 0.0);
    }
}

//! Deterministic-simulation-testing probe (DST hooks).
//!
//! A [`DstProbe`] is an optional recorder the cluster carries only when a
//! DST harness asks for it ([`Cluster::enable_dst_probe`]). It taps three
//! things the reference-model oracle in `dynmds-dst` needs but cannot see
//! from outside:
//!
//! 1. the **applied-op log** — every mutation the cluster actually applied
//!    (or rejected), in application order, with the primary inode it
//!    touched. The oracle replays this stream against a flat, strategy-
//!    agnostic model filesystem and diffs the results at checkpoints;
//! 2. **per-logical-op protocol invariants** — within one client
//!    operation (Issue → terminal Reply) the forwarding hop count must be
//!    non-decreasing and bounded, the retry count must be non-decreasing,
//!    and a give-up must happen after *exactly* the configured budget.
//!    These catch exactly the class of bug PR 3 fixed by hand (a retry
//!    path silently resetting `hops`);
//! 3. a violation list, drained by the harness alongside the log.
//!
//! Like [`ClusterObs`](crate::obs::ClusterObs), the disabled path costs a
//! single branch per hook site, and the probe never influences simulation
//! behaviour — it only observes.
//!
//! [`Cluster::enable_dst_probe`]: crate::cluster::Cluster::enable_dst_probe

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, InodeId, MdsId};
use dynmds_workload::Op;

/// One entry of the applied-op log: what `apply_update` did.
#[derive(Clone, Debug)]
pub struct AppliedOp {
    /// Virtual time of application.
    pub at: SimTime,
    /// Node that applied it.
    pub mds: MdsId,
    /// Issuing client.
    pub client: ClientId,
    /// Credential the op ran under.
    pub uid: u32,
    /// The operation itself.
    pub op: Op,
    /// Whether the namespace accepted the mutation (`false` = error
    /// reply, nothing committed).
    pub applied: bool,
    /// The primary inode the mutation touched: the created id for
    /// `Create`/`Mkdir`, the dentry's id for `Unlink`/`Rename`, the
    /// target for the rest. `None` when the op failed.
    pub primary: Option<InodeId>,
    /// Whether the op was absorbed as a replica shared write (§4.2)
    /// instead of applied at the authority.
    pub shared_absorbed: bool,
}

/// One entry of the probe's record stream, in decision order. Mutations
/// and proxy-absorbed answers share one log so the oracle can check each
/// proxy serve against the model state *at the instant the proxy decided
/// to answer* (the proxy's linearization point).
#[derive(Clone, Debug)]
pub enum DstRecord {
    /// `apply_update` ran for a mutation.
    Applied(AppliedOp),
    /// A proxy answered a lookup negatively from its cache; the model
    /// must agree the name is absent right now.
    ProxyNegServe {
        /// When the proxy decided.
        at: SimTime,
        /// The asking client.
        client: ClientId,
        /// Directory searched.
        dir: InodeId,
        /// Name the proxy claims is absent.
        name: String,
    },
    /// A proxy answered a read of `item` from its cache; the model must
    /// agree the inode is alive.
    ProxyReadServe {
        /// When the proxy decided.
        at: SimTime,
        /// The asking client.
        client: ClientId,
        /// Item served from the proxy cache.
        item: InodeId,
    },
}

/// Per-client state of the current logical operation.
#[derive(Clone, Copy, Debug, Default)]
struct Flight {
    /// Highest hop count observed at any arrival of this logical op.
    hops_seen: u8,
    /// Highest retry count observed.
    retries_seen: u8,
    /// Forwards performed within this logical op.
    forwards: u8,
}

/// The recorder. See module docs.
#[derive(Debug, Default)]
pub struct DstProbe {
    flights: Vec<Flight>,
    /// Record stream since the last [`take_records`](Self::take_records).
    applied: Vec<DstRecord>,
    /// Invariant violations since the last drain, in detection order.
    violations: Vec<String>,
    /// Lifetime count of applied-op records (survives drains).
    pub applied_total: u64,
}

impl DstProbe {
    /// A probe for `n_clients` clients.
    pub fn new(n_clients: usize) -> Self {
        DstProbe { flights: vec![Flight::default(); n_clients], ..Default::default() }
    }

    /// Drains the record stream (decision order).
    pub fn take_records(&mut self) -> Vec<DstRecord> {
        std::mem::take(&mut self.applied)
    }

    /// Drains the violation list.
    pub fn take_violations(&mut self) -> Vec<String> {
        std::mem::take(&mut self.violations)
    }

    /// Whether any violation is pending.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    // ---- hook points (called by the cluster) -------------------------

    /// A client issued a fresh logical op: reset its flight state. The
    /// closed loop guarantees at most one in-flight op per client.
    pub(crate) fn on_issue(&mut self, client: ClientId) {
        if let Some(f) = self.flights.get_mut(client.index()) {
            *f = Flight::default();
        }
    }

    /// A request arrived at a node (dead or alive).
    pub(crate) fn on_arrive(&mut self, now: SimTime, client: ClientId, hops: u8, retries: u8) {
        let Some(f) = self.flights.get_mut(client.index()) else { return };
        if hops < f.hops_seen {
            self.violations.push(format!(
                "client {} at {}us: forwarding hops went backwards ({} after {})",
                client.0,
                now.as_micros(),
                hops,
                f.hops_seen
            ));
        }
        if hops > 3 {
            self.violations.push(format!(
                "client {} at {}us: hop count {} exceeds the forwarding bound of 3",
                client.0,
                now.as_micros(),
                hops
            ));
        }
        if retries < f.retries_seen {
            self.violations.push(format!(
                "client {} at {}us: retry count went backwards ({} after {})",
                client.0,
                now.as_micros(),
                retries,
                f.retries_seen
            ));
        }
        f.hops_seen = f.hops_seen.max(hops);
        f.retries_seen = f.retries_seen.max(retries);
    }

    /// A node forwarded the request onward.
    pub(crate) fn on_forward(&mut self, now: SimTime, client: ClientId) {
        let Some(f) = self.flights.get_mut(client.index()) else { return };
        f.forwards = f.forwards.saturating_add(1);
        if f.forwards > 3 {
            self.violations.push(format!(
                "client {} at {}us: {} forwards within one logical op (bound is 3)",
                client.0,
                now.as_micros(),
                f.forwards
            ));
        }
    }

    /// The client abandoned the op. `retries` is the just-incremented
    /// count; it must equal `max_retries + 1` — giving up earlier means
    /// the budget was short-circuited, later means it leaked.
    pub(crate) fn on_gave_up(&mut self, now: SimTime, client: ClientId, retries: u8, max: u8) {
        if retries != max.saturating_add(1) {
            self.violations.push(format!(
                "client {} at {}us: gave up at retry {} (budget is exactly {})",
                client.0,
                now.as_micros(),
                retries,
                max
            ));
        }
    }

    /// `apply_update` finished for an update op.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_applied(
        &mut self,
        at: SimTime,
        mds: MdsId,
        client: ClientId,
        uid: u32,
        op: &Op,
        applied: bool,
        primary: Option<InodeId>,
        shared_absorbed: bool,
    ) {
        self.applied_total += 1;
        self.applied.push(DstRecord::Applied(AppliedOp {
            at,
            mds,
            client,
            uid,
            op: op.clone(),
            applied,
            primary,
            shared_absorbed,
        }));
    }

    /// A proxy is about to answer an op from its own caches. Hop
    /// accounting invariant: an absorbed op never entered the cluster, so
    /// its flight must show zero arrivals-with-hops and zero forwards.
    fn check_proxy_flight(&mut self, now: SimTime, client: ClientId, what: &str) {
        let Some(f) = self.flights.get(client.index()) else { return };
        if f.hops_seen != 0 || f.forwards != 0 {
            self.violations.push(format!(
                "client {} at {}us: proxy {} absorbed an op that already entered \
                 the cluster ({} hops, {} forwards)",
                client.0,
                now.as_micros(),
                what,
                f.hops_seen,
                f.forwards
            ));
        }
    }

    /// A proxy served a negative lookup from its cache.
    pub(crate) fn on_proxy_neg_serve(
        &mut self,
        now: SimTime,
        client: ClientId,
        dir: InodeId,
        name: &str,
    ) {
        self.check_proxy_flight(now, client, "neg-lookup");
        self.applied.push(DstRecord::ProxyNegServe { at: now, client, dir, name: name.to_owned() });
    }

    /// A proxy served a read from its cache.
    pub(crate) fn on_proxy_read_serve(&mut self, now: SimTime, client: ClientId, item: InodeId) {
        self.check_proxy_flight(now, client, "read");
        self.applied.push(DstRecord::ProxyReadServe { at: now, client, item });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_regression_is_flagged() {
        let mut p = DstProbe::new(2);
        p.on_issue(ClientId(0));
        p.on_arrive(SimTime::from_micros(1), ClientId(0), 1, 0);
        p.on_arrive(SimTime::from_micros(2), ClientId(0), 0, 1);
        assert!(p.has_violations());
        let v = p.take_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("hops went backwards"), "{}", v[0]);
        assert!(!p.has_violations(), "drained");
    }

    #[test]
    fn fresh_issue_resets_the_flight() {
        let mut p = DstProbe::new(1);
        p.on_issue(ClientId(0));
        p.on_arrive(SimTime::from_micros(1), ClientId(0), 2, 3);
        p.on_issue(ClientId(0));
        p.on_arrive(SimTime::from_micros(2), ClientId(0), 0, 0);
        assert!(!p.has_violations(), "new logical op starts clean");
    }

    #[test]
    fn exact_give_up_budget_is_enforced() {
        let mut p = DstProbe::new(1);
        p.on_gave_up(SimTime::ZERO, ClientId(0), 7, 6);
        assert!(!p.has_violations(), "7 = 6 + 1 is the exact budget");
        p.on_gave_up(SimTime::ZERO, ClientId(0), 3, 6);
        assert!(p.has_violations(), "early give-up is a bug");
    }

    #[test]
    fn applied_log_drains_in_order() {
        let mut p = DstProbe::new(1);
        for i in 0..3u64 {
            p.on_applied(
                SimTime::from_micros(i),
                MdsId(0),
                ClientId(0),
                0,
                &Op::SetAttr(InodeId(i)),
                true,
                Some(InodeId(i)),
                false,
            );
        }
        let log = p.take_records();
        assert_eq!(log.len(), 3);
        let ats: Vec<SimTime> = log
            .iter()
            .map(|r| match r {
                DstRecord::Applied(a) => a.at,
                other => panic!("expected Applied, got {other:?}"),
            })
            .collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.applied_total, 3);
        assert!(p.take_records().is_empty());
    }

    #[test]
    fn proxy_absorb_after_cluster_entry_is_flagged() {
        let mut p = DstProbe::new(1);
        p.on_issue(ClientId(0));
        p.on_proxy_neg_serve(SimTime::from_micros(1), ClientId(0), InodeId(4), "x");
        assert!(!p.has_violations(), "fresh flight may absorb");
        p.on_issue(ClientId(0));
        p.on_arrive(SimTime::from_micros(2), ClientId(0), 1, 0);
        p.on_proxy_read_serve(SimTime::from_micros(3), ClientId(0), InodeId(4));
        assert!(p.has_violations(), "op already inside the cluster must not be absorbed");
        let v = p.take_violations();
        assert!(v[0].contains("proxy read absorbed"), "{}", v[0]);
        let recs = p.take_records();
        assert!(matches!(recs[0], DstRecord::ProxyNegServe { .. }));
        assert!(matches!(recs[1], DstRecord::ProxyReadServe { .. }));
    }
}

//! The dynmds metadata-cluster simulator — the paper's primary
//! contribution (§4) plus the four comparison strategies, in one
//! event-driven model.
//!
//! A [`Simulation`] wires together:
//!
//! * a shared [`Namespace`](dynmds_namespace::Namespace) (ground truth),
//! * a [`Partition`](dynmds_partition::Partition) mapping items to
//!   authoritative servers,
//! * one [`node::MdsNode`] per server — cache with prefix pinning,
//!   decaying popularity counters, bounded journal, and a serial CPU,
//! * a [`client::ClientPool`] — per-client location caches routed by
//!   deepest known prefix (subtree strategies) or the hash function
//!   (hashed strategies),
//! * a [`Workload`](dynmds_workload::Workload) generating operations,
//! * the shared OSD pool both storage tiers live on.
//!
//! Behavioural pieces of §4 and where they live:
//!
//! | Mechanism | Module |
//! |---|---|
//! | hierarchical partition, path traversal, prefix caching | [`cluster`] |
//! | authority, replication, cache coherence | [`cluster`], [`traffic`] |
//! | heartbeat load balancing, subtree export/import | [`balance`] |
//! | traffic control for flash crowds | [`traffic`] |
//! | dynamic directory hashing for huge/hot directories | [`cluster`] |
//! | client ignorance & request forwarding | [`client`], [`cluster`] |

pub mod balance;
pub mod check;
pub mod client;
pub mod cluster;
pub mod config;
pub mod elastic;
pub mod failover;
pub mod fault;
pub mod node;
pub mod obs;
pub mod report;
pub mod request;
pub mod shard;
pub mod sim;
#[cfg(test)]
pub(crate) mod testutil;
pub mod traffic;

pub use failover::FAILOVER_TIMEOUT;

pub use check::{AppliedOp, DstProbe, DstRecord};
pub use cluster::{Cluster, MigrationRecord};
pub use config::{CostModel, ElasticConfig, SimConfig};
pub use elastic::ElasticState;
pub use fault::{ChurnSpec, DiskScope, FaultEvent, FaultSchedule, NetFaultSpec, RetryPolicy};
pub use obs::{ClusterObs, ObsExport};
pub use report::{NodeSnapshot, SimReport};
pub use request::{Request, SimEvent};
pub use shard::{LatencyAgg, ShardReport, ShardedSimulation};
pub use sim::Simulation;

//! Client population and request routing (§4.4, §5.3.3).
//!
//! Clients cache *location information* — which servers to contact for
//! which parts of the hierarchy — learned from replies. A request is
//! directed by the **deepest known prefix** of its target; clients that
//! know nothing send to a random server and get forwarded ("their requests
//! must be directed randomly and forwarded within the MDS cluster").
//!
//! Under hashed strategies clients instead compute the placement function
//! themselves and always contact the mapped server directly — which is
//! exactly why those strategies cannot prevent flash crowds (§4.4).

use dynmds_event::SimRng;
use dynmds_namespace::{ClientId, FxHashMap, InodeId, MdsId, Namespace};

/// What a client believes about an item's location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnownLocation {
    /// Served by one authoritative node.
    Single(MdsId),
    /// Replicated on many/all nodes — contact anyone (traffic control).
    Everywhere,
}

/// Per-client location caches plus the routing logic.
pub struct ClientPool {
    routes: Vec<FxHashMap<InodeId, KnownLocation>>,
    /// Per client: metadata leases (item → expiry), §4.2.
    leases: Vec<FxHashMap<InodeId, dynmds_event::SimTime>>,
    uids: Vec<u32>,
    rng: SimRng,
    n_mds: u16,
    /// The *announced* membership random routing draws from. Full pool by
    /// default; the elastic controller narrows it when nodes are parked
    /// (clients are told about planned membership changes, unlike
    /// crashes, which they discover by timeout).
    member_ids: Vec<u16>,
    lease_hits: u64,
}

impl ClientPool {
    /// Creates `n_clients` clients with empty location caches.
    pub fn new(n_clients: u32, n_mds: u16, seed: u64) -> Self {
        assert!(n_mds > 0, "cluster must be non-empty");
        ClientPool {
            routes: (0..n_clients).map(|_| FxHashMap::default()).collect(),
            leases: (0..n_clients).map(|_| FxHashMap::default()).collect(),
            uids: vec![0; n_clients as usize],
            rng: SimRng::seed_from_u64(seed ^ 0xC11E_47B0),
            n_mds,
            member_ids: (0..n_mds).collect(),
            lease_hits: 0,
        }
    }

    /// Announces the active membership (elastic scaling only — crash
    /// failures are *not* announced). With the full pool active the
    /// random-routing draw below is bit-identical to the membership-less
    /// implementation.
    pub fn set_membership(&mut self, active: &[bool]) {
        self.member_ids =
            active.iter().enumerate().filter(|&(_, &a)| a).map(|(i, _)| i as u16).collect();
        assert!(!self.member_ids.is_empty(), "membership cannot be empty");
    }

    /// Whether `client` holds a live lease on `item` at `now`. A hit is
    /// counted and may be served from the client's own cache.
    pub fn lease_valid(
        &mut self,
        client: ClientId,
        item: InodeId,
        now: dynmds_event::SimTime,
    ) -> bool {
        let valid = self.leases[client.index()].get(&item).map(|&exp| exp > now).unwrap_or(false);
        if valid {
            self.lease_hits += 1;
        }
        valid
    }

    /// Grants `client` a lease on `item` until `expiry` (reply-time
    /// piggyback).
    pub fn grant_lease(&mut self, client: ClientId, item: InodeId, expiry: dynmds_event::SimTime) {
        let map = &mut self.leases[client.index()];
        // Opportunistic pruning keeps per-client state bounded.
        if map.len() > 4_096 {
            map.retain(|_, &mut exp| exp > expiry);
        }
        map.insert(item, expiry);
    }

    /// Total lease-served reads.
    pub fn lease_hits(&self) -> u64 {
        self.lease_hits
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Sets the uid a client authenticates as.
    pub fn set_uid(&mut self, client: ClientId, uid: u32) {
        self.uids[client.index()] = uid;
    }

    /// The uid a client authenticates as.
    pub fn uid(&self, client: ClientId) -> u32 {
        self.uids[client.index()]
    }

    /// Picks the server `client` sends a request for `target` to, using
    /// the deepest known prefix; unknown territory goes to a random node.
    pub fn route(&mut self, ns: &Namespace, client: ClientId, target: InodeId) -> MdsId {
        let map = &self.routes[client.index()];
        let hit = std::iter::once(target)
            .chain(ns.ancestors(target))
            .find_map(|id| map.get(&id).copied());
        match hit {
            Some(KnownLocation::Single(m)) => m,
            Some(KnownLocation::Everywhere) => self.random_mds(),
            None => self.random_mds(),
        }
    }

    /// A uniformly random server among the announced membership.
    pub fn random_mds(&mut self) -> MdsId {
        if self.member_ids.len() == self.n_mds as usize {
            // Full pool: same draw as a membership-less pool, so every
            // statically provisioned run is unchanged bit-for-bit.
            return MdsId(self.rng.below(self.n_mds as u64) as u16);
        }
        let k = self.rng.below(self.member_ids.len() as u64) as usize;
        MdsId(self.member_ids[k])
    }

    /// Records location info delivered with a reply ("all responses sent
    /// to clients include current distribution information … for the
    /// metadata requested and their prefix directories").
    pub fn learn(&mut self, client: ClientId, item: InodeId, loc: KnownLocation) {
        self.routes[client.index()].insert(item, loc);
    }

    /// Whether the client has *any* location entry for `item`.
    pub fn knows(&self, client: ClientId, item: InodeId) -> bool {
        self.routes[client.index()].contains_key(&item)
    }

    /// Drops an entry (used by tests; real staleness is corrected by
    /// forwarding + re-learning).
    pub fn forget(&mut self, client: ClientId, item: InodeId) {
        self.routes[client.index()].remove(&item);
    }

    /// Rewrites every location entry naming `from` to that item's new
    /// authority — the redirect set a *voluntarily* departing node sends
    /// as part of its handoff (a crashed node sends nothing; staleness
    /// after a crash is still discovered by timeout). Entries are
    /// rewritten independently, so map iteration order cannot influence
    /// the outcome.
    pub fn redirect_routes(&mut self, from: MdsId, new_authority: impl Fn(InodeId) -> MdsId) {
        for map in &mut self.routes {
            for (&item, loc) in map.iter_mut() {
                if *loc == KnownLocation::Single(from) {
                    *loc = KnownLocation::Single(new_authority(item));
                }
            }
        }
    }

    /// Total location entries across all clients (memory accounting).
    pub fn total_entries(&self) -> usize {
        self.routes.iter().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::Permissions;

    fn tree() -> (Namespace, InodeId, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a", Permissions::directory(1)).unwrap();
        let b = ns.mkdir(a, "b", Permissions::directory(1)).unwrap();
        let f = ns.create_file(b, "f", Permissions::shared(1)).unwrap();
        (ns, a, b, f)
    }

    #[test]
    fn unknown_targets_route_randomly_but_in_range() {
        let (ns, _, _, f) = tree();
        let mut pool = ClientPool::new(1, 4, 1);
        for _ in 0..50 {
            let m = pool.route(&ns, ClientId(0), f);
            assert!(m.0 < 4);
        }
    }

    #[test]
    fn deepest_known_prefix_wins() {
        let (ns, a, b, f) = tree();
        let mut pool = ClientPool::new(1, 8, 1);
        pool.learn(ClientId(0), a, KnownLocation::Single(MdsId(1)));
        assert_eq!(pool.route(&ns, ClientId(0), f), MdsId(1), "via /a");
        pool.learn(ClientId(0), b, KnownLocation::Single(MdsId(2)));
        assert_eq!(pool.route(&ns, ClientId(0), f), MdsId(2), "deeper /a/b wins");
        pool.learn(ClientId(0), f, KnownLocation::Single(MdsId(3)));
        assert_eq!(pool.route(&ns, ClientId(0), f), MdsId(3), "exact item wins");
    }

    #[test]
    fn everywhere_spreads_requests() {
        let (ns, _, _, f) = tree();
        let mut pool = ClientPool::new(1, 8, 3);
        pool.learn(ClientId(0), f, KnownLocation::Everywhere);
        let targets: std::collections::HashSet<MdsId> =
            (0..200).map(|_| pool.route(&ns, ClientId(0), f)).collect();
        assert!(targets.len() >= 6, "replicated items spread load: {targets:?}");
    }

    #[test]
    fn clients_have_independent_caches() {
        let (ns, a, _, f) = tree();
        let mut pool = ClientPool::new(2, 8, 1);
        pool.learn(ClientId(0), a, KnownLocation::Single(MdsId(5)));
        assert!(pool.knows(ClientId(0), a));
        assert!(!pool.knows(ClientId(1), a));
        assert_eq!(pool.route(&ns, ClientId(0), f), MdsId(5));
        assert_eq!(pool.total_entries(), 1);
    }

    #[test]
    fn forget_restores_ignorance() {
        let (ns, a, _, f) = tree();
        let mut pool = ClientPool::new(1, 2, 9);
        pool.learn(ClientId(0), a, KnownLocation::Single(MdsId(1)));
        pool.forget(ClientId(0), a);
        assert!(!pool.knows(ClientId(0), a));
        // Routes still total.
        let m = pool.route(&ns, ClientId(0), f);
        assert!(m.0 < 2);
    }

    #[test]
    fn leases_expire_and_count_hits() {
        use dynmds_event::SimTime;
        let mut pool = ClientPool::new(2, 4, 1);
        let item = InodeId(9);
        assert!(!pool.lease_valid(ClientId(0), item, SimTime::from_secs(1)));
        pool.grant_lease(ClientId(0), item, SimTime::from_secs(5));
        assert!(pool.lease_valid(ClientId(0), item, SimTime::from_secs(4)));
        assert!(!pool.lease_valid(ClientId(1), item, SimTime::from_secs(4)), "per-client");
        assert!(!pool.lease_valid(ClientId(0), item, SimTime::from_secs(5)), "expired at ttl");
        assert_eq!(pool.lease_hits(), 1, "only valid checks count");
    }

    #[test]
    fn lease_renewal_extends_expiry() {
        use dynmds_event::SimTime;
        let mut pool = ClientPool::new(1, 2, 1);
        let item = InodeId(3);
        pool.grant_lease(ClientId(0), item, SimTime::from_secs(2));
        pool.grant_lease(ClientId(0), item, SimTime::from_secs(10));
        assert!(pool.lease_valid(ClientId(0), item, SimTime::from_secs(8)));
    }

    #[test]
    fn uids_tracked_per_client() {
        let mut pool = ClientPool::new(3, 2, 1);
        pool.set_uid(ClientId(1), 42);
        assert_eq!(pool.uid(ClientId(0)), 0);
        assert_eq!(pool.uid(ClientId(1)), 42);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
    }
}

//! Events flowing through the simulation engine.

use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, MdsId};
use dynmds_workload::Op;

/// One in-flight client request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Issuing client.
    pub client: ClientId,
    /// Credential the permission checks run against.
    pub uid: u32,
    /// The metadata operation.
    pub op: Op,
    /// When the client sent it (for latency accounting).
    pub issued_at: SimTime,
    /// How many times it has been forwarded within the cluster.
    pub hops: u8,
    /// How many times the client has re-driven it after a dead-node
    /// timeout or a lost message (bounded by the retry policy).
    pub retries: u8,
    /// Whether a proxy relayed this request into the cluster (the reply
    /// then teaches the proxy's caches instead of the client's routes).
    pub via_proxy: bool,
}

/// The simulator's event alphabet.
#[derive(Clone, Debug)]
pub enum SimEvent {
    /// A client wakes up, generates its next op, and sends it.
    Issue(ClientId),
    /// A request arrives at an MDS (after network latency).
    Arrive {
        /// Receiving server.
        mds: MdsId,
        /// The request.
        req: Request,
    },
    /// A reply reaches its client; the client will think, then issue.
    Reply {
        /// The client.
        client: ClientId,
    },
    /// Load-balancer heartbeat (§4.3).
    Heartbeat,
    /// Metrics sampling tick.
    Sample,
    /// Fault injection: the node dies (§2.1.2).
    Fail(MdsId),
    /// Fault injection: the node comes back and warms its cache from its
    /// journal (§4.6).
    Recover(MdsId),
    /// Fault injection: install (`Some`) or clear (`None`) a disk
    /// degradation window on the given scope.
    SetDiskFault {
        /// Which devices the window covers.
        scope: crate::fault::DiskScope,
        /// The degradation, or `None` to restore nominal service.
        fault: Option<dynmds_storage::DiskFault>,
    },
    /// Fault injection: install (`Some`) or clear (`None`) the network
    /// fault window on the client↔MDS edges.
    SetNetFault(Option<crate::fault::NetFaultSpec>),
    /// A duplicated request delivery: the server burns CPU discarding it
    /// (the original carries the real work).
    NetDup {
        /// Receiving server.
        mds: MdsId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::InodeId;

    #[test]
    fn request_carries_context() {
        let r = Request {
            client: ClientId(3),
            uid: 4,
            op: Op::Stat(InodeId(9)),
            issued_at: SimTime::from_micros(12),
            hops: 0,
            retries: 0,
            via_proxy: false,
        };
        assert_eq!(r.op.target(), InodeId(9));
        assert_eq!(r.client, ClientId(3));
    }
}

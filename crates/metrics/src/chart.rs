//! Plain-text line charts, for rendering figure-shaped series in
//! terminals, examples and EXPERIMENTS.md.

/// A multi-series ASCII chart over a shared x-axis.
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    /// Creates a chart with the plotting area `width × height` characters.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 3, "chart area too small");
        AsciiChart { title: title.into(), width, height, series: Vec::new() }
    }

    /// Adds a series drawn with `glyph`.
    pub fn series(&mut self, glyph: char, points: &[(f64, f64)]) -> &mut Self {
        self.series.push((glyph, points.to_vec()));
        self
    }

    /// Renders the chart. Later series overdraw earlier ones where they
    /// collide.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> =
            self.series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        if all.is_empty() {
            return format!("# {}\n(empty chart)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }
        // Anchor the y-axis at zero for magnitude-style data.
        if y_min > 0.0 {
            y_min = 0.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, points) in &self.series {
            for &(x, y) in points {
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = *glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let y_label_top = format!("{y_max:.0}");
        let y_label_bot = format!("{y_min:.0}");
        let label_w = y_label_top.len().max(y_label_bot.len());
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_label_top:>label_w$}")
            } else if i == self.height - 1 {
                format!("{y_label_bot:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<w$.0}{:>w2$.0}\n",
            " ".repeat(label_w + 1),
            x_min,
            x_max,
            w = self.width / 2,
            w2 = self.width - self.width / 2,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axes_and_points() {
        let mut ch = AsciiChart::new("demo", 20, 5);
        ch.series('*', &[(0.0, 0.0), (10.0, 100.0)]);
        let out = ch.render();
        assert!(out.starts_with("# demo\n"));
        assert!(out.contains('*'));
        assert!(out.contains("100"));
        assert!(out.contains('+'));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + 5 + 2, "title + rows + axis + labels");
    }

    #[test]
    fn max_point_is_on_top_row_min_on_bottom() {
        let mut ch = AsciiChart::new("", 10, 4);
        ch.series('x', &[(0.0, 0.0), (9.0, 50.0)]);
        let out = ch.render();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].contains('x'), "top row holds the max");
        assert!(lines[4].contains('x'), "bottom row holds the zero");
    }

    #[test]
    fn two_series_use_their_glyphs() {
        let mut ch = AsciiChart::new("", 20, 5);
        ch.series('a', &[(0.0, 1.0), (1.0, 2.0)]);
        ch.series('b', &[(0.0, 9.0), (1.0, 8.0)]);
        let out = ch.render();
        assert!(out.contains('a'));
        assert!(out.contains('b'));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let ch = AsciiChart::new("nothing", 12, 4);
        assert!(ch.render().contains("empty chart"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut ch = AsciiChart::new("", 12, 4);
        ch.series('=', &[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        let out = ch.render();
        assert!(out.contains('='));
    }
}

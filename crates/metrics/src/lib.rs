//! Measurement and reporting for the dynmds simulator.
//!
//! Every figure in the paper's evaluation is either a time series
//! (Figures 5–7), a per-configuration scalar swept over a parameter
//! (Figures 2–4), or a distribution summary. This crate provides those
//! three shapes plus plain-text rendering:
//!
//! * [`TimeSeries`] — timestamped samples with binning/rate helpers,
//! * [`Summary`] — running min/mean/max/percentile statistics,
//! * [`Table`] — aligned ASCII tables and CSV output for the harness.

pub mod chart;
pub mod series;
pub mod summary;
pub mod table;

pub use chart::AsciiChart;
pub use series::TimeSeries;
pub use summary::{Histogram, Summary};
pub use table::Table;

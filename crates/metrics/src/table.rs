//! Plain-text tables: the harness prints every figure's data as an aligned
//! table (for reading) and CSV (for re-plotting).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: formats a row of mixed display values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let formatted: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&formatted)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>width$}", h, width = widths[i]);
            if i + 1 < ncols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}", c, width = widths[i]);
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders CSV (headers + rows). Cells containing commas or quotes are
    /// quoted.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", &["mds", "ops/s"]);
        t.row(&["5".into(), "3100.0".into()]);
        t.row(&["10".into(), "2900.5".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.starts_with("# Fig X\n"));
        assert!(r.contains("mds"));
        assert!(r.contains("3100.0"));
        // All data lines share the header line's width.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "mds,ops/s");
        assert_eq!(lines[1], "5,3100.0");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let c = t.to_csv();
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new("", &["n", "x"]);
        t.row_display(&[&42, &1.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_csv().contains("42,1.5"));
    }
}

//! Distribution summaries.

/// Collects f64 samples and reports min/mean/max/percentiles. Percentiles
/// sort lazily; `record` stays O(1).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "samples must be finite");
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy, or
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Population standard deviation, or `None` with < 1 sample.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Summary {
        let mut s = Summary::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.record(v);
        }
        s
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn basic_stats() {
        let s = filled();
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.median(), Some(3.0));
    }

    #[test]
    fn quantiles() {
        let s = filled();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.25), Some(2.0));
    }

    #[test]
    fn std_dev_of_uniform() {
        let s = filled();
        let sd = s.std_dev().unwrap();
        assert!((sd - (2.0f64).sqrt()).abs() < 1e-9, "population sd of 1..5 is sqrt(2)");
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(7.0);
        assert_eq!(s.min(), Some(7.0));
        assert_eq!(s.max(), Some(7.0));
        assert_eq!(s.median(), Some(7.0));
        assert_eq!(s.std_dev(), Some(0.0));
    }
}

/// A fixed set of logarithmic latency buckets rendered as an ASCII
/// histogram; built from a [`Summary`]'s samples.
pub struct Histogram {
    /// Bucket upper bounds (seconds) and counts.
    pub buckets: Vec<(f64, usize)>,
    /// Samples above the last bound.
    pub overflow: usize,
}

impl Summary {
    /// Buckets samples into `2^k`-spaced bins starting at `base` seconds.
    pub fn histogram(&self, base: f64, n_buckets: usize) -> Histogram {
        assert!(base > 0.0 && n_buckets > 0, "histogram shape invalid");
        let bounds: Vec<f64> = (0..n_buckets).map(|k| base * 2f64.powi(k as i32)).collect();
        let mut buckets: Vec<(f64, usize)> = bounds.iter().map(|&b| (b, 0)).collect();
        let mut overflow = 0usize;
        for &v in &self.samples {
            match bounds.iter().position(|&b| v <= b) {
                Some(i) => buckets[i].1 += 1,
                None => overflow += 1,
            }
        }
        Histogram { buckets, overflow }
    }
}

impl Histogram {
    /// Renders one line per bucket with a proportional bar.
    pub fn render(&self, width: usize) -> String {
        let max = self
            .buckets
            .iter()
            .map(|&(_, c)| c)
            .chain(std::iter::once(self.overflow))
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::new();
        for &(bound, count) in &self.buckets {
            let bar = "#".repeat(count * width / max);
            out.push_str(&format!("{:>9.3} ms |{bar:<width$}| {count}\n", bound * 1e3));
        }
        if self.overflow > 0 {
            let bar = "#".repeat(self.overflow * width / max);
            out.push_str(&format!("{:>12} |{bar:<width$}| {}\n", "overflow", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut s = Summary::new();
        for v in [0.0005, 0.0015, 0.003, 0.02, 5.0] {
            s.record(v);
        }
        let h = s.histogram(0.001, 4); // bounds: 1,2,4,8 ms
        assert_eq!(h.buckets.len(), 4);
        assert_eq!(h.buckets[0].1, 1, "≤1ms");
        assert_eq!(h.buckets[1].1, 1, "≤2ms");
        assert_eq!(h.buckets[2].1, 1, "≤4ms");
        assert_eq!(h.buckets[3].1, 0, "≤8ms");
        assert_eq!(h.overflow, 2);
        let r = h.render(20);
        assert!(r.contains("overflow"));
        assert!(r.lines().count() == 5);
    }

    #[test]
    fn empty_histogram_renders() {
        let s = Summary::new();
        let h = s.histogram(0.001, 3);
        assert_eq!(h.overflow, 0);
        assert!(h.render(10).lines().count() == 3);
    }
}

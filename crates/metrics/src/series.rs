//! Timestamped sample series.

use dynmds_event::{SimDuration, SimTime};

/// A sequence of `(time, value)` samples, pushed in non-decreasing time
/// order.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Times must be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().map(|&(t, _)| t <= at).unwrap_or(true),
            "samples must be pushed in time order"
        );
        self.points.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Samples with `start <= t < end`.
    pub fn window(
        &self,
        start: SimTime,
        end: SimTime,
    ) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied().filter(move |&(t, _)| t >= start && t < end)
    }

    /// Mean of values in `[start, end)`, or `None` when empty.
    pub fn mean_in(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, v) in self.window(start, end) {
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Sum of values in `[start, end)`.
    pub fn sum_in(&self, start: SimTime, end: SimTime) -> f64 {
        self.window(start, end).map(|(_, v)| v).sum()
    }

    /// Bins samples into consecutive windows of width `bin`, starting at
    /// `start`, producing one row per bin: `(bin_start, sum, count)`.
    /// Empty bins are included with sum 0 — time-series figures need the
    /// gaps.
    pub fn binned(
        &self,
        start: SimTime,
        end: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, f64, usize)> {
        assert!(bin.as_micros() > 0, "bin width must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let next = t + bin;
            let mut sum = 0.0;
            let mut n = 0usize;
            for (_, v) in self.window(t, next.max(t)) {
                sum += v;
                n += 1;
            }
            out.push((t, sum, n));
            t = next;
        }
        out
    }

    /// Event-rate series: treats each sample as one event (ignoring its
    /// value) and reports events per second per bin.
    pub fn rate_per_sec(
        &self,
        start: SimTime,
        end: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        let secs = bin.as_secs_f64();
        self.binned(start, end, bin).into_iter().map(|(t, _, n)| (t, n as f64 / secs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn push_and_window() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        s.push(t(30), 3.0);
        assert_eq!(s.len(), 3);
        let w: Vec<f64> = s.window(t(10), t(30)).map(|(_, v)| v).collect();
        assert_eq!(w, vec![1.0, 2.0], "window is half-open");
    }

    #[test]
    fn mean_and_sum() {
        let mut s = TimeSeries::new();
        for i in 1..=4 {
            s.push(t(i * 10), i as f64);
        }
        assert_eq!(s.mean_in(t(0), t(100)), Some(2.5));
        assert_eq!(s.sum_in(t(0), t(25)), 3.0);
        assert_eq!(s.mean_in(t(500), t(600)), None);
    }

    #[test]
    fn binned_includes_empty_bins() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(25), 1.0);
        s.push(t(26), 2.0);
        let bins = s.binned(t(0), t(40), SimDuration::from_micros(10));
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0], (t(0), 1.0, 1));
        assert_eq!(bins[1], (t(10), 0.0, 0), "empty bin present");
        assert_eq!(bins[2], (t(20), 3.0, 2));
        assert_eq!(bins[3], (t(30), 0.0, 0));
    }

    #[test]
    fn rate_counts_events_per_second() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(SimTime::from_millis(i * 10), 1.0); // 100 events over 1s
        }
        let rates =
            s.rate_per_sec(SimTime::ZERO, SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(rates.len(), 2);
        assert!((rates[0].1 - 100.0).abs() < 1e-9, "50 events / 0.5s");
        assert!((rates[1].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_bins_to_zeroes() {
        let s = TimeSeries::new();
        let bins = s.binned(t(0), t(30), SimDuration::from_micros(10));
        assert_eq!(bins.len(), 3);
        assert!(bins.iter().all(|&(_, sum, n)| sum == 0.0 && n == 0));
    }
}

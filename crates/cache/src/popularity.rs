//! Exponentially decaying access counters (§4.4).
//!
//! "MDS nodes monitor the popularity of metadata using a simple access
//! counter whose value decays over time, or any other measure or estimate
//! of the extent to which an item appears in client caches (precision
//! isn't necessary)."
//!
//! The counter for an item is `v(t) = v(t0) * 2^-((t - t0)/half_life)`;
//! each access adds 1 after decay. Values are updated lazily on access
//! and on read, so idle items cost nothing.

use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::{FxHashMap, InodeId};

#[derive(Clone, Copy, Debug)]
struct Counter {
    value: f64,
    last: SimTime,
}

/// Decaying popularity counters keyed by inode.
pub struct Popularity {
    half_life: SimDuration,
    counters: FxHashMap<InodeId, Counter>,
}

impl Popularity {
    /// Creates a meter with the given half-life.
    pub fn new(half_life: SimDuration) -> Self {
        assert!(half_life.as_micros() > 0, "half-life must be positive");
        Popularity { half_life, counters: FxHashMap::default() }
    }

    fn decayed(&self, c: Counter, now: SimTime) -> f64 {
        let dt = now.saturating_since(c.last).as_secs_f64();
        let hl = self.half_life.as_secs_f64();
        c.value * (-(dt / hl) * std::f64::consts::LN_2).exp()
    }

    /// Records one access to `id` at `now`; returns the updated value.
    pub fn record(&mut self, now: SimTime, id: InodeId) -> f64 {
        let prev = self.counters.get(&id).map(|&c| self.decayed(c, now)).unwrap_or(0.0);
        let value = prev + 1.0;
        self.counters.insert(id, Counter { value, last: now });
        value
    }

    /// Current (decayed) value for `id`; 0 if never accessed.
    pub fn value(&self, now: SimTime, id: InodeId) -> f64 {
        self.counters.get(&id).map(|&c| self.decayed(c, now)).unwrap_or(0.0)
    }

    /// Forgets an item (e.g. after its metadata was unlinked or migrated).
    pub fn forget(&mut self, id: InodeId) {
        self.counters.remove(&id);
    }

    /// Drops counters that have decayed below `threshold` — periodic
    /// housekeeping so long simulations don't accumulate dead entries.
    pub fn prune(&mut self, now: SimTime, threshold: f64) {
        let hl = self.half_life;
        let _ = hl;
        let keep: Vec<(InodeId, Counter)> = self
            .counters
            .iter()
            .filter(|(_, c)| self.decayed(**c, now) >= threshold)
            .map(|(k, v)| (*k, *v))
            .collect();
        self.counters.clear();
        self.counters.extend(keep);
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> InodeId {
        InodeId(n)
    }

    fn meter() -> Popularity {
        Popularity::new(SimDuration::from_secs(10))
    }

    #[test]
    fn accesses_accumulate() {
        let mut p = meter();
        let t = SimTime::from_secs(1);
        assert_eq!(p.record(t, id(1)), 1.0);
        assert_eq!(p.record(t, id(1)), 2.0);
        assert_eq!(p.record(t, id(1)), 3.0);
        assert_eq!(p.value(t, id(2)), 0.0);
    }

    #[test]
    fn value_halves_per_half_life() {
        let mut p = meter();
        p.record(SimTime::ZERO, id(1));
        p.record(SimTime::ZERO, id(1));
        p.record(SimTime::ZERO, id(1));
        p.record(SimTime::ZERO, id(1)); // value 4 at t=0
        let v = p.value(SimTime::from_secs(10), id(1));
        assert!((v - 2.0).abs() < 1e-9, "one half-life: got {v}");
        let v = p.value(SimTime::from_secs(20), id(1));
        assert!((v - 1.0).abs() < 1e-9, "two half-lives: got {v}");
    }

    #[test]
    fn burst_then_idle_fades() {
        let mut p = meter();
        for _ in 0..1000 {
            p.record(SimTime::ZERO, id(1));
        }
        let v = p.value(SimTime::from_secs(200), id(1));
        assert!(v < 0.001, "20 half-lives kill a 1000-burst: got {v}");
    }

    #[test]
    fn record_applies_decay_before_increment() {
        let mut p = meter();
        p.record(SimTime::ZERO, id(1)); // 1.0
        let v = p.record(SimTime::from_secs(10), id(1));
        assert!((v - 1.5).abs() < 1e-9, "0.5 decayed + 1: got {v}");
    }

    #[test]
    fn forget_and_prune() {
        let mut p = meter();
        p.record(SimTime::ZERO, id(1));
        p.record(SimTime::ZERO, id(2));
        for _ in 0..100 {
            p.record(SimTime::ZERO, id(3));
        }
        p.forget(id(1));
        assert_eq!(p.len(), 2);
        // After 50s, singles are < 0.05; the 100-burst is ~3.1.
        p.prune(SimTime::from_secs(50), 0.1);
        assert_eq!(p.len(), 1);
        assert!(p.value(SimTime::from_secs(50), id(3)) > 1.0);
        p.forget(id(3));
        assert!(p.is_empty());
    }

    #[test]
    fn independent_items_do_not_interact() {
        let mut p = meter();
        for _ in 0..10 {
            p.record(SimTime::ZERO, id(1));
        }
        p.record(SimTime::ZERO, id(2));
        assert!(p.value(SimTime::ZERO, id(1)) > 9.0);
        assert!((p.value(SimTime::ZERO, id(2)) - 1.0).abs() < 1e-9);
    }
}

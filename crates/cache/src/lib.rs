//! Per-MDS metadata cache.
//!
//! Two mechanisms from the paper live here:
//!
//! * [`MetaCache`] (in [`lru`]) — an LRU cache with **prefix pinning**:
//!   "only leaf items may be expired from the cache; directories may not
//!   be removed until items contained within them are expired first"
//!   (§4.1), so the cached subset of the hierarchy is always a tree, and
//!   with **near-tail prefetch insertion**: "prefetched metadata is
//!   inserted near the tail of the cache's LRU list to avoid displacing
//!   known useful information" (§4.5). The cache also accounts which
//!   entries are held only as *prefixes* (ancestors cached for path
//!   traversal) — the quantity plotted in Figure 3.
//!
//! * [`Popularity`] (in [`popularity`]) — "a simple access counter whose
//!   value decays over time" (§4.4), the signal the traffic-control
//!   mechanism uses to decide when to replicate hot metadata.

pub mod lru;
pub mod popularity;

pub use lru::{CacheError, CacheStats, InsertKind, MetaCache};
pub use popularity::Popularity;

//! Segmented LRU with prefix pinning.
//!
//! Layout: two intrusive doubly-linked lists over a hash map —
//! a **protected** segment for directly requested items and traversal
//! prefixes, and a **probation** segment where prefetched items enter
//! ("near the tail of the LRU list", §4.5). Eviction scans the probation
//! tail first, then the protected tail, skipping *pinned* entries —
//! directories with cached children — so the cached subset of the
//! hierarchy always remains a tree (§4.1).
//!
//! If every entry is pinned (pathological all-directory caches) the cache
//! is allowed to exceed capacity rather than violate the tree invariant;
//! the overflow is counted and visible to experiments.

use dynmds_namespace::{FxHashMap, InodeId};

/// How an item entered the cache; determines its initial LRU position and
/// its prefix accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertKind {
    /// Directly requested by a client operation.
    Target,
    /// An ancestor directory cached only to serve path traversal.
    Prefix,
    /// A sibling loaded by a whole-directory fetch; enters on probation.
    Prefetch,
}

/// Errors from explicit cache mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// The id is not cached.
    NotCached,
    /// The entry still has cached children and cannot be removed.
    Pinned,
}

/// Which list an entry currently lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Protected,
    Probation,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    prev: Option<InodeId>,
    next: Option<InodeId>,
    seg: Segment,
    /// Parent in the cached tree (must itself be cached), `None` for root.
    parent: Option<InodeId>,
    /// Number of cached children pointing at this entry.
    pins: u32,
    /// Still held only as a traversal prefix / unrequested prefetch.
    is_prefix: bool,
}

/// Head/tail pointers of one segment. `head` is the MRU end.
#[derive(Clone, Copy, Debug, Default)]
struct Ends {
    head: Option<InodeId>,
    tail: Option<InodeId>,
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Inserts that found no evictable entry and exceeded capacity.
    pub overflows: u64,
}

impl CacheStats {
    /// Hit rate over all lookups so far (1.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-MDS metadata cache. Capacity is measured in inodes, matching
/// the paper's treatment of MDS memory as "cache size relative to total
/// metadata size".
///
/// Entries live in a dense slab indexed by `InodeId::index()` — ids are
/// allocated sequentially and never reused, so every lookup, list splice
/// and eviction step is a direct array access instead of a hash probe.
/// The slab grows to the namespace's id bound; the occupied count (not
/// the slab length) is what capacity bounds.
pub struct MetaCache {
    cap: usize,
    slots: Vec<Option<Node>>,
    len: usize,
    protected: Ends,
    probation: Ends,
    probation_enabled: bool,
    stats: CacheStats,
}

impl MetaCache {
    /// Creates a cache holding at most `cap` inodes (`cap > 0`), with
    /// near-tail prefetch insertion enabled (§4.5).
    pub fn new(cap: usize) -> Self {
        Self::with_probation(cap, true)
    }

    /// Creates a cache with the probation segment optionally disabled —
    /// prefetched items then enter at the MRU head like everything else
    /// (the ablation of §4.5's "inserted near the tail of the LRU list").
    pub fn with_probation(cap: usize, probation_enabled: bool) -> Self {
        assert!(cap > 0, "cache capacity must be positive");
        MetaCache {
            cap,
            slots: Vec::new(),
            len: 0,
            protected: Ends::default(),
            probation: Ends::default(),
            probation_enabled,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn node(&self, id: InodeId) -> Option<&Node> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    #[inline]
    fn node_mut(&mut self, id: InodeId) -> Option<&mut Node> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` is cached (no LRU side effects).
    pub fn contains(&self, id: InodeId) -> bool {
        self.node(id).is_some()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets hit/miss/eviction counters (contents untouched); used when a
    /// measurement window starts after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached children pinning `id`.
    pub fn pins(&self, id: InodeId) -> Option<u32> {
        self.node(id).map(|n| n.pins)
    }

    /// Whether `id` is held only as a prefix (never directly requested).
    pub fn is_prefix(&self, id: InodeId) -> Option<bool> {
        self.node(id).map(|n| n.is_prefix)
    }

    /// The tree-link parent recorded for `id` at insert time: `None` if
    /// `id` is not cached, `Some(None)` for a cached root, `Some(Some(p))`
    /// for a cached entry pinned under `p`. Invariant-checking hook: the
    /// link target of any cached entry must itself be cached.
    pub fn parent_of(&self, id: InodeId) -> Option<Option<InodeId>> {
        self.node(id).map(|n| n.parent)
    }

    /// Count of prefix-only entries — the Figure 3 numerator.
    pub fn prefix_count(&self) -> usize {
        self.slots.iter().flatten().filter(|n| n.is_prefix).count()
    }

    /// Fraction of the cache holding prefix-only entries (0 when empty).
    pub fn prefix_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.prefix_count() as f64 / self.len as f64
        }
    }

    /// Iterates over all cached ids (ascending id order).
    pub fn iter_ids(&self) -> impl Iterator<Item = InodeId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| InodeId(i as u64)))
    }

    // ---- intrusive list plumbing ------------------------------------

    fn ends_mut(&mut self, seg: Segment) -> &mut Ends {
        match seg {
            Segment::Protected => &mut self.protected,
            Segment::Probation => &mut self.probation,
        }
    }

    /// Detaches `id` from its current list (entry stays in the slab).
    fn detach(&mut self, id: InodeId) {
        let node = *self.node(id).expect("present");
        match node.prev {
            Some(p) => self.node_mut(p).expect("list link").next = node.next,
            None => self.ends_mut(node.seg).head = node.next,
        }
        match node.next {
            Some(n) => self.node_mut(n).expect("list link").prev = node.prev,
            None => self.ends_mut(node.seg).tail = node.prev,
        }
        let e = self.node_mut(id).expect("present");
        e.prev = None;
        e.next = None;
    }

    /// Attaches a detached `id` at the MRU head of `seg`.
    fn attach_head(&mut self, id: InodeId, seg: Segment) {
        let old_head = self.ends_mut(seg).head;
        {
            let e = self.node_mut(id).expect("present");
            e.seg = seg;
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.node_mut(h).expect("list link").prev = Some(id);
        }
        let ends = self.ends_mut(seg);
        ends.head = Some(id);
        if ends.tail.is_none() {
            ends.tail = Some(id);
        }
    }

    // ---- public operations ------------------------------------------

    /// Looks `id` up, counting a hit or miss. On a hit the entry moves to
    /// the protected MRU head; `as_target` additionally clears its prefix
    /// flag (it is now known-useful data, not just a traversal step).
    pub fn lookup(&mut self, id: InodeId, as_target: bool) -> bool {
        if self.contains(id) {
            self.stats.hits += 1;
            self.detach(id);
            self.attach_head(id, Segment::Protected);
            if as_target {
                self.node_mut(id).expect("present").is_prefix = false;
            }
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Peeks without LRU movement or stats. Used for cache-content checks
    /// (e.g. replica invariants) that should not perturb eviction order.
    pub fn peek(&self, id: InodeId) -> bool {
        self.contains(id)
    }

    /// Inserts `id` with the given cached `parent` (which must already be
    /// cached, keeping the cached subset a tree; `None` for the root).
    /// Returns the entries evicted to make room. Inserting an existing id
    /// just refreshes its position/kind.
    pub fn insert(
        &mut self,
        id: InodeId,
        parent: Option<InodeId>,
        kind: InsertKind,
    ) -> Vec<InodeId> {
        if let Some(p) = parent {
            debug_assert!(self.contains(p), "parent {p} must be cached before child {id}");
        }
        if self.contains(id) {
            // Refresh: possibly upgrade from prefix to target.
            let as_target = kind == InsertKind::Target;
            self.lookup(id, as_target);
            self.stats.hits -= 1; // refresh is not a workload hit
            return Vec::new();
        }

        // Figure 3 counts ancestor-directory (prefix) inodes; speculative
        // prefetch data is not a prefix.
        let is_prefix = kind == InsertKind::Prefix;
        let seg = match kind {
            InsertKind::Prefetch if self.probation_enabled => Segment::Probation,
            _ => Segment::Protected,
        };
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(Node { prev: None, next: None, seg, parent, pins: 0, is_prefix });
        self.len += 1;
        self.attach_head(id, seg);
        if let Some(p) = parent {
            if let Some(pn) = self.node_mut(p) {
                pn.pins += 1;
            }
        }

        let mut evicted = Vec::new();
        while self.len > self.cap {
            match self.evict_one(id) {
                Some(victim) => evicted.push(victim),
                None => {
                    self.stats.overflows += 1;
                    break;
                }
            }
        }
        evicted
    }

    /// Evicts the best victim: unpinned, from the probation tail first,
    /// then the protected tail. `protect` (the just-inserted id) is never
    /// chosen. Returns the victim, or `None` if everything is pinned.
    fn evict_one(&mut self, protect: InodeId) -> Option<InodeId> {
        for seg in [Segment::Probation, Segment::Protected] {
            let mut cur = match seg {
                Segment::Probation => self.probation.tail,
                Segment::Protected => self.protected.tail,
            };
            while let Some(id) = cur {
                let node = *self.node(id).expect("list link");
                if node.pins == 0 && id != protect {
                    self.remove_internal(id);
                    self.stats.evictions += 1;
                    return Some(id);
                }
                cur = node.prev;
            }
        }
        None
    }

    /// Removes `id` regardless of segment, unpinning its parent.
    fn remove_internal(&mut self, id: InodeId) {
        self.detach(id);
        let node = self.slots[id.index()].take().expect("present");
        self.len -= 1;
        debug_assert_eq!(node.pins, 0, "removing pinned entry {id}");
        if let Some(p) = node.parent {
            if let Some(pn) = self.node_mut(p) {
                debug_assert!(pn.pins > 0, "pin underflow on {p}");
                pn.pins -= 1;
            }
        }
    }

    /// Explicitly removes `id` (replica invalidation, subtree migration).
    /// Fails if the entry still has cached children.
    pub fn remove(&mut self, id: InodeId) -> Result<(), CacheError> {
        match self.node(id) {
            None => Err(CacheError::NotCached),
            Some(n) if n.pins > 0 => Err(CacheError::Pinned),
            Some(_) => {
                self.remove_internal(id);
                Ok(())
            }
        }
    }

    /// Removes a set of entries that form a subtree (or any set closed
    /// under "cached child of"), handling ordering internally. Returns how
    /// many were actually removed.
    pub fn remove_set(&mut self, ids: &[InodeId]) -> usize {
        let mut pending: Vec<InodeId> = ids.iter().copied().filter(|i| self.contains(*i)).collect();
        let mut removed = 0;
        // Repeatedly strip unpinned members; children leave before parents.
        loop {
            let mut progress = false;
            pending.retain(|&id| {
                if self.node(id).map(|n| n.pins == 0).unwrap_or(false) {
                    self.remove_internal(id);
                    removed += 1;
                    progress = true;
                    false
                } else {
                    self.contains(id)
                }
            });
            if !progress || pending.is_empty() {
                break;
            }
        }
        removed
    }

    /// Debug invariant check used by tests: list structure consistent,
    /// pins match child counts, parents always cached.
    #[doc(hidden)]
    pub fn check_integrity(&self) {
        // Walk both lists, count reachable nodes.
        let mut seen = 0usize;
        for (ends, seg) in
            [(self.protected, Segment::Protected), (self.probation, Segment::Probation)]
        {
            let mut prev: Option<InodeId> = None;
            let mut cur = ends.head;
            while let Some(id) = cur {
                let n = self.node(id).expect("list member cached");
                assert_eq!(n.seg, seg, "entry {id} on wrong segment list");
                assert_eq!(n.prev, prev, "broken prev link at {id}");
                seen += 1;
                prev = Some(id);
                cur = n.next;
            }
            assert_eq!(ends.tail, prev, "tail pointer mismatch");
        }
        assert_eq!(seen, self.len, "list membership mismatch");

        // Pins equal cached-child counts; parents are cached.
        let mut child_counts: FxHashMap<InodeId, u32> = FxHashMap::default();
        for n in self.slots.iter().flatten() {
            if let Some(p) = n.parent {
                assert!(self.contains(p), "cached child with uncached parent {p}");
                *child_counts.entry(p).or_insert(0) += 1;
            }
        }
        for id in self.iter_ids() {
            let n = self.node(id).expect("present");
            assert_eq!(
                n.pins,
                child_counts.get(&id).copied().unwrap_or(0),
                "pin count wrong on {id}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> InodeId {
        InodeId(n)
    }

    #[test]
    fn insert_and_lookup_hit() {
        let mut c = MetaCache::new(4);
        c.insert(id(1), None, InsertKind::Target);
        assert!(c.lookup(id(1), true));
        assert!(!c.lookup(id(2), true));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        c.check_integrity();
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Target);
        c.insert(id(3), None, InsertKind::Target);
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(1)], "oldest entry evicted");
        assert!(!c.contains(id(1)));
        assert_eq!(c.len(), 3);
        c.check_integrity();
    }

    #[test]
    fn lookup_refreshes_lru_position() {
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Target);
        c.insert(id(3), None, InsertKind::Target);
        c.lookup(id(1), true); // 1 becomes MRU
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(2)]);
        assert!(c.contains(id(1)));
        c.check_integrity();
    }

    #[test]
    fn pinned_directories_survive_eviction() {
        let mut c = MetaCache::new(3);
        c.insert(id(10), None, InsertKind::Prefix); // dir
        c.insert(id(11), Some(id(10)), InsertKind::Target); // child pins 10
        c.insert(id(12), None, InsertKind::Target);
        // id(10) is oldest but pinned; eviction must take id(12)... no:
        // id(12) is newer than 11. LRU order (old→new): 10, 11, 12.
        // 10 pinned → evict 11 (unpins 10).
        let ev = c.insert(id(13), None, InsertKind::Target);
        assert_eq!(ev, vec![id(11)]);
        assert!(c.contains(id(10)));
        assert_eq!(c.pins(id(10)), Some(0), "unpinned after child eviction");
        c.check_integrity();
    }

    #[test]
    fn leaves_evict_before_ancestors() {
        // Chain root→a→b with one extra leaf; the chain dirs stay pinned
        // until their descendants leave.
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Prefix);
        c.insert(id(3), Some(id(2)), InsertKind::Target);
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(3)], "leaf goes first");
        let ev = c.insert(id(5), None, InsertKind::Target);
        assert_eq!(ev, vec![id(2)], "now-unpinned middle dir goes next");
        c.check_integrity();
    }

    #[test]
    fn all_pinned_cache_overflows_instead_of_breaking_tree() {
        let mut c = MetaCache::new(2);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Prefix);
        c.insert(id(3), Some(id(2)), InsertKind::Target);
        // 1 and 2 are pinned; 3 is the fresh insert (protected). Nothing
        // evictable → overflow.
        assert_eq!(c.len(), 3);
        assert!(c.stats().overflows >= 1);
        c.check_integrity();
    }

    #[test]
    fn prefetch_enters_probation_and_evicts_first() {
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Prefetch);
        c.insert(id(3), None, InsertKind::Target);
        // Capacity pressure: probation (id 2) goes before older protected.
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(2)], "probationary prefetch evicted first");
        c.check_integrity();
    }

    #[test]
    fn prefetch_hit_promotes_to_protected() {
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Prefetch);
        c.lookup(id(2), true); // promoted
        c.insert(id(3), None, InsertKind::Target);
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(1)], "promoted entry outlives older protected");
        assert_eq!(c.is_prefix(id(2)), Some(false));
        c.check_integrity();
    }

    #[test]
    fn prefix_accounting_tracks_upgrades() {
        let mut c = MetaCache::new(10);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Target);
        c.insert(id(3), Some(id(1)), InsertKind::Prefetch);
        assert_eq!(c.prefix_count(), 1, "only the ancestor dir is a prefix");
        assert!((c.prefix_fraction() - 1.0 / 3.0).abs() < 1e-9);
        // Traversal touch does NOT upgrade the prefix dir.
        c.lookup(id(1), false);
        assert_eq!(c.prefix_count(), 1);
        // Direct request does.
        c.lookup(id(1), true);
        assert_eq!(c.prefix_count(), 0);
        c.check_integrity();
    }

    #[test]
    fn reinsert_refreshes_without_counting_hit() {
        let mut c = MetaCache::new(3);
        c.insert(id(1), None, InsertKind::Prefix);
        let before = c.stats();
        c.insert(id(1), None, InsertKind::Target);
        let after = c.stats();
        assert_eq!(before.hits, after.hits, "refresh is not a workload hit");
        assert_eq!(c.is_prefix(id(1)), Some(false), "upgraded to target");
        assert_eq!(c.len(), 1);
        c.check_integrity();
    }

    #[test]
    fn remove_respects_pins() {
        let mut c = MetaCache::new(10);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Target);
        assert_eq!(c.remove(id(1)), Err(CacheError::Pinned));
        assert_eq!(c.remove(id(9)), Err(CacheError::NotCached));
        assert_eq!(c.remove(id(2)), Ok(()));
        assert_eq!(c.remove(id(1)), Ok(()));
        assert!(c.is_empty());
        c.check_integrity();
    }

    #[test]
    fn remove_set_handles_ordering() {
        let mut c = MetaCache::new(10);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Prefix);
        c.insert(id(3), Some(id(2)), InsertKind::Target);
        // Parent-first order still works.
        let removed = c.remove_set(&[id(1), id(2), id(3)]);
        assert_eq!(removed, 3);
        assert!(c.is_empty());
        c.check_integrity();
    }

    #[test]
    fn remove_set_leaves_pinned_members_with_outside_children() {
        let mut c = MetaCache::new(10);
        c.insert(id(1), None, InsertKind::Prefix);
        c.insert(id(2), Some(id(1)), InsertKind::Target);
        c.insert(id(3), Some(id(1)), InsertKind::Target);
        // Try to remove 1 and 2 only; 3 still pins 1.
        let removed = c.remove_set(&[id(1), id(2)]);
        assert_eq!(removed, 1, "only the leaf leaves");
        assert!(c.contains(id(1)));
        c.check_integrity();
    }

    #[test]
    fn hit_rate_math() {
        let mut c = MetaCache::new(4);
        assert_eq!(c.stats().hit_rate(), 1.0, "no lookups yet");
        c.insert(id(1), None, InsertKind::Target);
        c.lookup(id(1), true);
        c.lookup(id(2), true);
        c.lookup(id(3), true);
        assert!((c.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.len(), 1, "reset keeps contents");
    }

    #[test]
    fn eviction_reports_enable_authority_notification() {
        // The MDS must be able to tell the authority which replicas it
        // dropped (§4.2); every eviction is therefore surfaced.
        let mut c = MetaCache::new(2);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Target);
        let ev1 = c.insert(id(3), None, InsertKind::Target);
        let ev2 = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev1, vec![id(1)]);
        assert_eq!(ev2, vec![id(2)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        MetaCache::new(0);
    }

    #[test]
    fn disabled_probation_makes_prefetch_mru() {
        let mut c = MetaCache::with_probation(3, false);
        c.insert(id(1), None, InsertKind::Target);
        c.insert(id(2), None, InsertKind::Prefetch);
        c.insert(id(3), None, InsertKind::Target);
        // Without probation the prefetch is MRU-protected: the oldest
        // target leaves first.
        let ev = c.insert(id(4), None, InsertKind::Target);
        assert_eq!(ev, vec![id(1)], "prefetch was not sacrificed first");
        assert!(c.contains(id(2)));
        assert_eq!(c.is_prefix(id(2)), Some(false), "prefetch is not a prefix");
        c.check_integrity();
    }
}

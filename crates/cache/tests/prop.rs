//! Property tests: the cache keeps its tree/pinning/list invariants under
//! arbitrary operation sequences driven by a real namespace.

use dynmds_cache::{InsertKind, MetaCache};
use dynmds_namespace::{InodeId, NamespaceSpec};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    /// Insert the id-th live inode along with its ancestor chain.
    InsertWithPrefixes {
        pick: usize,
        kind_sel: u8,
    },
    Lookup {
        pick: usize,
        as_target: bool,
    },
    Remove {
        pick: usize,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<usize>(), any::<u8>())
            .prop_map(|(pick, kind_sel)| Action::InsertWithPrefixes { pick, kind_sel }),
        (any::<usize>(), any::<bool>())
            .prop_map(|(pick, as_target)| Action::Lookup { pick, as_target }),
        any::<usize>().prop_map(|pick| Action::Remove { pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_invariants_hold(
        actions in prop::collection::vec(action_strategy(), 1..200),
        cap in 4usize..64,
        seed in 0u64..100,
    ) {
        let snap = NamespaceSpec { users: 4, mean_dirs_per_user: 5.0, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        let ids: Vec<InodeId> = ns.live_ids().collect();
        let mut cache = MetaCache::new(cap);

        for action in &actions {
            match *action {
                Action::InsertWithPrefixes { pick, kind_sel } => {
                    let id = ids[pick % ids.len()];
                    // Insert ancestors root-first so parents are cached.
                    let mut chain: Vec<InodeId> = ns.ancestors(id).collect();
                    chain.reverse();
                    for &anc in &chain {
                        let parent = ns.parent(anc).unwrap();
                        cache.insert(anc, parent.filter(|p| cache.contains(*p)), InsertKind::Prefix);
                    }
                    let kind = match kind_sel % 3 {
                        0 => InsertKind::Target,
                        1 => InsertKind::Prefix,
                        _ => InsertKind::Prefetch,
                    };
                    let parent = ns.parent(id).unwrap().filter(|p| cache.contains(*p));
                    cache.insert(id, parent, kind);
                }
                Action::Lookup { pick, as_target } => {
                    let id = ids[pick % ids.len()];
                    cache.lookup(id, as_target);
                }
                Action::Remove { pick } => {
                    let id = ids[pick % ids.len()];
                    let _ = cache.remove(id);
                }
            }
            cache.check_integrity();
        }

        // Capacity respected unless overflows were recorded.
        if cache.stats().overflows == 0 {
            prop_assert!(cache.len() <= cap, "len {} > cap {}", cache.len(), cap);
        }
        // Every cached entry's namespace ancestors that we chose as parents
        // are cached (integrity already asserts parent links).
        prop_assert!(cache.prefix_count() <= cache.len());
    }

    #[test]
    fn eviction_total_accounting(seed in 0u64..100, cap in 4usize..32) {
        // Insert a long stream of root-level entries; inserted == evicted + resident.
        let mut cache = MetaCache::new(cap);
        let mut evicted = 0usize;
        let n = 500u64;
        for i in 0..n {
            evicted += cache.insert(InodeId(i.wrapping_add(seed)), None, InsertKind::Target).len();
        }
        prop_assert_eq!(evicted + cache.len(), n as usize);
        cache.check_integrity();
    }
}
